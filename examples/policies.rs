//! A walk through Examples 4.1 and 4.2 of the paper: distribution
//! policies, domain guidance, and the system facts a node sees.
//!
//! Matching the paper exactly, the two nodes are the *integer values*
//! 1 and 2 — node identifiers are ordinary domain values and may occur
//! in the data.
//!
//! ```sh
//! cargo run --example policies
//! ```

use calm::common::{fact, v, Instance, Schema, Value};
use calm::prelude::{Network, SystemConfig};
use calm::transducer::system_facts::system_facts;
use calm::transducer::{
    distribute, DistributionPolicy, ParityDomainGuidedPolicy, ParityFirstAttributePolicy,
};

fn show(label: &str, dist: &std::collections::BTreeMap<Value, Instance>) {
    println!("{label}:");
    for (node, insts) in dist {
        println!("  node {node} -> {insts:?}");
    }
}

fn main() {
    // Example 4.1: N = {1, 2}, schema {E(2)},
    // I = {E(1,3), E(3,4), E(4,6)}.
    let net = Network::from_nodes([v(1), v(2)]);
    let input = Instance::from_facts([fact("E", [1, 3]), fact("E", [3, 4]), fact("E", [4, 6])]);
    println!("input I = {input:?}\n");

    // P1: partition on the parity of the first attribute (odd -> node 1).
    let p1 = ParityFirstAttributePolicy::new(net.clone());
    let d1 = distribute(&p1, &input);
    show("dist_P1(I) — odd/even first attribute", &d1);
    assert_eq!(d1[&v(1)].len(), 2);
    assert_eq!(d1[&v(2)].len(), 1);
    // The paper's observation: P1 is not domain-guided, witnessed by
    // value 4 — no node holds all facts containing 4.
    let value4_complete = d1
        .values()
        .any(|i| i.contains(&fact("E", [3, 4])) && i.contains(&fact("E", [4, 6])));
    println!(
        "some node holds all facts containing 4? {value4_complete} (=> P1 not domain-guided)\n"
    );
    assert!(!value4_complete);

    // P2: the domain-guided policy from the same example — odd values
    // assigned to node 1, even values to node 2; facts replicate to all
    // owners of their values.
    let p2 = ParityDomainGuidedPolicy::new(net.clone());
    let d2 = distribute(&p2, &input);
    show("dist_P2(I) — domain-guided by value parity", &d2);
    assert!(p2.is_domain_guided());
    // Exactly the paper's dist_P2(I): node 1 -> {E(1,3), E(3,4)},
    // node 2 -> {E(3,4), E(4,6)} (E(3,4) replicated).
    assert_eq!(
        d2[&v(1)],
        Instance::from_facts([fact("E", [1, 3]), fact("E", [3, 4])])
    );
    assert_eq!(
        d2[&v(2)],
        Instance::from_facts([fact("E", [3, 4]), fact("E", [4, 6])])
    );
    println!();

    // Example 4.2: the system facts node 1 sees under P1. Its visible
    // facts J are its local input; A = N ∪ adom(J) = {1, 2, 3, 4}.
    let schema = Schema::from_pairs([("E", 2)]);
    let node1 = v(1);
    let j = d1[&node1].clone();
    let s = system_facts(&node1, &net, &schema, &p1, SystemConfig::POLICY_AWARE, &j);
    println!("system facts at node 1 (policy-aware model):");
    println!("  Id:      {:?}", s.tuples("Id").collect::<Vec<_>>());
    println!("  All:     {:?}", s.tuples("All").collect::<Vec<_>>());
    println!("  MyAdom:  {:?}", s.tuples("MyAdom").collect::<Vec<_>>());
    println!("  policy_E: {} facts", s.relation_len("policy_E"));
    // Exactly the paper's enumeration: MyAdom(a) for a ∈ {1,2,3,4} and
    // policy_E(a,b) with a ∈ {1,3} (odd values of A) and b ∈ {1,2,3,4}.
    assert_eq!(s.relation_len("MyAdom"), 4);
    assert_eq!(s.relation_len("policy_E"), 8);
    for a in [1i64, 3] {
        for b in [1i64, 2, 3, 4] {
            assert!(s.contains_tuple("policy_E", &[v(a), v(b)]));
        }
    }

    // The paper's remark: node 1 can deduce that E(3,2) is globally
    // absent — it is responsible for it (policy_E(3,2) visible) yet does
    // not have it locally.
    let responsible_but_absent =
        s.contains_tuple("policy_E", &[v(3), v(2)]) && !j.contains(&fact("E", [3, 2]));
    println!("\nnode 1 deduces absence of E(3,2)? {responsible_but_absent}");
    assert!(responsible_but_absent);

    // After node 1 learns value 6 (e.g. via a message), MyAdom grows and
    // so does the visible policy slice — Example 4.2's closing remark.
    let mut j_with_6 = j.clone();
    j_with_6.insert(fact("E", [4, 6]));
    let s2 = system_facts(
        &node1,
        &net,
        &schema,
        &p1,
        SystemConfig::POLICY_AWARE,
        &j_with_6,
    );
    assert!(s2.contains_tuple("MyAdom", &[v(6)]));
    assert!(s2.contains_tuple("policy_E", &[v(3), v(6)]));
    println!("after learning 6: MyAdom(6) and policy_E(3,6) visible ✓");
}
