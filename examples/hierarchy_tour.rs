//! A live tour of the monotonicity hierarchy (Theorem 3.1 / Figure 1):
//! every strict inclusion demonstrated with the paper's own witnesses.
//!
//! ```sh
//! cargo run --example hierarchy_tour
//! ```

use calm::common::generator::{clique_from, disjoint_triangles, edge, star, triangle_from};
use calm::common::{is_domain_disjoint, is_domain_distinct, Instance};
use calm::prelude::*;
use calm::queries::{
    qtc_datalog, tc_datalog, CliqueQuery, DuplicateQuery, StarQuery, TrianglesUnlessTwoDisjoint,
};

fn violated(q: &dyn Query, i: &Instance, j: &Instance) -> bool {
    !q.eval(i).is_subset(&q.eval(&i.union(j)))
}

fn main() {
    println!("The monotonicity hierarchy M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C (Thm 3.1)\n");

    // M ⊊ Mdistinct: O(x,y) :- E(x,y), ¬E(x,x) is SP-Datalog (hence in
    // Mdistinct) but not monotone.
    let sp = calm::queries::tc::edges_without_source_loop();
    let i = Instance::from_facts([edge(1, 2)]);
    let j = Instance::from_facts([edge(1, 1)]); // old values only
    assert!(violated(&sp, &i, &j));
    println!("✓ SP-Datalog query broken by an old-values addition: ∉ M");
    // ... but never by domain-distinct additions (exhaustively checked in
    // the test suite; spot-check here):
    let j2 = Instance::from_facts([edge(1, 9)]);
    assert!(is_domain_distinct(&j2, &i) && !violated(&sp, &i, &j2));
    println!("✓ and preserved under a domain-distinct addition: Mdistinct\n");

    // Mdistinct ⊊ Mdisjoint: Q_TC survives disjoint extensions but a
    // distinct extension can bridge a missing path.
    let qtc = qtc_datalog();
    let i = Instance::from_facts([edge(1, 2), edge(3, 4)]);
    let bridge = Instance::from_facts([edge(2, 9), edge(9, 3)]);
    assert!(is_domain_distinct(&bridge, &i) && violated(&qtc, &i, &bridge));
    let island = triangle_from(100);
    assert!(is_domain_disjoint(&island, &i) && !violated(&qtc, &i, &island));
    println!("✓ Q_TC: broken by a distinct bridge (∉ Mdistinct), safe under disjoint islands\n");

    // Mdisjoint ⊊ C: triangles-unless-two-disjoint-triangles.
    let tri = TrianglesUnlessTwoDisjoint::new();
    let i = triangle_from(0);
    let far = triangle_from(50);
    assert!(is_domain_disjoint(&far, &i) && violated(&tri, &i, &far));
    assert_eq!(tri.eval(&disjoint_triangles(0, 2)), Instance::new());
    println!(
        "✓ triangle query: a disjoint triangle retracts output — computable but ∉ Mdisjoint\n"
    );

    // The bounded ladders (Thm 3.1(3,4)): Q^{i+2}_clique and
    // Q^{i+1}_star.
    for i_param in 1..=3usize {
        let q = CliqueQuery::new(i_param + 2);
        let base = clique_from(0, i_param + 1);
        // A star of i+1 fresh-centre edges completes the clique...
        let star_j = Instance::from_facts((0..=i_param as i64).map(|k| edge(1000, k)));
        assert!(is_domain_distinct(&star_j, &base));
        assert!(
            violated(&q, &base, &star_j),
            "needs i+1 = {} facts",
            i_param + 1
        );
        // ...but no i-fact distinct extension can (spot check: drop one
        // edge from the star).
        let small: Instance = Instance::from_facts((0..i_param as i64).map(|k| edge(1000, k)));
        assert!(!violated(&q, &base, &small));
        println!(
            "✓ Q^{}_clique ∈ M^{}_distinct \\ M^{}_distinct",
            i_param + 2,
            i_param,
            i_param + 1
        );
    }
    println!();
    for i_param in 1..=3usize {
        let q = StarQuery::new(i_param + 1);
        let base = Instance::from_facts([edge(1, 2)]);
        let new_star = star(i_param + 1).map_values(|v| match v {
            calm::common::Value::Int(k) => calm::common::v(k + 500),
            other => other.clone(),
        });
        assert!(is_domain_disjoint(&new_star, &base));
        assert!(violated(&q, &base, &new_star));
        println!(
            "✓ Q^{}_star ∈ M^{}_disjoint \\ M^{}_disjoint",
            i_param + 1,
            i_param,
            i_param + 1
        );
    }
    println!();

    // Thm 3.1(7): Q^j_duplicate ∈ M^i_distinct \ M^j_disjoint for i < j.
    let j_param = 3;
    let q = DuplicateQuery::new(j_param);
    let base = Instance::from_facts([fact("R1", [1, 2])]);
    let replicate = Instance::from_facts([
        fact("R1", [70, 71]),
        fact("R2", [70, 71]),
        fact("R3", [70, 71]),
    ]);
    assert!(is_domain_disjoint(&replicate, &base));
    assert!(violated(&q, &base, &replicate));
    println!("✓ Q^3_duplicate broken by 3 disjoint facts: ∉ M^3_disjoint\n");

    // And at the bottom of everything, plain TC is monotone: no witness
    // exists at all.
    let tc = tc_datalog();
    let falsifier = calm::monotone::Falsifier::new(ExtensionKind::Any).with_trials(300);
    let found = falsifier.falsify(&tc, |rng| {
        calm::common::generator::InstanceRng::seeded(rng.gen_u64()).gnp(5, 0.3)
    });
    assert!(found.is_none());
    println!("✓ TC survives 300 adversarial extension trials: consistent with M");
    println!("\nHierarchy tour complete ∎");
}
