//! Win-move, coordination-free (the paper's headline result).
//!
//! Solves random game graphs under the well-founded semantics on an
//! 8-node simulated network with a domain-guided distribution policy,
//! comparing the asynchronous distributed answer against the centralized
//! oracle — and demonstrates the heartbeat-only coordination-freeness
//! witness of Definition 3.
//!
//! ```sh
//! cargo run --example winmove_network
//! ```

use calm::common::generator::InstanceRng;
use calm::prelude::*;
use calm::queries::winmove::{win_move, win_move_native};
use calm::transducer::heartbeat_witness;

fn main() {
    let n_nodes = 8;
    let positions = 24;

    for seed in 0..3u64 {
        // A random game over `move(2)` with up to 3 moves per position.
        let game = InstanceRng::seeded(seed).move_graph(positions, 3);
        println!(
            "seed {seed}: game with {} positions, {} moves",
            game.adom().len(),
            game.len()
        );

        // Centralized answers: the WFS query and the native game solver
        // agree.
        let wfs = win_move();
        let oracle = win_move_native();
        assert_eq!(wfs.eval(&game), oracle.eval(&game));
        let won = wfs.eval(&game);
        println!("  won positions (centralized): {}", won.len());

        // Distributed: the Mdisjoint strategy under a domain-guided
        // hash assignment, across adversarial random schedules.
        let strategy = DisjointStrategy::new(Box::new(win_move()));
        let expected = expected_output(strategy.query(), &game);
        let policy = DomainGuidedPolicy::new(Network::of_size(n_nodes));
        let network = TransducerNetwork {
            transducer: &strategy,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        for sched in [Scheduler::RoundRobin, Scheduler::random(99 + seed, 200)] {
            let result = run(&network, &game, &sched, 2_000_000);
            assert!(result.quiescent, "network must quiesce");
            assert_eq!(
                result.output, expected,
                "distributed output must equal the centralized answer"
            );
            println!(
                "  {sched:?}: {} transitions, {} messages sent, {} delivered",
                result.metrics.transitions,
                result.metrics.messages_sent,
                result.metrics.messages_delivered
            );
        }

        // Coordination-freeness witness (Definition 3): with the ideal
        // domain assignment (every value owned by one node), that node
        // computes the full answer with heartbeats alone — no
        // communication at all.
        let net = Network::of_size(n_nodes);
        let x = net.first().clone();
        let ideal = DomainGuidedPolicy::all_to(net, x.clone());
        let witness_network = TransducerNetwork {
            transducer: &strategy,
            policy: &ideal,
            config: SystemConfig::POLICY_AWARE,
        };
        let beats = heartbeat_witness(&witness_network, &game, &x, &expected, 10)
            .expect("win-move is coordination-free under domain guidance");
        println!("  heartbeat-only witness: Q(I) computed after {beats} heartbeat(s)");
    }

    println!("win-move is coordination-free under domain-guided distribution ∎");
}
