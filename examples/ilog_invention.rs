//! Value invention with ILOG¬ (Section 5.2): Skolem semantics, weak
//! safety, divergence detection, and the wILOG¬ fragments that capture
//! the monotonicity classes.
//!
//! ```sh
//! cargo run --example ilog_invention
//! ```

use calm::common::generator::path;
use calm::common::Instance;
use calm::ilog::{
    classify_ilog, eval_ilog, eval_ilog_query, is_weakly_safe, unsafe_positions, IlogProgram,
    Limits,
};

fn main() {
    // 1. Invention basics: one fresh Herbrand value per derivation
    //    context. `Pair(*, x, y)` invents an identifier for every edge.
    let p = IlogProgram::parse(
        "@output O.\n\
         Pair(*, x, y) :- E(x, y).\n\
         O(x, y) :- Pair(p, x, y).",
    )
    .unwrap();
    println!(
        "Skolemized rule (paper notation): {}",
        IlogProgram::skolemized_display(&p.program().rules()[0])
    );
    let full = eval_ilog(&p, &path(3), Limits::default()).unwrap();
    println!("invented pair-ids:");
    for t in full.tuples("Pair") {
        println!("  {} ↦ ({}, {})", t[0], t[1], t[2]);
    }

    // 2. Weak safety: the static analysis that guarantees no invented
    //    value escapes into the output.
    assert!(is_weakly_safe(&p));
    let leaky = IlogProgram::parse("@output R.\nR(*, x) :- E(x, x).").unwrap();
    assert!(!is_weakly_safe(&leaky));
    println!(
        "\nleaky program unsafe positions: {:?}",
        unsafe_positions(&leaky)
    );
    let mut looped: Instance = path(1);
    looped.insert(calm::common::fact("E", [7, 7]));
    let err = eval_ilog_query(&leaky, &looped, Limits::default()).unwrap_err();
    println!("runtime agrees: {err}");

    // 3. Divergence: recursion through invention builds ever-deeper
    //    Skolem terms; evaluation reports it instead of spinning.
    let diverging = IlogProgram::parse(
        "S(x) :- E(x, y).\n\
         R(*, x) :- S(x).\n\
         S(r) :- R(r, x).",
    )
    .unwrap();
    let err = eval_ilog(&diverging, &path(1), Limits::default()).unwrap_err();
    println!("\ndiverging program detected: {err}");

    // 4. The fragment ladder (Figure 2's top row): wILOG(≠) captures M,
    //    SP-wILOG captures E = Mdistinct, semicon-wILOG¬ captures
    //    Mdisjoint.
    let examples = [
        (
            "wILOG(≠)",
            "@output O.\nPair(*, x, y) :- E(x, y), x != y.\nO(x, y) :- Pair(p, x, y).",
        ),
        (
            "SP-wILOG",
            "@output O.\nTok(*, x, y) :- E(x, y), not E(y, x).\nO(x, y) :- Tok(t, x, y).",
        ),
        (
            "semicon-wILOG¬",
            "@output O.\nPair(*, x, y) :- E(x, y).\nLinked(x) :- Pair(p, x, y).\n\
             Adom(x) :- E(x,y).\nAdom(y) :- E(x,y).\nO(x) :- Adom(x), not Linked(x).",
        ),
    ];
    println!();
    for (label, src) in examples {
        let prog = IlogProgram::parse(src).unwrap();
        let report = classify_ilog(&prog);
        println!(
            "{label:16} weakly-safe={} wILOG(≠)={} SP-wILOG={} semicon-wILOG¬={}",
            report.weakly_safe,
            report.is_wilog_neq(),
            report.is_sp_wilog(),
            report.is_semicon_wilog()
        );
    }
    println!("\nvalue invention tour complete ∎");
}
