//! Quickstart: parse a Datalog¬ program, evaluate it, classify its
//! fragment, check its monotonicity class empirically, and run it
//! coordination-free on a simulated network.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use calm::common::generator::path;
use calm::common::Instance;
use calm::monotone::{Exhaustive, ExtensionKind};
use calm::prelude::*;

fn main() {
    // 1. A query in stratified Datalog¬: the complement of transitive
    //    closure ("which pairs of vertices are disconnected?").
    let src = "@output O.\n\
               Adom(x) :- E(x,y).\n\
               Adom(y) :- E(x,y).\n\
               T(x,y) :- E(x,y).\n\
               T(x,z) :- T(x,y), E(y,z).\n\
               O(x,y) :- Adom(x), Adom(y), not T(x,y).";
    let qtc = DatalogQuery::parse("qtc", src).expect("well-formed program");

    // 2. Evaluate it centrally.
    let input = path(3); // 0 -> 1 -> 2 -> 3
    let answer = qtc.eval(&input);
    println!(
        "Q_TC on a 4-vertex path: {} disconnected pairs",
        answer.len()
    );
    assert!(answer.contains(&fact("O", [3, 0])));

    // 3. Which Datalog fragment is the program in? (Section 5.1)
    let report = calm::datalog::classify(qtc.program());
    println!(
        "fragment: sp-datalog={} connected={} semi-connected={}",
        report.sp_datalog, report.connected, report.semi_connected
    );
    assert!(report.semi_connected, "Q_TC is semicon-Datalog¬");

    // 4. Monotonicity class, checked empirically (Section 3.1).
    //    Q_TC is NOT monotone and NOT domain-distinct-monotone, but it IS
    //    domain-disjoint-monotone.
    let not_monotone = Exhaustive::new(ExtensionKind::Any).certify(&qtc).is_some();
    let not_distinct = Exhaustive::new(ExtensionKind::DomainDistinct)
        .certify(&qtc)
        .is_some();
    let disjoint_ok = Exhaustive::new(ExtensionKind::DomainDisjoint)
        .certify(&qtc)
        .is_none();
    println!(
        "∉ M: {not_monotone}, ∉ Mdistinct: {not_distinct}, Mdisjoint-consistent: {disjoint_ok}"
    );
    assert!(not_monotone && not_distinct && disjoint_ok);

    // 5. Coordination-free distributed execution (Theorem 4.4): the
    //    disjoint strategy under a domain-guided policy computes Q_TC on
    //    any network, under any schedule.
    let strategy = DisjointStrategy::new(Box::new(DatalogQuery::parse("qtc", src).unwrap()));
    let expected = expected_output(strategy.query(), &input);
    for n in [1, 2, 4] {
        let policy = DomainGuidedPolicy::new(Network::of_size(n));
        let network = TransducerNetwork {
            transducer: &strategy,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        let result = run(&network, &input, &Scheduler::RoundRobin, 200_000);
        assert!(result.quiescent && result.output == expected);
        println!(
            "n={n}: computed Q_TC in {} transitions, {} messages",
            result.metrics.transitions, result.metrics.messages_sent
        );
    }

    // 6. The same query under the plain monotone broadcast strategy goes
    //    WRONG on a cycle input — Q_TC is not monotone, so nodes emit
    //    outputs they can never retract.
    let broadcast = MonotoneBroadcast::new(Box::new(DatalogQuery::parse("qtc", src).unwrap()));
    let cycle: Instance = calm::common::generator::cycle(3);
    let expected_cycle = expected_output(broadcast.query(), &cycle);
    let policy = HashPolicy::new(Network::of_size(2));
    let network = TransducerNetwork {
        transducer: &broadcast,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    let wrong = run(&network, &cycle, &Scheduler::RoundRobin, 200_000);
    println!(
        "monotone strategy on the cycle: {} facts output, {} expected — the CALM boundary in action",
        wrong.output.len(),
        expected_cycle.len()
    );
}
