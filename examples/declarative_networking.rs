//! Declarative networking end-to-end: write a positive Datalog program,
//! compile it into a pure-Datalog transducer, and watch the network
//! compute its fixpoint across asynchronous transitions — the
//! constructive half of the CALM theorem.
//!
//! ```sh
//! cargo run --example declarative_networking
//! ```

use calm::common::fact::Fact;
use calm::common::generator::path;
use calm::common::Instance;
use calm::prelude::*;
use calm::transducer::{compile_monotone_program, heartbeat_witness};

fn main() {
    // A recursive, monotone program: reachability from seed vertices.
    let program = calm::datalog::parse_program(
        "@output R.\n\
         R(x) :- Src(x).\n\
         R(y) :- R(x), E(x,y).",
    )
    .unwrap();

    // Compile it into a broadcast transducer: gossip rules for the edb,
    // one immediate-consequence round per transition for the idb.
    let transducer = compile_monotone_program("net-reach", &program).unwrap();
    println!("compiled transducer rules: the gossip layer plus the rewritten program\n");

    // Input: a path plus an unreachable island, seeded at vertex 0.
    let mut input: Instance = path(6);
    input.insert(fact("E", [100, 101]));
    input.insert(fact("Src", [0]));

    // The centralized answer, renamed into the transducer's output schema.
    let expected = Instance::from_facts(
        calm::datalog::eval::eval_query(&program, &input)
            .unwrap()
            .facts()
            .map(|f| Fact::new(format!("out_{}", f.relation()), f.args().to_vec())),
    );
    println!("centralized: {} reachable vertices", expected.len());

    // Run it on networks of growing size under hash partitioning.
    for n in [1usize, 2, 4, 8] {
        let policy = HashPolicy::new(Network::of_size(n));
        let network = TransducerNetwork {
            transducer: &transducer,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let result = run(&network, &input, &Scheduler::RoundRobin, 1_000_000);
        assert!(result.quiescent);
        assert_eq!(result.output, expected, "n={n}");
        println!(
            "n={n}: fixpoint in {} transitions, {} messages — output correct",
            result.metrics.transitions, result.metrics.messages_sent
        );
    }

    // The recursion unfolds ACROSS transitions: on a single node with all
    // the data, the 6-hop path needs several heartbeats.
    let net = Network::of_size(1);
    let x = net.first().clone();
    let policy = DomainGuidedPolicy::all_to(net, x.clone());
    let network = TransducerNetwork {
        transducer: &transducer,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    let beats = heartbeat_witness(&network, &input, &x, &expected, 20).unwrap();
    println!("\nsingle node: fixpoint reached after {beats} heartbeats (one T_P round each)");

    // Adversarial schedules agree — monotone programs are confluent.
    let policy = HashPolicy::new(Network::of_size(4));
    let network = TransducerNetwork {
        transducer: &transducer,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    for seed in 0..5 {
        let r = run(&network, &input, &Scheduler::random(seed, 100), 1_000_000);
        assert!(r.quiescent && r.output == expected, "seed {seed}");
    }
    println!("5 adversarial random schedules: identical output (confluence) ∎");
}
