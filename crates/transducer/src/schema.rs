//! Transducer schemas and model variants (Sections 4.1.2 and 4.3).

use calm_common::schema::Schema;

/// The five-part transducer schema `Υ = (Υin, Υout, Υmsg, Υmem, Υsys)`.
/// The system part is implicit (derived from `input` and the
/// [`SystemConfig`]): `Id(1)`, `All(1)`, `MyAdom(1)` and `policy_R` per
/// input relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransducerSchema {
    /// Input relations `Υin`.
    pub input: Schema,
    /// Output relations `Υout`.
    pub output: Schema,
    /// Message relations `Υmsg`.
    pub msg: Schema,
    /// Memory relations `Υmem`.
    pub mem: Schema,
}

impl TransducerSchema {
    /// Build a schema, checking pairwise disjointness of the four parts
    /// and that no part collides with the system relation names.
    pub fn new(input: Schema, output: Schema, msg: Schema, mem: Schema) -> Self {
        let parts = [&input, &output, &msg, &mem];
        for (i, a) in parts.iter().enumerate() {
            for b in parts.iter().skip(i + 1) {
                assert!(a.is_disjoint(b), "transducer schema parts must be disjoint");
            }
        }
        for part in parts {
            for name in part.names() {
                assert!(
                    !is_system_relation(name, &input),
                    "relation {name} collides with a system relation"
                );
            }
        }
        TransducerSchema {
            input,
            output,
            msg,
            mem,
        }
    }
}

/// The name of the policy relation for input relation `R`.
pub fn policy_relation(input_relation: &str) -> String {
    format!("policy_{input_relation}")
}

/// Whether `name` is one of the system relations for the given input
/// schema.
pub fn is_system_relation(name: &str, input: &Schema) -> bool {
    if name == "Id" || name == "All" || name == "MyAdom" {
        return true;
    }
    name.strip_prefix("policy_")
        .is_some_and(|base| input.contains(base))
}

/// Which system relations a model exposes — the knobs distinguishing the
/// models of Figure 2's last two columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Expose `MyAdom` and the `policy_R` relations (the policy-aware
    /// extension of Zinn et al.).
    pub policy_relations: bool,
    /// Expose `All` (the full node list). Dropping it gives the `A*`
    /// models of Theorem 4.5.
    pub include_all: bool,
    /// Expose `Id`. Dropping it (with `All`) gives the oblivious
    /// transducers of \[13\].
    pub include_id: bool,
}

impl SystemConfig {
    /// The original model of Ameloot et al. \[13\]: `Id` and `All` only.
    pub const ORIGINAL: SystemConfig = SystemConfig {
        policy_relations: false,
        include_all: true,
        include_id: true,
    };

    /// The policy-aware model of Zinn et al. \[32\] (used for `F1`, `F2`).
    pub const POLICY_AWARE: SystemConfig = SystemConfig {
        policy_relations: true,
        include_all: true,
        include_id: true,
    };

    /// The policy-aware model without `All` (`A1`, `A2` — Theorem 4.5).
    pub const POLICY_AWARE_NO_ALL: SystemConfig = SystemConfig {
        policy_relations: true,
        include_all: false,
        include_id: true,
    };

    /// The original model without `All` (`A0` — Corollary 4.6).
    pub const ORIGINAL_NO_ALL: SystemConfig = SystemConfig {
        policy_relations: false,
        include_all: false,
        include_id: true,
    };

    /// Oblivious transducers: neither `Id` nor `All`.
    pub const OBLIVIOUS: SystemConfig = SystemConfig {
        policy_relations: false,
        include_all: false,
        include_id: false,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_parts_must_be_disjoint() {
        let e2 = Schema::from_pairs([("E", 2)]);
        let o = Schema::from_pairs([("out_T", 2)]);
        let m = Schema::from_pairs([("msg_E", 2)]);
        let mem = Schema::from_pairs([("coll_E", 2)]);
        let s = TransducerSchema::new(e2.clone(), o, m, mem);
        assert_eq!(s.input.arity("E"), Some(2));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_parts_rejected() {
        let e2 = Schema::from_pairs([("E", 2)]);
        let _ = TransducerSchema::new(e2.clone(), e2.clone(), Schema::new(), Schema::new());
    }

    #[test]
    #[should_panic(expected = "system relation")]
    fn system_collision_rejected() {
        let _ = TransducerSchema::new(
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("MyAdom", 1)]),
            Schema::new(),
            Schema::new(),
        );
    }

    #[test]
    fn system_relation_names() {
        let input = Schema::from_pairs([("E", 2)]);
        assert!(is_system_relation("Id", &input));
        assert!(is_system_relation("All", &input));
        assert!(is_system_relation("policy_E", &input));
        assert!(!is_system_relation("policy_F", &input));
        assert!(!is_system_relation("E", &input));
        assert_eq!(policy_relation("E"), "policy_E");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn model_presets() {
        assert!(SystemConfig::POLICY_AWARE.policy_relations);
        assert!(!SystemConfig::POLICY_AWARE_NO_ALL.include_all);
        assert!(!SystemConfig::OBLIVIOUS.include_id);
        assert!(SystemConfig::ORIGINAL.include_all);
        assert!(!SystemConfig::ORIGINAL_NO_ALL.include_all);
    }
}
