//! The asynchronous operational semantics (Section 4.1.3): configurations,
//! transitions, fair runs — driven to quiescence by pluggable schedulers.

use crate::engine::NodeEngine;
use crate::multiset::Multiset;
use crate::network::NodeId;
use crate::policy::{distribute, DistributionPolicy};
use crate::schema::SystemConfig;
use crate::strategy::{class_arg_counts, MessageClassCounts};
use crate::transducer::Transducer;
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::rng::Rng;
use calm_obs::{ArgValue, Obs};
use std::collections::BTreeMap;

/// A transducer network `Π = (N, Υ, Π, P)` ready to run on inputs.
/// The network is taken from the policy.
pub struct TransducerNetwork<'a> {
    /// The per-node transducer.
    pub transducer: &'a dyn Transducer,
    /// The distribution policy (also supplies the network).
    pub policy: &'a dyn DistributionPolicy,
    /// Which system relations nodes see (model variant).
    pub config: SystemConfig,
}

/// A configuration `(s, b)`: per-node state (output ∪ memory facts) and
/// per-node message buffer (a multiset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    /// `s(x)` — output and memory facts stored at each node.
    pub state: BTreeMap<NodeId, Instance>,
    /// `b(x)` — messages sent to each node and not yet delivered.
    pub buffer: BTreeMap<NodeId, Multiset<Fact>>,
}

impl Configuration {
    /// The start configuration: everything empty.
    pub fn start(network: &crate::network::Network) -> Self {
        Configuration {
            state: network
                .nodes()
                .map(|n| (n.clone(), Instance::new()))
                .collect(),
            buffer: network
                .nodes()
                .map(|n| (n.clone(), Multiset::new()))
                .collect(),
        }
    }

    /// Total buffered messages across all nodes.
    pub fn buffered(&self) -> usize {
        self.buffer.values().map(Multiset::len).sum()
    }
}

/// Counters for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total transitions executed.
    pub transitions: usize,
    /// Transitions that delivered no message.
    pub heartbeats: usize,
    /// Messages enqueued: one per (sent fact, recipient) pair.
    pub messages_sent: usize,
    /// Messages delivered (multiset occurrences consumed).
    pub messages_delivered: usize,
    /// Transition index at which the first output fact appeared.
    pub first_output_at: Option<usize>,
    /// Transition index at which the output last grew.
    pub last_output_growth_at: Option<usize>,
    /// Messages sent, broken down by protocol class (`by_class.total()`
    /// equals `messages_sent` at all times).
    pub by_class: MessageClassCounts,
    /// Per-node high-water mark of the message buffer: the largest
    /// buffered-occurrence count each node's queue ever reached.
    pub buffered_high_water: BTreeMap<NodeId, usize>,
    /// Engine-level counters summed over every transition's queries
    /// (zero when the transducer is native Rust rather than Datalog).
    pub eval: calm_common::storage::EvalMetrics,
}

impl Metrics {
    /// The largest buffered-queue depth any node ever reached.
    pub fn max_queue_depth(&self) -> usize {
        self.buffered_high_water
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Fold another run's counters into this one: sums for the flow
    /// counters, per-class and per-node-high-water pointwise merges, and
    /// `EvalMetrics::merge` for the engine counters. Associative and
    /// commutative with `Metrics::default()` as identity — the threaded
    /// executor merges per-worker metrics with this at join, in worker
    /// order, so the result is deterministic.
    ///
    /// The transition indices (`first_output_at`,
    /// `last_output_growth_at`) are local to each run's own transition
    /// counter; the merge keeps the earliest first and the latest last,
    /// which is the right summary when the counters advanced
    /// concurrently.
    pub fn merge(&mut self, other: &Metrics) {
        self.transitions += other.transitions;
        self.heartbeats += other.heartbeats;
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.first_output_at = match (self.first_output_at, other.first_output_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        self.last_output_growth_at = self.last_output_growth_at.max(other.last_output_growth_at);
        self.by_class.merge(&other.by_class);
        for (node, hw) in &other.buffered_high_water {
            let mine = self.buffered_high_water.entry(node.clone()).or_insert(0);
            if *hw > *mine {
                *mine = *hw;
            }
        }
        self.eval.merge(&other.eval);
    }
}

/// The default per-occurrence delivery probability of sampled
/// deliveries and random schedulers.
pub const DEFAULT_DELIVER_P: f64 = 0.6;

/// What a single transition should deliver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// Deliver every buffered message (`m = b(x)`).
    All,
    /// Deliver nothing — a heartbeat.
    None,
    /// Deliver a random submultiset: each buffered occurrence is
    /// delivered with probability `deliver_p`, the rest stay in flight.
    /// This exercises the formal model's "m is a submultiset of b(x)"
    /// nondeterminism (Section 4.1.3). Deterministic given the seed.
    Sample {
        /// Per-transition RNG seed.
        seed: u64,
        /// Probability that each buffered occurrence is delivered.
        deliver_p: f64,
    },
}

impl Delivery {
    /// A sampled delivery with the default probability
    /// ([`DEFAULT_DELIVER_P`]).
    pub fn sample(seed: u64) -> Self {
        Delivery::Sample {
            seed,
            deliver_p: DEFAULT_DELIVER_P,
        }
    }
}

/// Per-node causal-tracing state of a sequential run: the next message
/// id each node mints, and the id of the last message routed into each
/// node's buffer — the causal parent of that node's next send. Mirrors
/// the threaded executor's per-slot trace fields, so sequential and
/// threaded traces carry the same `trace/send` / `trace/deliver`
/// vocabulary and analyze identically.
#[derive(Debug, Clone, Default)]
pub struct CausalTrace {
    next_seq: BTreeMap<NodeId, u64>,
    last_arrival: BTreeMap<NodeId, (u64, u64)>,
}

/// A node's position in network order: the numeric origin used in
/// message ids and the basis of its display track (`index + 1`).
fn node_index(tn: &TransducerNetwork<'_>, x: &NodeId) -> u64 {
    tn.policy
        .network()
        .nodes()
        .position(|n| n == x)
        .unwrap_or(0) as u64
}

/// Execute one transition of node `x`: deliver per `delivery`, expose
/// `D = J ∪ S`, apply the four queries, and update the configuration.
/// Returns `true` when the node's state changed.
pub fn transition(
    tn: &TransducerNetwork<'_>,
    dist: &BTreeMap<NodeId, Instance>,
    config: &mut Configuration,
    x: &NodeId,
    delivery: Delivery,
    metrics: &mut Metrics,
) -> bool {
    transition_with(tn, dist, config, x, delivery, metrics, &Obs::noop())
}

/// As [`transition`], reporting a per-transition event (node, messages
/// delivered/sent, fresh output facts), per-class message counters and
/// per-node queue-depth gauges (each recipient's depth after the sends,
/// plus the active node's residue after delivery) to `obs`. The event's
/// display track is `1 + <node index>`, giving one timeline lane per
/// node.
#[allow(clippy::too_many_arguments)]
pub fn transition_with(
    tn: &TransducerNetwork<'_>,
    dist: &BTreeMap<NodeId, Instance>,
    config: &mut Configuration,
    x: &NodeId,
    delivery: Delivery,
    metrics: &mut Metrics,
    obs: &Obs,
) -> bool {
    transition_traced(tn, dist, config, x, delivery, metrics, obs, None)
}

/// As [`transition_with`], additionally threading the causal-tracing
/// state: when `trace` is supplied and `obs` is enabled, a send mints a
/// `(origin, seq)` message id (causal parent: the last id routed into
/// `x`'s buffer) and emits `trace/send`, and each recipient's buffer
/// insertion emits `trace/deliver` — the same event vocabulary as the
/// threaded executor, so `calm trace report` ingests either.
#[allow(clippy::too_many_arguments)]
pub fn transition_traced(
    tn: &TransducerNetwork<'_>,
    dist: &BTreeMap<NodeId, Instance>,
    config: &mut Configuration,
    x: &NodeId,
    delivery: Delivery,
    metrics: &mut Metrics,
    obs: &Obs,
    mut trace: Option<&mut CausalTrace>,
) -> bool {
    // Delivery half: choose the submultiset m ⊆ b(x) and collapse to the
    // set M. (The step half lives in `NodeEngine::apply`, shared with
    // the threaded executor.)
    let buffer = config.buffer.get_mut(x).expect("node buffer");
    let mut delivered_n = 0usize;
    let delivered: Vec<Fact> = match delivery {
        Delivery::All => buffer
            .drain_all()
            .map(|(f, count)| {
                delivered_n += count;
                f
            })
            .collect(),
        Delivery::None => Vec::new(),
        Delivery::Sample { seed, deliver_p } => {
            let mut rng = Rng::seed_from_u64(seed);
            let mut support: Vec<Fact> = Vec::new();
            // `drain_all` empties the buffer, so kept-back occurrences
            // can be re-inserted directly as we go.
            let drained: Vec<(Fact, usize)> = buffer.drain_all().collect();
            for (f, count) in drained {
                let mut kept_back = 0usize;
                let mut got_one = false;
                for _ in 0..count {
                    if rng.gen_bool(deliver_p) {
                        delivered_n += 1;
                        got_one = true;
                    } else {
                        kept_back += 1;
                    }
                }
                if got_one {
                    support.push(f.clone());
                }
                buffer.insert_n(f, kept_back);
            }
            support
        }
    };
    metrics.messages_delivered += delivered_n;
    let is_heartbeat = match delivery {
        Delivery::None => true,
        Delivery::Sample { .. } => delivered.is_empty(),
        Delivery::All => false,
    };
    if is_heartbeat {
        metrics.heartbeats += 1;
    }

    // Step half: shared node engine.
    let empty = Instance::new();
    let input = dist.get(x).unwrap_or(&empty);
    let engine = NodeEngine::new(tn.transducer, tn.policy, tn.config, x.clone(), input);
    let state = config.state.get_mut(x).expect("node state");
    let outcome = engine.apply(state, &delivered, delivered_n, None, metrics, obs);

    // Route the sends: every message fact goes to every other node.
    if !outcome.sent.is_empty() {
        // Mint a message id for this send and record it as every
        // recipient's causal parent — the same id scheme as the threaded
        // executor's per-slot trace state, so the sequential engine
        // produces traces `calm trace report` analyzes identically.
        let mid = match trace.as_deref_mut().filter(|_| obs.enabled()) {
            Some(tr) => {
                let origin = node_index(tn, x);
                let seq_slot = tr.next_seq.entry(x.clone()).or_insert(0);
                let seq = *seq_slot;
                *seq_slot += 1;
                let cause = tr.last_arrival.get(x).copied();
                let batch: Multiset<Fact> = outcome.sent.iter().cloned().collect();
                let fanout = tn.policy.network().others(x).count() as u64;
                obs.event("trace", "send", origin as u32 + 1, || {
                    let mut args = vec![
                        ("origin", ArgValue::U64(origin)),
                        ("seq", ArgValue::U64(seq)),
                        ("fanout", ArgValue::U64(fanout)),
                        ("facts", ArgValue::U64(batch.len() as u64)),
                    ];
                    if let Some((co, cs)) = cause {
                        args.push(("cause_origin", ArgValue::U64(co)));
                        args.push(("cause_seq", ArgValue::U64(cs)));
                    }
                    for (name, n) in class_arg_counts(&batch) {
                        args.push((name, ArgValue::U64(n)));
                    }
                    args
                });
                Some((origin, seq))
            }
            None => None,
        };
        for y in tn.policy.network().others(x) {
            config
                .buffer
                .get_mut(y)
                .expect("node buffer")
                .extend(outcome.sent.iter().cloned());
            if let Some(id) = mid {
                if let Some(tr) = trace.as_deref_mut() {
                    tr.last_arrival.insert(y.clone(), id);
                }
                let dst = node_index(tn, y);
                obs.event("trace", "deliver", dst as u32 + 1, || {
                    vec![
                        ("origin", ArgValue::U64(id.0)),
                        ("seq", ArgValue::U64(id.1)),
                        ("dst", ArgValue::U64(dst)),
                        ("facts", ArgValue::U64(outcome.sent.len() as u64)),
                    ]
                });
            }
        }
    }

    // Buffered-queue high-water marks (recipient buffers only grew in the
    // send loop above; `x`'s own buffer only shrank or kept its size).
    for y in tn.policy.network().others(x) {
        let depth = config.buffer[y].len();
        let hw = metrics.buffered_high_water.entry(y.clone()).or_insert(0);
        if depth > *hw {
            *hw = depth;
        }
        if obs.enabled() {
            let track = tn
                .policy
                .network()
                .nodes()
                .position(|n| n == y)
                .map_or(0, |i| i as u32 + 1);
            obs.gauge("runtime", "queue_depth", track, depth as u64);
        }
    }
    if obs.enabled() {
        // The active node's own depth after delivery (non-zero only when
        // Sample delivery kept occurrences back); recipient depths were
        // gauged in the high-water loop above.
        obs.gauge(
            "runtime",
            "queue_depth",
            engine.track(),
            config.buffer[x].len() as u64,
        );
    }

    outcome.state_changed
}

/// The union of all nodes' output facts — `out(R)` for the run so far.
pub fn network_output(tn: &TransducerNetwork<'_>, config: &Configuration) -> Instance {
    let mut out = Instance::new();
    for state in config.state.values() {
        out.extend(state.restrict(&tn.transducer.schema().output).facts());
    }
    out
}

/// The result of driving a run to quiescence.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// `out(R)` — the union of output facts across nodes.
    pub output: Instance,
    /// The final configuration.
    pub config: Configuration,
    /// Run counters.
    pub metrics: Metrics,
    /// Whether the run reached quiescence within the transition budget.
    pub quiescent: bool,
}

/// Schedulers: how nodes are activated and messages delivered. All
/// schedulers end with deliver-everything sweeps, making every generated
/// schedule extendable to a fair run whose limit the quiescent
/// configuration *is*.
#[derive(Debug, Clone)]
pub enum Scheduler {
    /// Round-robin over nodes, delivering all buffered messages at each
    /// activation. The deterministic default.
    RoundRobin,
    /// A seeded random prefix: random node activation with random
    /// delivery/heartbeat decisions for `prefix` transitions, then
    /// round-robin sweeps to quiescence. Models adversarial asynchrony
    /// while keeping runs finite.
    Random {
        /// RNG seed.
        seed: u64,
        /// Number of random-schedule transitions before the closing
        /// sweeps.
        prefix: usize,
        /// Per-occurrence delivery probability of the prefix's sampled
        /// deliveries ([`DEFAULT_DELIVER_P`] unless swept).
        deliver_p: f64,
    },
}

impl Scheduler {
    /// A random scheduler with the default delivery probability
    /// ([`DEFAULT_DELIVER_P`]).
    pub fn random(seed: u64, prefix: usize) -> Self {
        Scheduler::Random {
            seed,
            prefix,
            deliver_p: DEFAULT_DELIVER_P,
        }
    }
}

/// Drive a transducer network on an input until quiescent, or until
/// `max_transitions`.
///
/// ```
/// use calm_transducer::{
///     expected_output, run, DomainGuidedPolicy, MonotoneBroadcast, Network,
///     Scheduler, SystemConfig, TransducerNetwork,
/// };
/// use calm_common::{fact, FnQuery, Instance, Schema};
///
/// // Identity on E, wrapped in the monotone broadcast strategy.
/// let copy = FnQuery::new(
///     "copy",
///     Schema::from_pairs([("E", 2)]),
///     Schema::from_pairs([("E2", 2)]),
///     |i: &Instance| Instance::from_facts(
///         i.tuples("E").map(|t| fact("E2", [t[0].clone(), t[1].clone()])),
///     ),
/// );
/// let strategy = MonotoneBroadcast::new(Box::new(copy));
/// let input = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
/// let expected = expected_output(strategy.query(), &input);
///
/// let policy = DomainGuidedPolicy::new(Network::of_size(3));
/// let network = TransducerNetwork {
///     transducer: &strategy,
///     policy: &policy,
///     config: SystemConfig::ORIGINAL,
/// };
/// let result = run(&network, &input, &Scheduler::RoundRobin, 10_000);
/// assert!(result.quiescent);
/// assert_eq!(result.output, expected);
/// ```
///
/// **Quiescence detection.** Transducers may legitimately keep re-sending
/// messages forever (the formal runs are infinite), so "empty buffers" is
/// not a usable stopping criterion. Instead we track, per node, the *set*
/// of distinct message facts ever delivered to it; a configuration is
/// declared quiescent when a full deliver-everything sweep (a) changes no
/// node's state and (b) leaves no node with a buffered message it has
/// never been delivered before. For deterministic transducers whose state
/// accumulates everything they react to (all transducers in this
/// workspace), such a configuration is the limit of every fair extension:
/// re-delivering already-seen messages to unchanged states is a no-op.
pub fn run(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    scheduler: &Scheduler,
    max_transitions: usize,
) -> RunResult {
    run_with(tn, input, scheduler, max_transitions, &Obs::noop())
}

/// As [`run`], reporting per-transition events, per-class message
/// counters, per-node queue-depth gauges and a final run summary to
/// `obs`.
pub fn run_with(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    scheduler: &Scheduler,
    max_transitions: usize,
    obs: &Obs,
) -> RunResult {
    let dist = distribute(tn.policy, input);
    let mut config = Configuration::start(tn.policy.network());
    let mut metrics = Metrics::default();
    let mut trace = CausalTrace::default();
    let mut delivered: BTreeMap<NodeId, std::collections::BTreeSet<Fact>> = tn
        .policy
        .network()
        .nodes()
        .map(|n| (n.clone(), std::collections::BTreeSet::new()))
        .collect();
    let note_delivery = |config: &Configuration,
                         delivered: &mut BTreeMap<NodeId, std::collections::BTreeSet<Fact>>,
                         x: &NodeId| {
        let set = delivered.get_mut(x).expect("node");
        for f in config.buffer[x].support() {
            set.insert(f.clone());
        }
    };

    if let Scheduler::Random {
        seed,
        prefix,
        deliver_p,
    } = scheduler
    {
        // Guards against a degenerate schedule. A non-finite or
        // out-of-range probability falls back into [0, 1]; and the
        // random prefix may claim at most half the transition budget —
        // at `deliver_p = 0` every prefix transition is a heartbeat or
        // an empty sampled delivery, so an unbounded prefix would spin
        // the whole budget away without delivering a single message
        // and the closing sweeps (which provide the fairness the
        // formal model demands) would never run.
        let deliver_p = if deliver_p.is_finite() {
            deliver_p.clamp(0.0, 1.0)
        } else {
            DEFAULT_DELIVER_P
        };
        let prefix = (*prefix).min(max_transitions / 2);
        let mut rng = Rng::seed_from_u64(*seed);
        let nodes: Vec<NodeId> = tn.policy.network().nodes().cloned().collect();
        for _ in 0..prefix {
            if metrics.transitions >= max_transitions {
                break;
            }
            let x = nodes[rng.gen_range(0..nodes.len())].clone();
            let delivery = match rng.gen_range(0..3u8) {
                0 => Delivery::All,
                1 => Delivery::None,
                _ => Delivery::Sample {
                    seed: rng.gen_u64(),
                    deliver_p,
                },
            };
            // Only full deliveries are recorded in the delivered-set (a
            // sampled delivery may skip occurrences; under-recording is
            // conservative for quiescence detection).
            if delivery == Delivery::All {
                note_delivery(&config, &mut delivered, &x);
            }
            transition_traced(
                tn,
                &dist,
                &mut config,
                &x,
                delivery,
                &mut metrics,
                obs,
                Some(&mut trace),
            );
        }
    }

    // Closing round-robin sweeps with full delivery.
    let nodes: Vec<NodeId> = tn.policy.network().nodes().cloned().collect();
    let mut quiescent = false;
    while metrics.transitions < max_transitions {
        let mut state_changed = false;
        for x in &nodes {
            if metrics.transitions >= max_transitions {
                break;
            }
            note_delivery(&config, &mut delivered, x);
            if transition_traced(
                tn,
                &dist,
                &mut config,
                x,
                Delivery::All,
                &mut metrics,
                obs,
                Some(&mut trace),
            ) {
                state_changed = true;
            }
        }
        let all_messages_seen = nodes
            .iter()
            .all(|x| config.buffer[x].support().all(|f| delivered[x].contains(f)));
        if !state_changed && all_messages_seen {
            quiescent = true;
            break;
        }
    }

    if obs.enabled() {
        obs.event("runtime", "run_summary", 0, || {
            vec![
                ("quiescent", ArgValue::Bool(quiescent)),
                ("transitions", ArgValue::U64(metrics.transitions as u64)),
                ("heartbeats", ArgValue::U64(metrics.heartbeats as u64)),
                ("messages_sent", ArgValue::U64(metrics.messages_sent as u64)),
                (
                    "messages_delivered",
                    ArgValue::U64(metrics.messages_delivered as u64),
                ),
                (
                    "max_queue_depth",
                    ArgValue::U64(metrics.max_queue_depth() as u64),
                ),
            ]
        });
    }

    RunResult {
        output: network_output(tn, &config),
        config,
        metrics,
        quiescent,
    }
}

/// Check that the network *computes* a query on this input: every
/// scheduler in `schedulers` must quiesce with output exactly `expected`.
/// Returns the per-scheduler results for inspection.
pub fn verify_computes(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    expected: &Instance,
    schedulers: &[Scheduler],
    max_transitions: usize,
) -> Result<Vec<RunResult>, String> {
    let mut results = Vec::new();
    for s in schedulers {
        let r = run(tn, input, s, max_transitions);
        if !r.quiescent {
            return Err(format!(
                "run did not quiesce within {max_transitions} transitions under {s:?}"
            ));
        }
        if &r.output != expected {
            return Err(format!(
                "scheduler {s:?}: output {:?} != expected {:?}",
                r.output, expected
            ));
        }
        results.push(r);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::HashPolicy;
    use crate::schema::TransducerSchema;
    use crate::transducer::DatalogTransducer;
    use calm_common::fact::fact;
    use calm_common::schema::Schema;

    /// A broadcast-union transducer: every node broadcasts its local edges
    /// and outputs everything it knows. Computes the identity query on E
    /// (a monotone query) — the simplest CALM-style example.
    fn union_transducer() -> DatalogTransducer {
        DatalogTransducer::parse(
            "union",
            TransducerSchema::new(
                Schema::from_pairs([("E", 2)]),
                Schema::from_pairs([("out_E", 2)]),
                Schema::from_pairs([("msg_E", 2)]),
                Schema::from_pairs([("seen_E", 2)]),
            ),
            "msg_E(x,y) :- E(x,y).\n\
             seen_E(x,y) :- E(x,y).\n\
             seen_E(x,y) :- msg_E(x,y).\n\
             out_E(x,y) :- seen_E(x,y).\n\
             out_E(x,y) :- E(x,y).",
        )
        .unwrap()
    }

    fn expected_out(input: &Instance) -> Instance {
        Instance::from_facts(
            input
                .tuples("E")
                .map(|t| fact("out_E", [t[0].clone(), t[1].clone()])),
        )
    }

    #[test]
    fn union_network_computes_identity() {
        let net = Network::of_size(3);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::path(6);
        let expected = expected_out(&input);
        let results = verify_computes(
            &tn,
            &input,
            &expected,
            &[
                Scheduler::RoundRobin,
                Scheduler::random(1, 20),
                Scheduler::random(2, 50),
            ],
            10_000,
        )
        .unwrap();
        assert!(results.iter().all(|r| r.quiescent));
        // Messages flowed (3 nodes, nonempty input).
        assert!(results[0].metrics.messages_sent > 0);
    }

    #[test]
    fn single_node_needs_no_messages_delivered_for_output() {
        let net = Network::of_size(1);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::path(3);
        let r = run(&tn, &input, &Scheduler::RoundRobin, 1000);
        assert!(r.quiescent);
        assert_eq!(r.output, expected_out(&input));
        // No other nodes: nothing is ever enqueued.
        assert_eq!(r.metrics.messages_sent, 0);
    }

    #[test]
    fn empty_input_quiesces_immediately() {
        let net = Network::of_size(2);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r = run(&tn, &Instance::new(), &Scheduler::RoundRobin, 100);
        assert!(r.quiescent);
        assert!(r.output.is_empty());
    }

    #[test]
    fn random_schedules_converge_to_same_output() {
        let net = Network::of_size(4);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::cycle(5);
        let expected = expected_out(&input);
        for seed in 0..8 {
            let r = run(&tn, &input, &Scheduler::random(seed, 60), 10_000);
            assert!(r.quiescent, "seed {seed}");
            assert_eq!(r.output, expected, "confluence under seed {seed}");
        }
    }

    #[test]
    fn empty_delivery_scheduler_terminates_via_heartbeats() {
        // Regression: at `deliver_p = 0` every prefix transition is a
        // heartbeat or an empty sampled delivery. An unbounded prefix
        // used to spin the entire transition budget without delivering
        // a single message, so the closing sweeps never ran and the
        // run livelocked into a non-quiescent report. The prefix cap
        // reserves budget for the sweeps: the run still quiesces, on
        // the right output, with the prefix visible as heartbeats.
        let net = Network::of_size(3);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::path(4);
        let expected = expected_out(&input);
        for deliver_p in [0.0, f64::NAN, -3.0] {
            let r = run(
                &tn,
                &input,
                &Scheduler::Random {
                    seed: 3,
                    prefix: usize::MAX,
                    deliver_p,
                },
                2_000,
            );
            assert!(r.quiescent, "sweeps must still run at p={deliver_p}");
            assert_eq!(r.output, expected, "p={deliver_p}");
            assert!(r.metrics.heartbeats > 0, "the prefix ran, as heartbeats");
            assert!(
                r.metrics.transitions <= 2_000,
                "budget respected at p={deliver_p}"
            );
        }
    }

    #[test]
    fn delivery_probability_is_sweepable() {
        // deliver_p = 0 keeps every sampled occurrence in flight (a
        // heartbeat), deliver_p = 1 delivers everything; the closing
        // sweeps make the output identical either way.
        let net = Network::of_size(3);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::path(4);
        let expected = expected_out(&input);
        for deliver_p in [0.0, 0.3, 1.0] {
            let r = run(
                &tn,
                &input,
                &Scheduler::Random {
                    seed: 9,
                    prefix: 30,
                    deliver_p,
                },
                10_000,
            );
            assert!(r.quiescent, "p={deliver_p}");
            assert_eq!(r.output, expected, "confluence at p={deliver_p}");
        }
    }

    #[test]
    fn metrics_merge_is_associative_with_identity() {
        let sample = |seed: u64| {
            let net = Network::of_size(3);
            let policy = HashPolicy::new(net);
            let t = union_transducer();
            let tn = TransducerNetwork {
                transducer: &t,
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            };
            run(
                &tn,
                &calm_common::generator::path(4),
                &Scheduler::random(seed, 25),
                10_000,
            )
            .metrics
        };
        let (a, b, c) = (sample(1), sample(2), sample(3));
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        // default is an identity on both sides
        let mut with_id = Metrics::default();
        with_id.merge(&a);
        assert_eq!(with_id, a);
        let mut id_after = a.clone();
        id_after.merge(&Metrics::default());
        assert_eq!(id_after, a);
    }

    #[test]
    fn memory_update_follows_the_paper_formula() {
        // s2 = (s1 ∪ (ins \ del)) \ (del \ ins): facts both inserted and
        // deleted in one transition cancel out; deletions of stored facts
        // take effect.
        use crate::schema::TransducerSchema;
        let t = DatalogTransducer::parse(
            "toggler",
            TransducerSchema::new(
                Schema::from_pairs([("E", 2)]),
                Schema::from_pairs([("out_probe", 2)]),
                Schema::new(),
                Schema::from_pairs([("flag", 2), ("both", 2)]),
            ),
            // flag is inserted when absent and deleted when present — a
            // genuine toggle across transitions. `both` is inserted AND
            // deleted every transition: (ins\del) and (del\ins) are both
            // empty for it, so it never appears.
            "flag(x,y) :- E(x,y), not flag(x,y).\n\
             del_flag(x,y) :- E(x,y), flag(x,y).\n\
             both(x,y) :- E(x,y).\n\
             del_both(x,y) :- E(x,y).\n\
             out_probe(x,y) :- flag(x,y).",
        )
        .unwrap();
        let net = Network::of_size(1);
        let policy = HashPolicy::new(net.clone());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = Instance::from_facts([fact("E", [1, 2])]);
        let dist = crate::policy::distribute(&policy, &input);
        let mut config = Configuration::start(&net);
        let mut metrics = Metrics::default();
        let x = net.first().clone();
        // Transition 1: flag inserted.
        transition(&tn, &dist, &mut config, &x, Delivery::None, &mut metrics);
        assert!(config.state[&x].contains(&fact("flag", [1, 2])));
        assert!(!config.state[&x].contains(&fact("both", [1, 2])));
        // Transition 2: flag present -> deleted (the insertion rule needs
        // ¬flag, so only the deletion fires).
        transition(&tn, &dist, &mut config, &x, Delivery::None, &mut metrics);
        assert!(!config.state[&x].contains(&fact("flag", [1, 2])));
        // Transition 3: toggles back on.
        transition(&tn, &dist, &mut config, &x, Delivery::None, &mut metrics);
        assert!(config.state[&x].contains(&fact("flag", [1, 2])));
        // Output is cumulative: the probe survives flag-off transitions.
        assert!(config.state[&x].contains(&fact("out_probe", [1, 2])));
    }

    #[test]
    fn metrics_track_first_output() {
        let net = Network::of_size(2);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::path(2);
        let r = run(&tn, &input, &Scheduler::RoundRobin, 1000);
        assert!(r.metrics.first_output_at.is_some());
        assert!(r.metrics.first_output_at <= r.metrics.last_output_growth_at);
    }
}
