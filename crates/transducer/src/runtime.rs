//! The asynchronous operational semantics (Section 4.1.3): configurations,
//! transitions, fair runs — driven to quiescence by pluggable schedulers.

use crate::multiset::Multiset;
use crate::network::NodeId;
use crate::policy::{distribute, DistributionPolicy};
use crate::schema::SystemConfig;
use crate::strategy::{classify_message, MessageClassCounts};
use crate::system_facts::system_facts;
use crate::transducer::Transducer;
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::rng::Rng;
use calm_obs::{ArgValue, Obs};
use std::collections::BTreeMap;

/// A transducer network `Π = (N, Υ, Π, P)` ready to run on inputs.
/// The network is taken from the policy.
pub struct TransducerNetwork<'a> {
    /// The per-node transducer.
    pub transducer: &'a dyn Transducer,
    /// The distribution policy (also supplies the network).
    pub policy: &'a dyn DistributionPolicy,
    /// Which system relations nodes see (model variant).
    pub config: SystemConfig,
}

/// A configuration `(s, b)`: per-node state (output ∪ memory facts) and
/// per-node message buffer (a multiset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    /// `s(x)` — output and memory facts stored at each node.
    pub state: BTreeMap<NodeId, Instance>,
    /// `b(x)` — messages sent to each node and not yet delivered.
    pub buffer: BTreeMap<NodeId, Multiset<Fact>>,
}

impl Configuration {
    /// The start configuration: everything empty.
    pub fn start(network: &crate::network::Network) -> Self {
        Configuration {
            state: network
                .nodes()
                .map(|n| (n.clone(), Instance::new()))
                .collect(),
            buffer: network
                .nodes()
                .map(|n| (n.clone(), Multiset::new()))
                .collect(),
        }
    }

    /// Total buffered messages across all nodes.
    pub fn buffered(&self) -> usize {
        self.buffer.values().map(Multiset::len).sum()
    }
}

/// Counters for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total transitions executed.
    pub transitions: usize,
    /// Transitions that delivered no message.
    pub heartbeats: usize,
    /// Messages enqueued: one per (sent fact, recipient) pair.
    pub messages_sent: usize,
    /// Messages delivered (multiset occurrences consumed).
    pub messages_delivered: usize,
    /// Transition index at which the first output fact appeared.
    pub first_output_at: Option<usize>,
    /// Transition index at which the output last grew.
    pub last_output_growth_at: Option<usize>,
    /// Messages sent, broken down by protocol class (`by_class.total()`
    /// equals `messages_sent` at all times).
    pub by_class: MessageClassCounts,
    /// Per-node high-water mark of the message buffer: the largest
    /// buffered-occurrence count each node's queue ever reached.
    pub buffered_high_water: BTreeMap<NodeId, usize>,
    /// Engine-level counters summed over every transition's queries
    /// (zero when the transducer is native Rust rather than Datalog).
    pub eval: calm_common::storage::EvalMetrics,
}

impl Metrics {
    /// The largest buffered-queue depth any node ever reached.
    pub fn max_queue_depth(&self) -> usize {
        self.buffered_high_water
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// What a single transition should deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver every buffered message (`m = b(x)`).
    All,
    /// Deliver nothing — a heartbeat.
    None,
    /// Deliver a random submultiset: each buffered occurrence is
    /// delivered with probability 0.6, the rest stay in flight. This
    /// exercises the formal model's "m is a submultiset of b(x)"
    /// nondeterminism (Section 4.1.3). Deterministic given the seed.
    Sample {
        /// Per-transition RNG seed.
        seed: u64,
    },
}

/// Execute one transition of node `x`: deliver per `delivery`, expose
/// `D = J ∪ S`, apply the four queries, and update the configuration.
/// Returns `true` when the node's state changed.
pub fn transition(
    tn: &TransducerNetwork<'_>,
    dist: &BTreeMap<NodeId, Instance>,
    config: &mut Configuration,
    x: &NodeId,
    delivery: Delivery,
    metrics: &mut Metrics,
) -> bool {
    transition_with(tn, dist, config, x, delivery, metrics, &Obs::noop())
}

/// As [`transition`], reporting a per-transition event (node, messages
/// delivered/sent, fresh output facts), per-class message counters and
/// per-node queue-depth gauges (each recipient's depth after the sends,
/// plus the active node's residue after delivery) to `obs`. The event's
/// display track is `1 + <node index>`, giving one timeline lane per
/// node.
#[allow(clippy::too_many_arguments)]
pub fn transition_with(
    tn: &TransducerNetwork<'_>,
    dist: &BTreeMap<NodeId, Instance>,
    config: &mut Configuration,
    x: &NodeId,
    delivery: Delivery,
    metrics: &mut Metrics,
    obs: &Obs,
) -> bool {
    metrics.transitions += 1;
    let delivered_before = metrics.messages_delivered;
    let sent_before = metrics.messages_sent;
    let class_before = metrics.by_class;
    // Choose the submultiset m and collapse to the set M.
    let buffer = config.buffer.get_mut(x).expect("node buffer");
    let delivered: Vec<Fact> = match delivery {
        Delivery::All => {
            let taken = buffer.take_all();
            metrics.messages_delivered += taken.len();
            taken.support().cloned().collect()
        }
        Delivery::None => {
            metrics.heartbeats += 1;
            Vec::new()
        }
        Delivery::Sample { seed } => {
            let mut rng = Rng::seed_from_u64(seed);
            let taken = buffer.take_all();
            let mut delivered_support: Vec<Fact> = Vec::new();
            for (f, count) in taken.iter() {
                let mut kept_back = 0usize;
                let mut got_one = false;
                for _ in 0..count {
                    if rng.gen_bool(0.6) {
                        metrics.messages_delivered += 1;
                        got_one = true;
                    } else {
                        kept_back += 1;
                    }
                }
                if got_one {
                    delivered_support.push(f.clone());
                }
                buffer.insert_n(f.clone(), kept_back);
            }
            if delivered_support.is_empty() {
                metrics.heartbeats += 1;
            }
            delivered_support
        }
    };

    // J = H(x) ∪ s(x) ∪ M.
    let mut j = dist.get(x).cloned().unwrap_or_default();
    j.extend(config.state[x].facts());
    j.extend(delivered.iter().cloned());

    // S and D.
    let s = system_facts(
        x,
        tn.policy.network(),
        &tn.transducer.schema().input,
        tn.policy,
        tn.config,
        &j,
    );
    let d = j.union(&s);

    let step = tn.transducer.step(&d);
    metrics.eval.merge(&step.metrics);

    // Update state: cumulative output, insert/delete memory.
    let schema = tn.transducer.schema();
    let state = config.state.get_mut(x).expect("node state");
    let before = state.clone();
    for f in step.out.facts() {
        debug_assert!(schema.output.covers(&f), "Qout must target Υout: {f}");
        state.insert(f);
    }
    let ins = step.ins.difference(&step.del);
    let del = step.del.difference(&step.ins);
    for f in ins.facts() {
        debug_assert!(schema.mem.covers(&f), "Qins must target Υmem: {f}");
        state.insert(f);
    }
    for f in del.facts() {
        state.remove(&f);
    }
    let state_changed = *state != before;

    // Send messages to every other node.
    for f in step.snd.facts() {
        debug_assert!(schema.msg.covers(&f), "Qsnd must target Υmsg: {f}");
        let class = classify_message(&f);
        let mut recipients = 0usize;
        for y in tn.policy.network().others(x) {
            config
                .buffer
                .get_mut(y)
                .expect("node buffer")
                .insert(f.clone());
            recipients += 1;
        }
        metrics.messages_sent += recipients;
        metrics.by_class.record(class, recipients);
    }

    // Buffered-queue high-water marks (recipient buffers only grew in the
    // send loop above; `x`'s own buffer only shrank or kept its size).
    for y in tn.policy.network().others(x) {
        let depth = config.buffer[y].len();
        let hw = metrics.buffered_high_water.entry(y.clone()).or_insert(0);
        if depth > *hw {
            *hw = depth;
        }
        if obs.enabled() {
            let track = tn
                .policy
                .network()
                .nodes()
                .position(|n| n == y)
                .map_or(0, |i| i as u32 + 1);
            obs.gauge("runtime", "queue_depth", track, depth as u64);
        }
    }

    // Output growth bookkeeping.
    let grew_output =
        config.state[x].restrict(&schema.output).len() > before.restrict(&schema.output).len();
    if grew_output {
        if metrics.first_output_at.is_none() {
            metrics.first_output_at = Some(metrics.transitions);
        }
        metrics.last_output_growth_at = Some(metrics.transitions);
    }

    if obs.enabled() {
        // Track 1 + node index: one display lane per node, track 0 stays
        // free for engine-level spans.
        let track = tn
            .policy
            .network()
            .nodes()
            .position(|n| n == x)
            .map_or(0, |i| i as u32 + 1);
        let delivered_n = metrics.messages_delivered - delivered_before;
        let sent_n = metrics.messages_sent - sent_before;
        let new_output: Vec<String> = config.state[x]
            .restrict(&schema.output)
            .difference(&before.restrict(&schema.output))
            .facts()
            .map(|f| f.to_string())
            .collect();
        obs.event("runtime", "transition", track, || {
            vec![
                ("node", ArgValue::Str(x.to_string())),
                ("delivered", ArgValue::U64(delivered_n as u64)),
                ("sent", ArgValue::U64(sent_n as u64)),
                ("state_changed", ArgValue::Bool(state_changed)),
                ("new_output", ArgValue::List(new_output)),
            ]
        });
        // The active node's own depth after delivery (non-zero only when
        // Sample delivery kept occurrences back); recipient depths were
        // gauged in the high-water loop above.
        obs.gauge(
            "runtime",
            "queue_depth",
            track,
            config.buffer[x].len() as u64,
        );
        if delivered_n > 0 {
            obs.counter("runtime", "messages.delivered", delivered_n as u64);
        }
        if sent_n > 0 {
            obs.counter("runtime", "messages.sent", sent_n as u64);
            for ((label, now), (_, was)) in metrics
                .by_class
                .as_pairs()
                .iter()
                .zip(class_before.as_pairs().iter())
            {
                if now > was {
                    obs.counter("strategy", &format!("messages.{label}"), (now - was) as u64);
                }
            }
        }
        if delivered_n > 0 {
            obs.histogram("runtime", "delivered_batch", delivered_n as u64);
        }
    }

    state_changed
}

/// The union of all nodes' output facts — `out(R)` for the run so far.
pub fn network_output(tn: &TransducerNetwork<'_>, config: &Configuration) -> Instance {
    let mut out = Instance::new();
    for state in config.state.values() {
        out.extend(state.restrict(&tn.transducer.schema().output).facts());
    }
    out
}

/// The result of driving a run to quiescence.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// `out(R)` — the union of output facts across nodes.
    pub output: Instance,
    /// The final configuration.
    pub config: Configuration,
    /// Run counters.
    pub metrics: Metrics,
    /// Whether the run reached quiescence within the transition budget.
    pub quiescent: bool,
}

/// Schedulers: how nodes are activated and messages delivered. All
/// schedulers end with deliver-everything sweeps, making every generated
/// schedule extendable to a fair run whose limit the quiescent
/// configuration *is*.
#[derive(Debug, Clone)]
pub enum Scheduler {
    /// Round-robin over nodes, delivering all buffered messages at each
    /// activation. The deterministic default.
    RoundRobin,
    /// A seeded random prefix: random node activation with random
    /// delivery/heartbeat decisions for `prefix` transitions, then
    /// round-robin sweeps to quiescence. Models adversarial asynchrony
    /// while keeping runs finite.
    Random {
        /// RNG seed.
        seed: u64,
        /// Number of random-schedule transitions before the closing
        /// sweeps.
        prefix: usize,
    },
}

/// Drive a transducer network on an input until quiescent, or until
/// `max_transitions`.
///
/// ```
/// use calm_transducer::{
///     expected_output, run, DomainGuidedPolicy, MonotoneBroadcast, Network,
///     Scheduler, SystemConfig, TransducerNetwork,
/// };
/// use calm_common::{fact, FnQuery, Instance, Schema};
///
/// // Identity on E, wrapped in the monotone broadcast strategy.
/// let copy = FnQuery::new(
///     "copy",
///     Schema::from_pairs([("E", 2)]),
///     Schema::from_pairs([("E2", 2)]),
///     |i: &Instance| Instance::from_facts(
///         i.tuples("E").map(|t| fact("E2", [t[0].clone(), t[1].clone()])),
///     ),
/// );
/// let strategy = MonotoneBroadcast::new(Box::new(copy));
/// let input = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
/// let expected = expected_output(strategy.query(), &input);
///
/// let policy = DomainGuidedPolicy::new(Network::of_size(3));
/// let network = TransducerNetwork {
///     transducer: &strategy,
///     policy: &policy,
///     config: SystemConfig::ORIGINAL,
/// };
/// let result = run(&network, &input, &Scheduler::RoundRobin, 10_000);
/// assert!(result.quiescent);
/// assert_eq!(result.output, expected);
/// ```
///
/// **Quiescence detection.** Transducers may legitimately keep re-sending
/// messages forever (the formal runs are infinite), so "empty buffers" is
/// not a usable stopping criterion. Instead we track, per node, the *set*
/// of distinct message facts ever delivered to it; a configuration is
/// declared quiescent when a full deliver-everything sweep (a) changes no
/// node's state and (b) leaves no node with a buffered message it has
/// never been delivered before. For deterministic transducers whose state
/// accumulates everything they react to (all transducers in this
/// workspace), such a configuration is the limit of every fair extension:
/// re-delivering already-seen messages to unchanged states is a no-op.
pub fn run(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    scheduler: &Scheduler,
    max_transitions: usize,
) -> RunResult {
    run_with(tn, input, scheduler, max_transitions, &Obs::noop())
}

/// As [`run`], reporting per-transition events, per-class message
/// counters, per-node queue-depth gauges and a final run summary to
/// `obs`.
pub fn run_with(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    scheduler: &Scheduler,
    max_transitions: usize,
    obs: &Obs,
) -> RunResult {
    let dist = distribute(tn.policy, input);
    let mut config = Configuration::start(tn.policy.network());
    let mut metrics = Metrics::default();
    let mut delivered: BTreeMap<NodeId, std::collections::BTreeSet<Fact>> = tn
        .policy
        .network()
        .nodes()
        .map(|n| (n.clone(), std::collections::BTreeSet::new()))
        .collect();
    let note_delivery = |config: &Configuration,
                         delivered: &mut BTreeMap<NodeId, std::collections::BTreeSet<Fact>>,
                         x: &NodeId| {
        let set = delivered.get_mut(x).expect("node");
        for f in config.buffer[x].support() {
            set.insert(f.clone());
        }
    };

    if let Scheduler::Random { seed, prefix } = scheduler {
        let mut rng = Rng::seed_from_u64(*seed);
        let nodes: Vec<NodeId> = tn.policy.network().nodes().cloned().collect();
        for _ in 0..*prefix {
            if metrics.transitions >= max_transitions {
                break;
            }
            let x = nodes[rng.gen_range(0..nodes.len())].clone();
            let delivery = match rng.gen_range(0..3u8) {
                0 => Delivery::All,
                1 => Delivery::None,
                _ => Delivery::Sample {
                    seed: rng.gen_u64(),
                },
            };
            // Only full deliveries are recorded in the delivered-set (a
            // sampled delivery may skip occurrences; under-recording is
            // conservative for quiescence detection).
            if delivery == Delivery::All {
                note_delivery(&config, &mut delivered, &x);
            }
            transition_with(tn, &dist, &mut config, &x, delivery, &mut metrics, obs);
        }
    }

    // Closing round-robin sweeps with full delivery.
    let nodes: Vec<NodeId> = tn.policy.network().nodes().cloned().collect();
    let mut quiescent = false;
    while metrics.transitions < max_transitions {
        let mut state_changed = false;
        for x in &nodes {
            if metrics.transitions >= max_transitions {
                break;
            }
            note_delivery(&config, &mut delivered, x);
            if transition_with(tn, &dist, &mut config, x, Delivery::All, &mut metrics, obs) {
                state_changed = true;
            }
        }
        let all_messages_seen = nodes
            .iter()
            .all(|x| config.buffer[x].support().all(|f| delivered[x].contains(f)));
        if !state_changed && all_messages_seen {
            quiescent = true;
            break;
        }
    }

    if obs.enabled() {
        obs.event("runtime", "run_summary", 0, || {
            vec![
                ("quiescent", ArgValue::Bool(quiescent)),
                ("transitions", ArgValue::U64(metrics.transitions as u64)),
                ("heartbeats", ArgValue::U64(metrics.heartbeats as u64)),
                ("messages_sent", ArgValue::U64(metrics.messages_sent as u64)),
                (
                    "messages_delivered",
                    ArgValue::U64(metrics.messages_delivered as u64),
                ),
                (
                    "max_queue_depth",
                    ArgValue::U64(metrics.max_queue_depth() as u64),
                ),
            ]
        });
    }

    RunResult {
        output: network_output(tn, &config),
        config,
        metrics,
        quiescent,
    }
}

/// Check that the network *computes* a query on this input: every
/// scheduler in `schedulers` must quiesce with output exactly `expected`.
/// Returns the per-scheduler results for inspection.
pub fn verify_computes(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    expected: &Instance,
    schedulers: &[Scheduler],
    max_transitions: usize,
) -> Result<Vec<RunResult>, String> {
    let mut results = Vec::new();
    for s in schedulers {
        let r = run(tn, input, s, max_transitions);
        if !r.quiescent {
            return Err(format!(
                "run did not quiesce within {max_transitions} transitions under {s:?}"
            ));
        }
        if &r.output != expected {
            return Err(format!(
                "scheduler {s:?}: output {:?} != expected {:?}",
                r.output, expected
            ));
        }
        results.push(r);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::HashPolicy;
    use crate::schema::TransducerSchema;
    use crate::transducer::DatalogTransducer;
    use calm_common::fact::fact;
    use calm_common::schema::Schema;

    /// A broadcast-union transducer: every node broadcasts its local edges
    /// and outputs everything it knows. Computes the identity query on E
    /// (a monotone query) — the simplest CALM-style example.
    fn union_transducer() -> DatalogTransducer {
        DatalogTransducer::parse(
            "union",
            TransducerSchema::new(
                Schema::from_pairs([("E", 2)]),
                Schema::from_pairs([("out_E", 2)]),
                Schema::from_pairs([("msg_E", 2)]),
                Schema::from_pairs([("seen_E", 2)]),
            ),
            "msg_E(x,y) :- E(x,y).\n\
             seen_E(x,y) :- E(x,y).\n\
             seen_E(x,y) :- msg_E(x,y).\n\
             out_E(x,y) :- seen_E(x,y).\n\
             out_E(x,y) :- E(x,y).",
        )
        .unwrap()
    }

    fn expected_out(input: &Instance) -> Instance {
        Instance::from_facts(
            input
                .tuples("E")
                .map(|t| fact("out_E", [t[0].clone(), t[1].clone()])),
        )
    }

    #[test]
    fn union_network_computes_identity() {
        let net = Network::of_size(3);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::path(6);
        let expected = expected_out(&input);
        let results = verify_computes(
            &tn,
            &input,
            &expected,
            &[
                Scheduler::RoundRobin,
                Scheduler::Random {
                    seed: 1,
                    prefix: 20,
                },
                Scheduler::Random {
                    seed: 2,
                    prefix: 50,
                },
            ],
            10_000,
        )
        .unwrap();
        assert!(results.iter().all(|r| r.quiescent));
        // Messages flowed (3 nodes, nonempty input).
        assert!(results[0].metrics.messages_sent > 0);
    }

    #[test]
    fn single_node_needs_no_messages_delivered_for_output() {
        let net = Network::of_size(1);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::path(3);
        let r = run(&tn, &input, &Scheduler::RoundRobin, 1000);
        assert!(r.quiescent);
        assert_eq!(r.output, expected_out(&input));
        // No other nodes: nothing is ever enqueued.
        assert_eq!(r.metrics.messages_sent, 0);
    }

    #[test]
    fn empty_input_quiesces_immediately() {
        let net = Network::of_size(2);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r = run(&tn, &Instance::new(), &Scheduler::RoundRobin, 100);
        assert!(r.quiescent);
        assert!(r.output.is_empty());
    }

    #[test]
    fn random_schedules_converge_to_same_output() {
        let net = Network::of_size(4);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::cycle(5);
        let expected = expected_out(&input);
        for seed in 0..8 {
            let r = run(&tn, &input, &Scheduler::Random { seed, prefix: 60 }, 10_000);
            assert!(r.quiescent, "seed {seed}");
            assert_eq!(r.output, expected, "confluence under seed {seed}");
        }
    }

    #[test]
    fn memory_update_follows_the_paper_formula() {
        // s2 = (s1 ∪ (ins \ del)) \ (del \ ins): facts both inserted and
        // deleted in one transition cancel out; deletions of stored facts
        // take effect.
        use crate::schema::TransducerSchema;
        let t = DatalogTransducer::parse(
            "toggler",
            TransducerSchema::new(
                Schema::from_pairs([("E", 2)]),
                Schema::from_pairs([("out_probe", 2)]),
                Schema::new(),
                Schema::from_pairs([("flag", 2), ("both", 2)]),
            ),
            // flag is inserted when absent and deleted when present — a
            // genuine toggle across transitions. `both` is inserted AND
            // deleted every transition: (ins\del) and (del\ins) are both
            // empty for it, so it never appears.
            "flag(x,y) :- E(x,y), not flag(x,y).\n\
             del_flag(x,y) :- E(x,y), flag(x,y).\n\
             both(x,y) :- E(x,y).\n\
             del_both(x,y) :- E(x,y).\n\
             out_probe(x,y) :- flag(x,y).",
        )
        .unwrap();
        let net = Network::of_size(1);
        let policy = HashPolicy::new(net.clone());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = Instance::from_facts([fact("E", [1, 2])]);
        let dist = crate::policy::distribute(&policy, &input);
        let mut config = Configuration::start(&net);
        let mut metrics = Metrics::default();
        let x = net.first().clone();
        // Transition 1: flag inserted.
        transition(&tn, &dist, &mut config, &x, Delivery::None, &mut metrics);
        assert!(config.state[&x].contains(&fact("flag", [1, 2])));
        assert!(!config.state[&x].contains(&fact("both", [1, 2])));
        // Transition 2: flag present -> deleted (the insertion rule needs
        // ¬flag, so only the deletion fires).
        transition(&tn, &dist, &mut config, &x, Delivery::None, &mut metrics);
        assert!(!config.state[&x].contains(&fact("flag", [1, 2])));
        // Transition 3: toggles back on.
        transition(&tn, &dist, &mut config, &x, Delivery::None, &mut metrics);
        assert!(config.state[&x].contains(&fact("flag", [1, 2])));
        // Output is cumulative: the probe survives flag-off transitions.
        assert!(config.state[&x].contains(&fact("out_probe", [1, 2])));
    }

    #[test]
    fn metrics_track_first_output() {
        let net = Network::of_size(2);
        let policy = HashPolicy::new(net);
        let t = union_transducer();
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let input = calm_common::generator::path(2);
        let r = run(&tn, &input, &Scheduler::RoundRobin, 1000);
        assert!(r.metrics.first_output_at.is_some());
        assert!(r.metrics.first_output_at <= r.metrics.last_output_growth_at);
    }
}
