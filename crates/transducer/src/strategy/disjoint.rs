//! The `Mdisjoint` strategy (proof of Theorem 4.4): broadcast the active
//! domain; run a per-value request/ack/OK protocol with the nodes
//! responsible for each value under the domain assignment; output `Q` on
//! complete *components* of the collected input.
//!
//! Correct under **domain-guided** policies: a node responsible for value
//! `a` (i.e. `x ∈ α(a)`, detected via `policy_R(a, ..., a)`) locally
//! holds *every* input fact containing `a`. The §4.3 discussion stresses
//! that this per-value protocol is coordination determined purely by the
//! data distribution — the strategy never reads `All` and cannot
//! globally synchronize.

use super::{coll_rel, collected_input, msg_rel, rename_to_out, renamed_output_schema};
use crate::schema::{policy_relation, TransducerSchema};
use crate::transducer::{Transducer, TransducerStep};
use calm_common::component::components;
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;
use calm_common::value::Value;
use std::collections::BTreeSet;

/// Message relation names (fixed; the per-relation ones come from
/// `strategy::msg_rel`).
const VAL_BC: &str = "v_a"; // value broadcast
const REQUEST: &str = "rq"; // (requester, value)
const OK: &str = "okm"; // (requester, value)

fn ack_rel(r: &str) -> String {
    format!("k_{r}") // (acker, fact args...)
}

// Memory relation names.
const SENT_VAL: &str = "sv"; // values broadcast
const SENT_REQ: &str = "sq"; // values requested
const REMEMBERED_REQ: &str = "rr"; // (requester, value)
const SENT_OK: &str = "so"; // (requester, value)
const GOT_OK: &str = "gk"; // values OK'd for me

fn recv_ack_rel(r: &str) -> String {
    format!("ka_{r}")
}

fn sent_ack_rel(r: &str) -> String {
    format!("sk_{r}")
}

fn sent_fact_rel(r: &str) -> String {
    format!("sm_{r}")
}

/// The request/OK strategy for `Mdisjoint` queries under domain-guided
/// distribution.
pub struct DisjointStrategy {
    query: Box<dyn Query>,
    schema: TransducerSchema,
    name: String,
}

impl DisjointStrategy {
    /// Wrap a query. Distributedly computes it under domain-guidance iff
    /// the query is domain-disjoint-monotone.
    pub fn new(query: Box<dyn Query>) -> Self {
        let input = query.input_schema().clone();
        let mut msg = Schema::new();
        let mut mem = Schema::new();
        msg.add(VAL_BC, 1);
        msg.add(REQUEST, 2);
        msg.add(OK, 2);
        mem.add(SENT_VAL, 1);
        mem.add(SENT_REQ, 1);
        mem.add(REMEMBERED_REQ, 2);
        mem.add(SENT_OK, 2);
        mem.add(GOT_OK, 1);
        for (r, a) in input.iter() {
            msg.add(&msg_rel(r), a);
            msg.add(&ack_rel(r), a + 1);
            mem.add(&coll_rel(r), a);
            mem.add(&recv_ack_rel(r), a + 1);
            mem.add(&sent_ack_rel(r), a);
            mem.add(&sent_fact_rel(r), a);
        }
        let output = renamed_output_schema(query.as_ref());
        let name = format!("disjoint-strategy({})", query.name());
        DisjointStrategy {
            schema: TransducerSchema::new(input, output, msg, mem),
            query,
            name,
        }
    }

    /// The wrapped query.
    pub fn query(&self) -> &dyn Query {
        self.query.as_ref()
    }
}

impl Transducer for DisjointStrategy {
    fn schema(&self) -> &TransducerSchema {
        &self.schema
    }

    fn step(&self, d: &Instance) -> TransducerStep {
        let mut step = TransducerStep::default();
        let input_schema = self.query.input_schema();
        let me = match d.tuples("Id").next() {
            Some(t) => t[0].clone(),
            // Oblivious model: the protocol needs Id; do nothing.
            None => return step,
        };
        let myadom: Vec<Value> = d.tuples("MyAdom").map(|t| t[0].clone()).collect();

        // Responsibility: x ∈ α(a) iff policy_R(a,...,a) is visible for
        // some input relation (paper's criterion).
        let responsible = |a: &Value| -> bool {
            input_schema.iter().any(|(r, arity)| {
                let tuple: Vec<Value> = std::iter::repeat_n(a.clone(), arity).collect();
                d.contains_tuple(&policy_relation(r), &tuple)
            })
        };

        // Collected facts (local ∪ remembered ∪ freshly delivered).
        let collected = collected_input(input_schema, d);
        for f in collected.facts() {
            step.ins
                .insert(Fact::new(coll_rel(f.relation()), f.args().to_vec()));
        }

        // 1. Broadcast the local input fragment's active domain (once per
        //    value).
        let mut local_input = Instance::new();
        for (r, _) in input_schema.iter() {
            for t in d.tuples(r) {
                local_input.insert(Fact::new(r.as_ref(), t.clone()));
            }
        }
        for a in local_input.adom() {
            if !d.contains_tuple(SENT_VAL, std::slice::from_ref(&a)) {
                step.snd.insert(Fact::new(VAL_BC, vec![a.clone()]));
                step.ins.insert(Fact::new(SENT_VAL, vec![a]));
            }
        }

        // 2. Request every known value we are not responsible for.
        for a in &myadom {
            if !responsible(a) && !d.contains_tuple(SENT_REQ, std::slice::from_ref(a)) {
                step.snd
                    .insert(Fact::new(REQUEST, vec![me.clone(), a.clone()]));
                step.ins.insert(Fact::new(SENT_REQ, vec![a.clone()]));
            }
        }

        // 3. Remember requests (delivered now or earlier).
        let mut requests: BTreeSet<(Value, Value)> = BTreeSet::new();
        for t in d.tuples(REQUEST).chain(d.tuples(REMEMBERED_REQ)) {
            requests.insert((t[0].clone(), t[1].clone()));
            step.ins.insert(Fact::new(REMEMBERED_REQ, t.clone()));
        }

        // 4. Record delivered acks and OKs.
        for (r, _) in input_schema.iter() {
            for t in d.tuples(&ack_rel(r)) {
                step.ins.insert(Fact::new(recv_ack_rel(r), t.clone()));
            }
        }
        let mut got_ok: BTreeSet<Value> = d.tuples(GOT_OK).map(|t| t[0].clone()).collect();
        for t in d.tuples(OK) {
            if t[0] == me {
                got_ok.insert(t[1].clone());
                step.ins.insert(Fact::new(GOT_OK, vec![t[1].clone()]));
            }
        }

        // 5. Serve remembered requests for values we own: send the local
        //    facts containing the value, and send OK once the requester
        //    has acknowledged all of them.
        for (requester, a) in &requests {
            if !responsible(a) {
                continue;
            }
            let mut all_acked = true;
            for (r, _) in input_schema.iter() {
                for t in local_input.tuples(r) {
                    if !t.contains(a) {
                        continue;
                    }
                    if !d.contains_tuple(&sent_fact_rel(r), t) {
                        step.snd.insert(Fact::new(msg_rel(r), t.clone()));
                        step.ins.insert(Fact::new(sent_fact_rel(r), t.clone()));
                    }
                    // Has `requester` acknowledged this fact?
                    let mut ack_key = Vec::with_capacity(t.len() + 1);
                    ack_key.push(requester.clone());
                    ack_key.extend(t.iter().cloned());
                    let acked = d.contains_tuple(&recv_ack_rel(r), &ack_key)
                        || d.contains_tuple(&ack_rel(r), &ack_key);
                    if !acked {
                        all_acked = false;
                    }
                }
            }
            if all_acked {
                let ok_key = [requester.clone(), a.clone()];
                if !d.contains_tuple(SENT_OK, &ok_key) {
                    step.snd.insert(Fact::new(OK, ok_key.to_vec()));
                    step.ins.insert(Fact::new(SENT_OK, ok_key.to_vec()));
                }
            }
        }

        // 6. Acknowledge every collected fact (once).
        for f in collected.facts() {
            let r = f.relation().as_ref().to_string();
            if !d.contains_tuple(&sent_ack_rel(&r), f.args()) {
                let mut ack = Vec::with_capacity(f.arity() + 1);
                ack.push(me.clone());
                ack.extend(f.args().iter().cloned());
                step.snd.insert(Fact::new(ack_rel(&r), ack));
                step.ins
                    .insert(Fact::new(sent_ack_rel(&r), f.args().to_vec()));
            }
        }

        // 7. Determined values; output Q on the ready components.
        let determined: BTreeSet<Value> = myadom
            .iter()
            .filter(|a| responsible(a) || got_ok.contains(*a))
            .cloned()
            .collect();
        let mut ready = Instance::new();
        for component in components(&collected) {
            if component.adom().iter().all(|a| determined.contains(a)) {
                ready.extend(component.facts());
            }
        }
        step.out = rename_to_out(&self.query.eval(&ready));
        step
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::DomainGuidedPolicy;
    use crate::runtime::{run, verify_computes, Scheduler, TransducerNetwork};
    use crate::schema::SystemConfig;
    use crate::strategy::expected_output;
    use calm_common::generator::{chain_game, cycle_game, path};
    use calm_common::value::Value;
    use calm_queries::qtc::qtc_datalog;
    use calm_queries::winmove::win_move;

    #[test]
    fn computes_win_move_under_domain_guidance() {
        // The paper's headline: the non-monotone win-move query computed
        // coordination-free in the domain-guided model.
        let t = DisjointStrategy::new(Box::new(win_move()));
        let input = chain_game(0, 3).union(&cycle_game(10, 3));
        let expected = expected_output(t.query(), &input);
        for n in [1, 2, 4] {
            let policy = DomainGuidedPolicy::new(Network::of_size(n));
            let tn = TransducerNetwork {
                transducer: &t,
                policy: &policy,
                config: SystemConfig::POLICY_AWARE,
            };
            verify_computes(
                &tn,
                &input,
                &expected,
                &[Scheduler::RoundRobin, Scheduler::random(5, 60)],
                100_000,
            )
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn computes_qtc_under_domain_guidance() {
        // Q_TC ∈ Mdisjoint (Theorem 3.1): the strategy computes it.
        let t = DisjointStrategy::new(Box::new(qtc_datalog()));
        let input = path(3);
        let expected = expected_output(t.query(), &input);
        let policy = DomainGuidedPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        verify_computes(&tn, &input, &expected, &[Scheduler::RoundRobin], 100_000).unwrap();
    }

    #[test]
    fn computes_without_all_relation() {
        // Theorem 4.5 (A2 = Mdisjoint): same transducer, no All.
        let t = DisjointStrategy::new(Box::new(win_move()));
        let input = chain_game(0, 4);
        let expected = expected_output(t.query(), &input);
        let policy = DomainGuidedPolicy::new(Network::of_size(2));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE_NO_ALL,
        };
        verify_computes(&tn, &input, &expected, &[Scheduler::RoundRobin], 100_000).unwrap();
    }

    #[test]
    fn heartbeat_witness_on_ideal_assignment() {
        // Coordination-freeness: assign every value to x; x answers in
        // heartbeats alone.
        let t = DisjointStrategy::new(Box::new(win_move()));
        let input = chain_game(0, 3);
        let expected = expected_output(t.query(), &input);
        let net = Network::of_size(3);
        let x = Value::str("n1");
        let policy = DomainGuidedPolicy::all_to(net, x.clone());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        let steps = crate::coordination::heartbeat_witness(&tn, &input, &x, &expected, 10)
            .expect("heartbeat-only witness");
        assert!(steps <= 2);
    }

    #[test]
    fn wrong_under_non_domain_guided_policy() {
        // The strategy's soundness rests on "responsible for a ⇒ holds
        // every fact containing a", which only domain-guided policies
        // guarantee. Build a pathological (legal, but not domain-guided)
        // policy: diagonal facts move(a,a) — the responsibility probes —
        // all map to n3, while real facts are split between n1 and n2.
        // Every value then "belongs" to n3, which holds nothing and
        // happily OKs every request, so n1 concludes its lone fact is a
        // complete component and outputs a wrong win.
        struct Pathological {
            network: Network,
        }
        impl crate::policy::DistributionPolicy for Pathological {
            fn network(&self) -> &Network {
                &self.network
            }
            fn assign(&self, fact: &calm_common::fact::Fact) -> std::collections::BTreeSet<Value> {
                let args = fact.args();
                let target = if args[0] == args[1] {
                    "n3"
                } else if args[0] == Value::Int(0) {
                    "n1"
                } else {
                    "n2"
                };
                std::collections::BTreeSet::from([Value::str(target)])
            }
        }
        let t = DisjointStrategy::new(Box::new(win_move()));
        // Game 0 -> 1 -> 2: true answer win(1). With move(0,1) alone, n1
        // wrongly concludes win(0).
        let input = chain_game(0, 2);
        let expected = expected_output(t.query(), &input);
        let policy = Pathological {
            network: Network::of_size(3),
        };
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        let r = run(&tn, &input, &Scheduler::RoundRobin, 100_000);
        assert!(
            !r.quiescent || r.output != expected,
            "a non-domain-guided policy must break the strategy (got {:?})",
            r.output
        );
    }

    #[test]
    fn works_with_replicated_domain_assignments() {
        // The paper allows α(a) with several owners ("possibly with
        // replication"); the protocol must stay correct when every value
        // has two responsible nodes.
        let t = DisjointStrategy::new(Box::new(win_move()));
        let input = chain_game(0, 4).union(&cycle_game(30, 3));
        let expected = expected_output(t.query(), &input);
        let policy = crate::policy::ReplicatedDomainPolicy::new(Network::of_size(4), 2);
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        verify_computes(
            &tn,
            &input,
            &expected,
            &[Scheduler::RoundRobin, Scheduler::random(8, 80)],
            500_000,
        )
        .unwrap();
    }

    #[test]
    fn protocol_message_kinds_appear() {
        let t = DisjointStrategy::new(Box::new(win_move()));
        let input = chain_game(0, 4);
        let policy = DomainGuidedPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        let r = run(&tn, &input, &Scheduler::RoundRobin, 100_000);
        assert!(r.quiescent);
        // The protocol used requests and OKs (multi-node, split values).
        assert!(r.metrics.messages_sent > 0);
    }

    #[test]
    fn nullary_encoding_under_domain_guidance() {
        // Section 7: nullary facts (encoded over the ⊥ marker) must be
        // assigned to all nodes in a domain-guided policy. With the
        // marker's α(⊥) = N, the strategy computes the query.
        use calm_datalog::nullary::{encode_source, marker};
        let src = encode_source("@output O.\nO(x,y) :- E(x,y), Enabled().");
        let q = calm_datalog::DatalogQuery::parse("flagged", &src).unwrap();
        let t = DisjointStrategy::new(Box::new(q));
        let input =
            calm_datalog::parse_facts(&encode_source("E(1,2). E(2,3). Enabled().")).unwrap();
        let expected = expected_output(t.query(), &input);
        assert_eq!(expected.len(), 2, "Enabled() gates the copy");
        let net = Network::of_size(3);
        let policy = DomainGuidedPolicy::new(net.clone())
            .with_value_assignment(marker(), net.nodes().cloned());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        verify_computes(&tn, &input, &expected, &[Scheduler::RoundRobin], 200_000).unwrap();
        // Without the flag, nothing is output.
        let bare = calm_datalog::parse_facts("E(1,2).").unwrap();
        let r = run(&tn, &bare, &Scheduler::RoundRobin, 200_000);
        assert!(r.quiescent && r.output.is_empty());
    }

    #[test]
    fn single_node_network_needs_no_protocol() {
        let t = DisjointStrategy::new(Box::new(win_move()));
        let input = chain_game(0, 3);
        let expected = expected_output(t.query(), &input);
        let policy = DomainGuidedPolicy::new(Network::of_size(1));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        let r = run(&tn, &input, &Scheduler::RoundRobin, 1_000);
        assert!(r.quiescent);
        assert_eq!(r.output, expected);
        assert_eq!(r.metrics.messages_sent, 0);
    }
}
