//! The three generic coordination-free evaluation strategies from the
//! proofs of Theorems 4.3 and 4.4 and the discussion in Section 4.3:
//!
//! | Strategy | Class | Protocol |
//! |---|---|---|
//! | [`MonotoneBroadcast`] | `M` (`F0`) | broadcast input facts; output `Q` of everything known, immediately |
//! | [`DistinctStrategy`] | `Mdistinct` (`F1`) | broadcast facts **and non-facts** (absences deduced from `policy_R`); output `Q` on complete value-subsets |
//! | [`DisjointStrategy`] | `Mdisjoint` (`F2`) | broadcast the active domain; per-value request/ack/OK protocol with the responsible nodes; output `Q` on complete components |
//!
//! Each strategy is a native [`Transducer`](crate::transducer::Transducer)
//! parameterized by the query it
//! evaluates; none of them reads the `All` relation, which is why the same
//! transducers witness `Mdistinct ⊆ A1` and `Mdisjoint ⊆ A2`
//! (Theorem 4.5).

mod disjoint;
mod distinct;
mod monotone;

pub use disjoint::DisjointStrategy;
pub use distinct::DistinctStrategy;
pub use monotone::MonotoneBroadcast;

use crate::multiset::Multiset;
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;

/// The protocol class of a message fact, keyed by the message-relation
/// naming convention shared by the three strategies. This is the
/// vocabulary of the paper's §4.3 cost comparison: `M` sends only fact
/// broadcasts; `Mdistinct` adds absence broadcasts; `Mdisjoint` trades
/// fact broadcasts for a per-value request/OK/ack protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MessageClass {
    /// `m_R` — a broadcast input fact (all strategies).
    FactBroadcast,
    /// `n_R` — a broadcast input *non-fact* (`DistinctStrategy`).
    AbsenceBroadcast,
    /// `v_a` — an active-domain value broadcast (`DisjointStrategy`).
    ValueBroadcast,
    /// `rq` — a per-value request to the responsible nodes
    /// (`DisjointStrategy`).
    Request,
    /// `okm` — a per-value completion acknowledgement
    /// (`DisjointStrategy`).
    Ok,
    /// `k_R` — a per-fact answer to a request (`DisjointStrategy`).
    Ack,
    /// Anything else (custom transducers outside the three strategies).
    Other,
}

impl MessageClass {
    /// A short stable label, used as the metric name suffix
    /// (`messages.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::FactBroadcast => "fact",
            MessageClass::AbsenceBroadcast => "absence",
            MessageClass::ValueBroadcast => "value",
            MessageClass::Request => "request",
            MessageClass::Ok => "ok",
            MessageClass::Ack => "ack",
            MessageClass::Other => "other",
        }
    }
}

/// Classify a message fact by its relation name.
pub fn classify_message(f: &Fact) -> MessageClass {
    let name = f.relation().as_ref();
    match name {
        "v_a" => MessageClass::ValueBroadcast,
        "rq" => MessageClass::Request,
        "okm" => MessageClass::Ok,
        _ => {
            if name.starts_with("m_") {
                MessageClass::FactBroadcast
            } else if name.starts_with("n_") {
                MessageClass::AbsenceBroadcast
            } else if name.starts_with("k_") {
                MessageClass::Ack
            } else {
                MessageClass::Other
            }
        }
    }
}

/// Per-class message counts for one run: one counter per
/// [`MessageClass`], each counting (fact, recipient) pairs like
/// `messages_sent`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageClassCounts {
    /// `m_R` fact broadcasts.
    pub fact: usize,
    /// `n_R` absence broadcasts.
    pub absence: usize,
    /// `v_a` value broadcasts.
    pub value: usize,
    /// `rq` requests.
    pub request: usize,
    /// `okm` completion acknowledgements.
    pub ok: usize,
    /// `k_R` per-fact answers.
    pub ack: usize,
    /// Unclassified messages.
    pub other: usize,
}

impl MessageClassCounts {
    /// Count `n` messages of `class`.
    pub fn record(&mut self, class: MessageClass, n: usize) {
        match class {
            MessageClass::FactBroadcast => self.fact += n,
            MessageClass::AbsenceBroadcast => self.absence += n,
            MessageClass::ValueBroadcast => self.value += n,
            MessageClass::Request => self.request += n,
            MessageClass::Ok => self.ok += n,
            MessageClass::Ack => self.ack += n,
            MessageClass::Other => self.other += n,
        }
    }

    /// Total across all classes (equals `messages_sent` at all times).
    pub fn total(&self) -> usize {
        self.fact + self.absence + self.value + self.request + self.ok + self.ack + self.other
    }

    /// `(label, count)` pairs in declaration order, including zeros.
    pub fn as_pairs(&self) -> [(&'static str, usize); 7] {
        [
            ("fact", self.fact),
            ("absence", self.absence),
            ("value", self.value),
            ("request", self.request),
            ("ok", self.ok),
            ("ack", self.ack),
            ("other", self.other),
        ]
    }

    /// Messages of the per-value coordination protocol (request + ok +
    /// ack): nonzero exactly for the `Mdisjoint` strategy.
    pub fn coordination(&self) -> usize {
        self.request + self.ok + self.ack
    }

    /// Fold another count set into this one. Associative and
    /// commutative with the default as identity — the threaded executor
    /// relies on this when merging per-worker metrics at join.
    pub fn merge(&mut self, other: &MessageClassCounts) {
        self.fact += other.fact;
        self.absence += other.absence;
        self.value += other.value;
        self.request += other.request;
        self.ok += other.ok;
        self.ack += other.ack;
        self.other += other.other;
    }
}

/// Per-class occurrence counts of one sent batch, as `class.<label>`
/// trace-event argument names. Zero classes are skipped, so a
/// `trace/send` event carries only the classes the batch actually
/// contains.
pub fn class_arg_counts(batch: &Multiset<Fact>) -> Vec<(&'static str, u64)> {
    let mut counts = MessageClassCounts::default();
    for (f, n) in batch.iter() {
        counts.record(classify_message(f), n);
    }
    [
        ("class.fact", counts.fact),
        ("class.absence", counts.absence),
        ("class.value", counts.value),
        ("class.request", counts.request),
        ("class.ok", counts.ok),
        ("class.ack", counts.ack),
        ("class.other", counts.other),
    ]
    .into_iter()
    .filter(|&(_, n)| n > 0)
    .map(|(name, n)| (name, n as u64))
    .collect()
}

/// Message relation carrying facts of input relation `R`.
pub fn msg_rel(r: &str) -> String {
    format!("m_{r}")
}

/// Message relation carrying *absences* of input relation `R`.
pub fn absence_rel(r: &str) -> String {
    format!("n_{r}")
}

/// Memory relation storing collected facts of input relation `R`.
pub fn coll_rel(r: &str) -> String {
    format!("c_{r}")
}

/// Output relation for query-output relation `R` (transducer schemas
/// require `Υout` disjoint from `Υin`, so query outputs are prefixed).
pub fn out_rel(r: &str) -> String {
    format!("out_{r}")
}

/// The renamed output schema of a query: `R ↦ out_R`.
pub fn renamed_output_schema(q: &dyn Query) -> Schema {
    let mut s = Schema::new();
    for (name, arity) in q.output_schema().iter() {
        s.add(&out_rel(name), arity);
    }
    s
}

/// What a strategy network is expected to output for input `I`:
/// `Q(I)` with every output relation `R` renamed to `out_R`.
pub fn expected_output(q: &dyn Query, input: &Instance) -> Instance {
    rename_to_out(&q.eval(input))
}

/// Rename every relation `R` of a query answer to `out_R`.
pub fn rename_to_out(answer: &Instance) -> Instance {
    Instance::from_facts(
        answer
            .facts()
            .map(|f| Fact::new(out_rel(f.relation()), f.args().to_vec())),
    )
}

/// Gather the "collected input" visible in `D`: for each input relation
/// `R`, the union of local `R` facts, remembered `c_R` facts and freshly
/// delivered `m_R` facts — under the original relation name `R`, ready
/// for query evaluation.
pub fn collected_input(input_schema: &Schema, d: &Instance) -> Instance {
    let mut out = Instance::new();
    for (r, _) in input_schema.iter() {
        for t in d.tuples(r) {
            out.insert(Fact::new(r.as_ref(), t.clone()));
        }
        for t in d.tuples(&coll_rel(r)) {
            out.insert(Fact::new(r.as_ref(), t.clone()));
        }
        for t in d.tuples(&msg_rel(r)) {
            out.insert(Fact::new(r.as_ref(), t.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::query::FnQuery;

    #[test]
    fn message_classification_follows_naming_convention() {
        assert_eq!(
            classify_message(&fact("m_E", [1, 2])),
            MessageClass::FactBroadcast
        );
        assert_eq!(
            classify_message(&fact("n_E", [1, 2])),
            MessageClass::AbsenceBroadcast
        );
        assert_eq!(
            classify_message(&fact("v_a", [1])),
            MessageClass::ValueBroadcast
        );
        assert_eq!(classify_message(&fact("rq", [1, 2])), MessageClass::Request);
        assert_eq!(classify_message(&fact("okm", [1, 2])), MessageClass::Ok);
        assert_eq!(classify_message(&fact("k_E", [1, 2])), MessageClass::Ack);
        assert_eq!(classify_message(&fact("weird", [1])), MessageClass::Other);
    }

    #[test]
    fn class_counts_sum_to_total() {
        let mut c = MessageClassCounts::default();
        c.record(MessageClass::FactBroadcast, 3);
        c.record(MessageClass::Request, 2);
        c.record(MessageClass::Ok, 1);
        c.record(MessageClass::Ack, 4);
        assert_eq!(c.total(), 10);
        assert_eq!(c.coordination(), 7);
        let pairs = c.as_pairs();
        assert_eq!(pairs.iter().map(|(_, n)| n).sum::<usize>(), c.total());
        assert_eq!(pairs[0], ("fact", 3));
    }

    #[test]
    fn relation_namers() {
        assert_eq!(msg_rel("E"), "m_E");
        assert_eq!(absence_rel("E"), "n_E");
        assert_eq!(coll_rel("E"), "c_E");
        assert_eq!(out_rel("T"), "out_T");
    }

    #[test]
    fn collected_merges_three_sources() {
        let schema = Schema::from_pairs([("E", 2)]);
        let d = Instance::from_facts([
            fact("E", [1, 2]),
            fact("c_E", [3, 4]),
            fact("m_E", [5, 6]),
            fact("Other", [9]),
        ]);
        let c = collected_input(&schema, &d);
        assert_eq!(c.relation_len("E"), 3);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn expected_output_renames() {
        let q = FnQuery::new(
            "copy",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("T", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .map(|t| fact("T", [t[0].clone(), t[1].clone()])),
                )
            },
        );
        let input = Instance::from_facts([fact("E", [1, 2])]);
        let e = expected_output(&q, &input);
        assert_eq!(e, Instance::from_facts([fact("out_T", [1, 2])]));
        assert_eq!(renamed_output_schema(&q).arity("out_T"), Some(2));
    }
}
