//! The three generic coordination-free evaluation strategies from the
//! proofs of Theorems 4.3 and 4.4 and the discussion in Section 4.3:
//!
//! | Strategy | Class | Protocol |
//! |---|---|---|
//! | [`MonotoneBroadcast`] | `M` (`F0`) | broadcast input facts; output `Q` of everything known, immediately |
//! | [`DistinctStrategy`] | `Mdistinct` (`F1`) | broadcast facts **and non-facts** (absences deduced from `policy_R`); output `Q` on complete value-subsets |
//! | [`DisjointStrategy`] | `Mdisjoint` (`F2`) | broadcast the active domain; per-value request/ack/OK protocol with the responsible nodes; output `Q` on complete components |
//!
//! Each strategy is a native [`Transducer`](crate::transducer::Transducer)
//! parameterized by the query it
//! evaluates; none of them reads the `All` relation, which is why the same
//! transducers witness `Mdistinct ⊆ A1` and `Mdisjoint ⊆ A2`
//! (Theorem 4.5).

mod disjoint;
mod distinct;
mod monotone;

pub use disjoint::DisjointStrategy;
pub use distinct::DistinctStrategy;
pub use monotone::MonotoneBroadcast;

use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;

/// Message relation carrying facts of input relation `R`.
pub fn msg_rel(r: &str) -> String {
    format!("m_{r}")
}

/// Message relation carrying *absences* of input relation `R`.
pub fn absence_rel(r: &str) -> String {
    format!("n_{r}")
}

/// Memory relation storing collected facts of input relation `R`.
pub fn coll_rel(r: &str) -> String {
    format!("c_{r}")
}

/// Output relation for query-output relation `R` (transducer schemas
/// require `Υout` disjoint from `Υin`, so query outputs are prefixed).
pub fn out_rel(r: &str) -> String {
    format!("out_{r}")
}

/// The renamed output schema of a query: `R ↦ out_R`.
pub fn renamed_output_schema(q: &dyn Query) -> Schema {
    let mut s = Schema::new();
    for (name, arity) in q.output_schema().iter() {
        s.add(&out_rel(name), arity);
    }
    s
}

/// What a strategy network is expected to output for input `I`:
/// `Q(I)` with every output relation `R` renamed to `out_R`.
pub fn expected_output(q: &dyn Query, input: &Instance) -> Instance {
    rename_to_out(&q.eval(input))
}

/// Rename every relation `R` of a query answer to `out_R`.
pub fn rename_to_out(answer: &Instance) -> Instance {
    Instance::from_facts(
        answer
            .facts()
            .map(|f| Fact::new(out_rel(f.relation()), f.args().to_vec())),
    )
}

/// Gather the "collected input" visible in `D`: for each input relation
/// `R`, the union of local `R` facts, remembered `c_R` facts and freshly
/// delivered `m_R` facts — under the original relation name `R`, ready
/// for query evaluation.
pub fn collected_input(input_schema: &Schema, d: &Instance) -> Instance {
    let mut out = Instance::new();
    for (r, _) in input_schema.iter() {
        for t in d.tuples(r) {
            out.insert(Fact::new(r.as_ref(), t.clone()));
        }
        for t in d.tuples(&coll_rel(r)) {
            out.insert(Fact::new(r.as_ref(), t.clone()));
        }
        for t in d.tuples(&msg_rel(r)) {
            out.insert(Fact::new(r.as_ref(), t.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::query::FnQuery;

    #[test]
    fn relation_namers() {
        assert_eq!(msg_rel("E"), "m_E");
        assert_eq!(absence_rel("E"), "n_E");
        assert_eq!(coll_rel("E"), "c_E");
        assert_eq!(out_rel("T"), "out_T");
    }

    #[test]
    fn collected_merges_three_sources() {
        let schema = Schema::from_pairs([("E", 2)]);
        let d = Instance::from_facts([
            fact("E", [1, 2]),
            fact("c_E", [3, 4]),
            fact("m_E", [5, 6]),
            fact("Other", [9]),
        ]);
        let c = collected_input(&schema, &d);
        assert_eq!(c.relation_len("E"), 3);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn expected_output_renames() {
        let q = FnQuery::new(
            "copy",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("T", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .map(|t| fact("T", [t[0].clone(), t[1].clone()])),
                )
            },
        );
        let input = Instance::from_facts([fact("E", [1, 2])]);
        let e = expected_output(&q, &input);
        assert_eq!(e, Instance::from_facts([fact("out_T", [1, 2])]));
        assert_eq!(renamed_output_schema(&q).arity("out_T"), Some(2));
    }
}
