//! The `Mdistinct` strategy (proof of Theorem 4.3): broadcast local input
//! facts **and deduced absences**, output `Q` on complete value-subsets.
//!
//! A node `x` deduces the absence of fact `R(ā)` when the system relation
//! `policy_R` shows `x` is responsible for `R(ā)` but the fact is not in
//! `x`'s local input — then it is globally absent. Facts and absences are
//! broadcast; a set of values `C` is *complete* at `x` when the
//! presence/absence of every fact over `C` is known, and then
//! `Q({f | adom(f) ⊆ C})` is output (sound for `Q ∈ Mdistinct` because
//! the rest of the input is domain-distinct from the complete part).

use super::{
    absence_rel, coll_rel, collected_input, msg_rel, rename_to_out, renamed_output_schema,
};
use crate::schema::{policy_relation, TransducerSchema};
use crate::system_facts::tuples_over;
use crate::transducer::{Transducer, TransducerStep};
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;
use calm_common::value::Value;
use std::collections::BTreeSet;

/// Memory: absences known (`ab_R`), facts already broadcast (`sf_R`),
/// absences already broadcast (`sb_R`).
fn known_absence_rel(r: &str) -> String {
    format!("ab_{r}")
}

fn sent_fact_rel(r: &str) -> String {
    format!("sf_{r}")
}

fn sent_absence_rel(r: &str) -> String {
    format!("sb_{r}")
}

/// The facts-and-non-facts strategy for `Mdistinct` queries
/// (policy-aware model; never reads `All`).
pub struct DistinctStrategy {
    query: Box<dyn Query>,
    schema: TransducerSchema,
    name: String,
}

impl DistinctStrategy {
    /// Wrap a query. Distributedly computes it (for all policies) iff
    /// the query is domain-distinct-monotone.
    pub fn new(query: Box<dyn Query>) -> Self {
        let input = query.input_schema().clone();
        let mut msg = Schema::new();
        let mut mem = Schema::new();
        for (r, a) in input.iter() {
            msg.add(&msg_rel(r), a);
            msg.add(&absence_rel(r), a);
            mem.add(&coll_rel(r), a);
            mem.add(&known_absence_rel(r), a);
            mem.add(&sent_fact_rel(r), a);
            mem.add(&sent_absence_rel(r), a);
        }
        let output = renamed_output_schema(query.as_ref());
        let name = format!("distinct-strategy({})", query.name());
        DistinctStrategy {
            schema: TransducerSchema::new(input, output, msg, mem),
            query,
            name,
        }
    }

    /// The wrapped query.
    pub fn query(&self) -> &dyn Query {
        self.query.as_ref()
    }
}

impl Transducer for DistinctStrategy {
    fn schema(&self) -> &TransducerSchema {
        &self.schema
    }

    fn step(&self, d: &Instance) -> TransducerStep {
        let mut step = TransducerStep::default();
        let input_schema = self.query.input_schema();
        let collected = collected_input(input_schema, d);

        // Known values (the paper's MyAdom, supplied by the simulator).
        let myadom: Vec<Value> = d.tuples("MyAdom").map(|t| t[0].clone()).collect();

        // Per relation: absences = remembered ∪ delivered ∪ freshly
        // deduced from the policy relations.
        let mut undetermined_values: BTreeSet<Value> = BTreeSet::new();
        for (r, arity) in input_schema.iter() {
            let pol = policy_relation(r);
            let mut absences: BTreeSet<Vec<Value>> = d
                .tuples(&known_absence_rel(r))
                .cloned()
                .chain(d.tuples(&absence_rel(r)).cloned())
                .collect();
            // Deduce: responsible for R(ā) but R(ā) not locally given.
            for tuple in tuples_over(&myadom, arity) {
                if d.contains_tuple(&pol, &tuple) && !d.contains_tuple(r, &tuple) {
                    absences.insert(tuple);
                }
            }
            // Persist and broadcast.
            for t in &absences {
                step.ins.insert(Fact::new(known_absence_rel(r), t.clone()));
                if !d.contains_tuple(&sent_absence_rel(r), t) {
                    step.snd.insert(Fact::new(absence_rel(r), t.clone()));
                    step.ins.insert(Fact::new(sent_absence_rel(r), t.clone()));
                }
            }
            for t in collected.tuples(r) {
                step.ins.insert(Fact::new(coll_rel(r), t.clone()));
                if !d.contains_tuple(&sent_fact_rel(r), t) {
                    step.snd.insert(Fact::new(msg_rel(r), t.clone()));
                    step.ins.insert(Fact::new(sent_fact_rel(r), t.clone()));
                }
            }
            // Undetermined tuples poison their values.
            for tuple in tuples_over(&myadom, arity) {
                let determined = collected.contains_tuple(r, &tuple) || absences.contains(&tuple);
                if !determined {
                    undetermined_values.extend(tuple.iter().cloned());
                }
            }
        }

        // The maximal "clean" complete subset: values untouched by any
        // undetermined tuple. Every tuple over C is determined.
        let complete: BTreeSet<Value> = myadom
            .iter()
            .filter(|v| !undetermined_values.contains(v))
            .cloned()
            .collect();
        let mut restricted = collected.clone();
        restricted.retain(|_, tuple| tuple.iter().all(|v| complete.contains(v)));
        step.out = rename_to_out(&self.query.eval(&restricted));
        step
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::{DomainGuidedPolicy, HashPolicy};
    use crate::runtime::{run, verify_computes, Scheduler, TransducerNetwork};
    use crate::schema::SystemConfig;
    use crate::strategy::expected_output;
    use calm_common::generator::path;
    use calm_queries::tc::edges_without_source_loop;

    fn strategy() -> DistinctStrategy {
        DistinctStrategy::new(Box::new(edges_without_source_loop()))
    }

    #[test]
    fn computes_sp_datalog_query_on_hash_policy() {
        // The SP-Datalog query O(x,y) :- E(x,y), ¬E(x,x) is in Mdistinct;
        // the strategy must compute it for arbitrary policies.
        let t = strategy();
        let mut input = path(3);
        input.insert(calm_common::fact::fact("E", [2, 2]));
        let expected = expected_output(t.query(), &input);
        for n in [1, 2, 3] {
            let policy = HashPolicy::new(Network::of_size(n));
            let tn = TransducerNetwork {
                transducer: &t,
                policy: &policy,
                config: SystemConfig::POLICY_AWARE,
            };
            verify_computes(
                &tn,
                &input,
                &expected,
                &[Scheduler::RoundRobin, Scheduler::random(3, 40)],
                50_000,
            )
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn computes_without_all_relation() {
        // Theorem 4.5 (A1 = Mdistinct): the same transducer, never reading
        // All, still computes the query.
        let t = strategy();
        let mut input = path(3);
        input.insert(calm_common::fact::fact("E", [0, 0]));
        let expected = expected_output(t.query(), &input);
        let policy = HashPolicy::new(Network::of_size(2));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE_NO_ALL,
        };
        verify_computes(&tn, &input, &expected, &[Scheduler::RoundRobin], 50_000).unwrap();
    }

    #[test]
    fn no_premature_output_on_incomplete_knowledge() {
        // With messages withheld (heartbeats only), a node holding only
        // part of the input must not output facts that the full input
        // would retract. Run a heartbeat-only prefix and check the output
        // stays inside Q(I).
        use crate::policy::{distribute, DistributionPolicy};
        let t = strategy();
        let mut input = path(3);
        input.insert(calm_common::fact::fact("E", [0, 0]));
        let expected = expected_output(t.query(), &input);
        let policy = HashPolicy::new(Network::of_size(2));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        let dist = distribute(&policy, &input);
        let mut config = crate::runtime::Configuration::start(policy.network());
        let mut metrics = crate::runtime::Metrics::default();
        for node in policy.network().nodes() {
            for _ in 0..3 {
                crate::runtime::transition(
                    &tn,
                    &dist,
                    &mut config,
                    node,
                    crate::runtime::Delivery::None,
                    &mut metrics,
                );
            }
        }
        let partial = crate::runtime::network_output(&tn, &config);
        assert!(
            partial.is_subset(&expected),
            "heartbeat outputs must be sound: {partial:?} ⊄ {expected:?}"
        );
    }

    #[test]
    fn ideal_policy_completes_in_heartbeats() {
        // Coordination-freeness witness: everything at one node.
        let t = strategy();
        let mut input = path(2);
        input.insert(calm_common::fact::fact("E", [1, 1]));
        let expected = expected_output(t.query(), &input);
        let net = Network::of_size(3);
        let x = calm_common::value::Value::str("n2");
        let policy = DomainGuidedPolicy::all_to(net, x.clone());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        let steps = crate::coordination::heartbeat_witness(&tn, &input, &x, &expected, 10)
            .expect("heartbeat-only prefix computes Q(I)");
        assert!(steps <= 3);
    }

    #[test]
    fn non_member_query_goes_wrong() {
        // Feeding win-move (∉ Mdistinct) through the distinct strategy on
        // a 2-node network yields a wrong quiescent output for at least
        // one policy/input: the strategy's soundness argument needs
        // domain-distinct monotonicity.
        let t = DistinctStrategy::new(Box::new(calm_queries::winmove::win_move()));
        let input = calm_common::generator::chain_game(0, 2);
        let expected = expected_output(t.query(), &input);
        // Split the two move facts across nodes.
        let net = Network::of_size(2);
        let base: std::sync::Arc<dyn crate::policy::DistributionPolicy> = std::sync::Arc::new(
            DomainGuidedPolicy::all_to(net.clone(), calm_common::value::Value::str("n1")),
        );
        let policy = crate::policy::OverridePolicy::new(
            base,
            [calm_common::generator::mv(1, 2)],
            [calm_common::value::Value::str("n2")],
        );
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        let r = run(&tn, &input, &Scheduler::RoundRobin, 50_000);
        assert!(r.quiescent);
        assert_ne!(r.output, expected, "win-move must break the strategy");
    }
}
