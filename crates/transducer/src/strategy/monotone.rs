//! The `M` strategy (the CALM baseline, Section 4.3 first bullet): every
//! node broadcasts its local input facts; output is generated for every
//! newly received fact, with no waiting at all. Correct exactly for
//! monotone queries.

use super::{coll_rel, collected_input, msg_rel, rename_to_out, renamed_output_schema};
use crate::schema::TransducerSchema;
use crate::transducer::{Transducer, TransducerStep};
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;

/// The broadcast-everything strategy for monotone queries.
pub struct MonotoneBroadcast {
    query: Box<dyn Query>,
    schema: TransducerSchema,
    name: String,
}

/// Memory relation marking facts already broadcast.
fn sent_rel(r: &str) -> String {
    format!("s_{r}")
}

impl MonotoneBroadcast {
    /// Wrap a (monotone) query. The strategy is always *defined*; it
    /// *computes* the query distributedly iff the query is monotone —
    /// experiment E1/E8 exercises both sides.
    pub fn new(query: Box<dyn Query>) -> Self {
        let input = query.input_schema().clone();
        let mut msg = Schema::new();
        let mut mem = Schema::new();
        for (r, a) in input.iter() {
            msg.add(&msg_rel(r), a);
            mem.add(&coll_rel(r), a);
            mem.add(&sent_rel(r), a);
        }
        let output = renamed_output_schema(query.as_ref());
        let name = format!("monotone-broadcast({})", query.name());
        MonotoneBroadcast {
            schema: TransducerSchema::new(input, output, msg, mem),
            query,
            name,
        }
    }

    /// The wrapped query.
    pub fn query(&self) -> &dyn Query {
        self.query.as_ref()
    }
}

impl Transducer for MonotoneBroadcast {
    fn schema(&self) -> &TransducerSchema {
        &self.schema
    }

    fn step(&self, d: &Instance) -> TransducerStep {
        let mut step = TransducerStep::default();
        let collected = collected_input(self.query.input_schema(), d);
        for f in collected.facts() {
            let r = f.relation().as_ref().to_string();
            // Remember everything we know.
            step.ins.insert(Fact::new(coll_rel(&r), f.args().to_vec()));
            // Broadcast what we have not broadcast yet.
            if !d.contains_tuple(&sent_rel(&r), f.args()) {
                step.snd.insert(Fact::new(msg_rel(&r), f.args().to_vec()));
                step.ins.insert(Fact::new(sent_rel(&r), f.args().to_vec()));
            }
        }
        // Output Q over everything currently known — monotonicity makes
        // every such fact final.
        step.out = rename_to_out(&self.query.eval(&collected));
        for f in step.out.clone().facts() {
            debug_assert!(self.schema.output.covers(&f));
        }
        step
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::HashPolicy;
    use crate::runtime::{run, verify_computes, Scheduler, TransducerNetwork};
    use crate::schema::SystemConfig;
    use crate::strategy::expected_output;
    use calm_common::generator::{cycle, path};
    use calm_common::instance::Instance;
    use calm_queries::tc::tc_datalog;

    fn tc_strategy() -> MonotoneBroadcast {
        MonotoneBroadcast::new(Box::new(tc_datalog()))
    }

    #[test]
    fn computes_tc_on_all_network_sizes() {
        let t = tc_strategy();
        let input = path(5);
        let expected = expected_output(t.query(), &input);
        for n in [1, 2, 4] {
            let policy = HashPolicy::new(Network::of_size(n));
            let tn = TransducerNetwork {
                transducer: &t,
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            };
            verify_computes(
                &tn,
                &input,
                &expected,
                &[Scheduler::RoundRobin, Scheduler::random(7, 30)],
                20_000,
            )
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn works_without_all_and_oblivious() {
        // The strategy reads no system relations at all: Corollary 4.6's
        // F0 = A0 = M (oblivious transducers compute monotone queries).
        let t = tc_strategy();
        let input = cycle(4);
        let expected = expected_output(t.query(), &input);
        for config in [
            SystemConfig::ORIGINAL_NO_ALL,
            SystemConfig::OBLIVIOUS,
            SystemConfig::POLICY_AWARE,
        ] {
            let policy = HashPolicy::new(Network::of_size(3));
            let tn = TransducerNetwork {
                transducer: &t,
                policy: &policy,
                config,
            };
            verify_computes(&tn, &input, &expected, &[Scheduler::RoundRobin], 20_000)
                .unwrap_or_else(|e| panic!("{config:?}: {e}"));
        }
    }

    #[test]
    fn non_monotone_query_miscomputed() {
        // Running the M strategy on Q_TC (not monotone) on a 2-node
        // network produces wrong (unretractable) outputs for some
        // distribution: the core of the CALM only-if direction.
        //
        // Input: the cycle 0 -> 1 -> 2 -> 0, whose complement-of-TC is
        // empty. Place E(0,1), E(2,0) on n1 and E(1,2) on n2: before the
        // exchange completes, n1 sees a graph where (e.g.) 0 cannot reach
        // 2 and emits O-facts that the full input refutes.
        use crate::policy::{DomainGuidedPolicy, OverridePolicy};
        use calm_common::value::Value;
        let t = MonotoneBroadcast::new(Box::new(calm_queries::qtc::qtc_datalog()));
        let input = calm_common::generator::cycle(3);
        let expected = expected_output(t.query(), &input);
        assert!(expected.is_empty(), "complement of TC on a cycle is empty");
        let net = Network::of_size(2);
        let base: std::sync::Arc<dyn crate::policy::DistributionPolicy> =
            std::sync::Arc::new(DomainGuidedPolicy::all_to(net.clone(), Value::str("n1")));
        let policy = OverridePolicy::new(
            base,
            [calm_common::fact::fact("E", [1, 2])],
            [Value::str("n2")],
        );
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r = run(&tn, &input, &Scheduler::RoundRobin, 20_000);
        // The run quiesces but output ⊋ Q(I) = ∅: nodes answered on
        // partial inputs and could never retract.
        assert!(r.quiescent);
        assert!(
            !r.output.is_empty(),
            "the M strategy must overshoot on a non-monotone query"
        );
    }

    #[test]
    fn message_volume_is_once_per_fact_per_recipient() {
        let t = tc_strategy();
        let input = path(4);
        let policy = HashPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r = run(&tn, &input, &Scheduler::RoundRobin, 20_000);
        assert!(r.quiescent);
        // Each of the 4 facts is broadcast at most once by each node that
        // knows it; re-broadcast of received facts is also once. Upper
        // bound: |facts| × n × (n - 1).
        assert!(r.metrics.messages_sent <= 4 * 3 * 2);
        assert!(
            r.metrics.messages_sent >= 4 * 2,
            "every fact reaches the others"
        );
    }

    #[test]
    fn empty_input() {
        let t = tc_strategy();
        let policy = HashPolicy::new(Network::of_size(2));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r = run(&tn, &Instance::new(), &Scheduler::RoundRobin, 100);
        assert!(r.quiescent);
        assert!(r.output.is_empty());
        assert_eq!(r.metrics.messages_sent, 0);
    }
}
