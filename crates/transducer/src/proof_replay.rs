//! Executable replays of the paper's proof arguments.
//!
//! The inclusions `F1 ⊆ Mdistinct` and `F2 ⊆ Mdisjoint` (Theorems
//! 4.3/4.4) and `A1 ⊆ Mdistinct` (Theorem 4.5) are proved by *policy
//! surgery*: take the ideal policy `P1` whose heartbeat-prefix run at a
//! node `x` computes `Q(I)`, reroute the extension `J` to a different
//! node `y` (policy `P2`), and observe that `x` cannot tell the
//! difference — it reproduces `Q(I)` with heartbeats on input `I ∪ J`,
//! and the extended fair run therefore puts `Q(I)` inside `Q(I ∪ J)`.
//!
//! This module runs that argument on concrete transducers and inputs,
//! returning the measured artifacts of each step.

use crate::coordination::heartbeat_witness;
use crate::network::Network;
use crate::policy::{distribute, DistributionPolicy, DomainGuidedPolicy, OverridePolicy};
use crate::runtime::{
    network_output, run, transition, Configuration, Delivery, Metrics, Scheduler, TransducerNetwork,
};
use crate::schema::SystemConfig;
use crate::transducer::Transducer;
use calm_common::instance::Instance;
use std::sync::Arc;

/// The measured artifacts of one policy-surgery replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Heartbeats needed at `x` under the ideal policy `P1` on `I`.
    pub heartbeats_p1: Option<usize>,
    /// Whether `x` under the surgically modified `P2` on `I ∪ J`
    /// reproduced exactly the same output with heartbeats only.
    pub same_behaviour_under_p2: bool,
    /// The full fair-run output on `I ∪ J` under `P2`.
    pub output_union: Instance,
    /// Whether `Q(I) ⊆ Q(I ∪ J)` held for this pair — the monotonicity
    /// consequence the proof derives.
    pub inclusion_holds: bool,
}

/// Replay the `F1 ⊆ Mdistinct` / `F2 ⊆ Mdisjoint` argument for a
/// transducer on a concrete `(I, J)`.
///
/// * `expected_qi` — `Q(I)` in the transducer's (renamed) output schema;
/// * the caller guarantees `J` is admissible for the class under test
///   (domain-distinct for Theorem 4.3, domain-disjoint for Theorem 4.4).
///
/// Panics if the transducer has no heartbeat witness under the ideal
/// policy (i.e. is not coordination-free in the sense of Definition 3).
pub fn replay_policy_surgery(
    transducer: &dyn Transducer,
    config: SystemConfig,
    input: &Instance,
    extension: &Instance,
    expected_qi: &Instance,
) -> ReplayOutcome {
    let net = Network::of_size(2);
    let x = net.first().clone();
    let y = net.nodes().nth(1).expect("two nodes").clone();

    // Step 1: the ideal policy P1 (everything at x) admits a
    // heartbeat-only prefix computing Q(I).
    let p1 = DomainGuidedPolicy::all_to(net.clone(), x.clone());
    let tn1 = TransducerNetwork {
        transducer,
        policy: &p1,
        config,
    };
    let heartbeats_p1 = heartbeat_witness(&tn1, input, &x, expected_qi, 32);
    let k = heartbeats_p1.expect("transducer must be coordination-free on the ideal policy");

    // Step 2: surgery — P2 routes J to y, everything else as P1.
    let base: Arc<dyn DistributionPolicy> =
        Arc::new(DomainGuidedPolicy::all_to(net.clone(), x.clone()));
    let p2 = OverridePolicy::new(base, extension.facts(), [y]);

    // Step 3: run k heartbeats at x under P2 on I ∪ J; x must go through
    // the same state changes (its local input is unchanged) and output
    // exactly Q(I).
    let union = input.union(extension);
    let tn2 = TransducerNetwork {
        transducer,
        policy: &p2,
        config,
    };
    let dist = distribute(&p2, &union);
    let mut cfg = Configuration::start(&net);
    let mut metrics = Metrics::default();
    for _ in 0..k {
        transition(&tn2, &dist, &mut cfg, &x, Delivery::None, &mut metrics);
    }
    let prefix_output = network_output(&tn2, &cfg);
    let same_behaviour_under_p2 = prefix_output == *expected_qi;

    // Step 4: extend to a full fair run; out = Q(I ∪ J) must contain the
    // prefix output Q(I).
    let full = run(&tn2, &union, &Scheduler::RoundRobin, 1_000_000);
    let inclusion_holds = expected_qi.is_subset(&full.output) && full.quiescent;

    ReplayOutcome {
        heartbeats_p1,
        same_behaviour_under_p2,
        output_union: full.output,
        inclusion_holds,
    }
}

/// Replay the `A1 ⊆ Mdistinct` argument of Theorem 4.5: a transducer that
/// never sees `All` behaves identically at `x` on a single-node network
/// with input `I` and on a two-node network where `J` sits at the other
/// node — it "can not detect the difference". Returns whether the two
/// heartbeat-prefix states of `x` matched step for step.
pub fn replay_no_all_indistinguishability(
    transducer: &dyn Transducer,
    config: SystemConfig,
    input: &Instance,
    extension: &Instance,
    steps: usize,
) -> bool {
    assert!(
        !config.include_all,
        "the argument requires the All-free model"
    );
    // Single-node network {x}.
    let single = Network::of_size(1);
    let x = single.first().clone();
    let p_single = DomainGuidedPolicy::all_to(single.clone(), x.clone());
    let tn_single = TransducerNetwork {
        transducer,
        policy: &p_single,
        config,
    };
    let dist_single = distribute(&p_single, input);
    let mut cfg_single = Configuration::start(&single);

    // Two-node network {x, y} with J at y (x keeps exactly I).
    let double = Network::from_nodes([x.clone(), calm_common::value::Value::str("n2")]);
    let y = calm_common::value::Value::str("n2");
    let base: Arc<dyn DistributionPolicy> =
        Arc::new(DomainGuidedPolicy::all_to(double.clone(), x.clone()));
    let p_double = OverridePolicy::new(base, extension.facts(), [y]);
    let tn_double = TransducerNetwork {
        transducer,
        policy: &p_double,
        config,
    };
    let dist_double = distribute(&p_double, &input.union(extension));
    let mut cfg_double = Configuration::start(&double);

    let mut m1 = Metrics::default();
    let mut m2 = Metrics::default();
    for _ in 0..steps {
        transition(
            &tn_single,
            &dist_single,
            &mut cfg_single,
            &x,
            Delivery::None,
            &mut m1,
        );
        transition(
            &tn_double,
            &dist_double,
            &mut cfg_double,
            &x,
            Delivery::None,
            &mut m2,
        );
        if cfg_single.state[&x] != cfg_double.state[&x] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{expected_output, DisjointStrategy, DistinctStrategy};
    use calm_common::generator::{chain_game, cycle_game, edge, path};
    use calm_common::{fact, is_domain_disjoint, is_domain_distinct};
    use calm_queries::tc::edges_without_source_loop;
    use calm_queries::winmove::win_move;

    #[test]
    fn theorem_4_3_replay_on_distinct_strategy() {
        let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
        let mut input = path(2);
        input.insert(fact("E", [1, 1]));
        // J domain-distinct from I: fresh-valued edges plus one touching
        // an old value.
        let j = Instance::from_facts([edge(2, 50), edge(50, 51)]);
        assert!(is_domain_distinct(&j, &input));
        let expected_qi = expected_output(t.query(), &input);
        let outcome =
            replay_policy_surgery(&t, SystemConfig::POLICY_AWARE, &input, &j, &expected_qi);
        assert!(outcome.heartbeats_p1.is_some());
        assert!(outcome.same_behaviour_under_p2, "x cannot tell I from I∪J");
        assert!(outcome.inclusion_holds, "Q(I) ⊆ Q(I ∪ J) derived");
        // And the fair-run output is exactly Q(I ∪ J).
        assert_eq!(
            outcome.output_union,
            expected_output(t.query(), &input.union(&j))
        );
    }

    #[test]
    fn theorem_4_4_replay_on_disjoint_strategy() {
        let t = DisjointStrategy::new(Box::new(win_move()));
        let input = chain_game(0, 3);
        let j = cycle_game(100, 3);
        assert!(is_domain_disjoint(&j, &input));
        let expected_qi = expected_output(t.query(), &input);
        let outcome =
            replay_policy_surgery(&t, SystemConfig::POLICY_AWARE, &input, &j, &expected_qi);
        assert!(outcome.same_behaviour_under_p2);
        assert!(outcome.inclusion_holds);
    }

    #[test]
    fn theorem_4_5_no_all_indistinguishability() {
        let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
        let input = path(2);
        let j = Instance::from_facts([edge(60, 61)]);
        assert!(replay_no_all_indistinguishability(
            &t,
            SystemConfig::POLICY_AWARE_NO_ALL,
            &input,
            &j,
            4,
        ));
    }

    #[test]
    #[should_panic(expected = "All-free")]
    fn no_all_replay_requires_all_free_model() {
        let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
        let _ = replay_no_all_indistinguishability(
            &t,
            SystemConfig::POLICY_AWARE,
            &Instance::new(),
            &Instance::new(),
            1,
        );
    }
}
