//! Distribution policies (Section 4.1.1).
//!
//! A distribution policy `P` is a total function from `facts(σ)` to the
//! nonempty subsets of the network: it says which nodes receive each
//! possible input fact (with replication allowed). A policy is
//! *domain-guided* when it is induced by a *domain assignment*
//! `α : dom → P⁺(N)` via `P(R(a1..ak)) = α(a1) ∪ ... ∪ α(ak)`.

use crate::network::{Network, NodeId};
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::value::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A distribution policy for some input schema and network.
pub trait DistributionPolicy: Send + Sync {
    /// The network the policy distributes over.
    fn network(&self) -> &Network;

    /// `P(f)`: the (nonempty) set of nodes the fact is assigned to.
    fn assign(&self, fact: &Fact) -> BTreeSet<NodeId>;

    /// Whether this policy is (by construction) domain-guided.
    fn is_domain_guided(&self) -> bool {
        false
    }

    /// For domain-guided policies: the underlying domain assignment
    /// `α(a)`. Default panics for non-domain-guided policies.
    fn domain_assignment(&self, _value: &Value) -> BTreeSet<NodeId> {
        panic!("policy is not domain-guided")
    }
}

/// `dist_P(I)`: distribute an instance over the network according to the
/// policy, with replication.
pub fn distribute(policy: &dyn DistributionPolicy, input: &Instance) -> BTreeMap<NodeId, Instance> {
    let mut out: BTreeMap<NodeId, Instance> = policy
        .network()
        .nodes()
        .map(|n| (n.clone(), Instance::new()))
        .collect();
    for f in input.facts() {
        let targets = policy.assign(&f);
        debug_assert!(
            !targets.is_empty(),
            "policies are total with nonempty images"
        );
        for t in targets {
            out.get_mut(&t)
                .unwrap_or_else(|| panic!("policy assigned {f} to non-node {t}"))
                .insert(f.clone());
        }
    }
    out
}

/// Hash-partitioning policy: each fact goes to exactly one node, chosen by
/// a deterministic hash of the whole fact. The "default" distribution for
/// experiments.
pub struct HashPolicy {
    network: Network,
}

impl HashPolicy {
    /// Create a hash policy over the network.
    pub fn new(network: Network) -> Self {
        HashPolicy { network }
    }
}

impl DistributionPolicy for HashPolicy {
    fn network(&self) -> &Network {
        &self.network
    }

    fn assign(&self, fact: &Fact) -> BTreeSet<NodeId> {
        let mut h = DefaultHasher::new();
        fact.hash(&mut h);
        let idx = (h.finish() as usize) % self.network.len();
        let node = self.network.nodes().nth(idx).expect("index in range");
        BTreeSet::from([node.clone()])
    }
}

/// A domain-guided policy built from a domain assignment: each value is
/// hashed to one owner node (plus optional explicit overrides), and a
/// fact goes to the union of its values' owners.
pub struct DomainGuidedPolicy {
    network: Network,
    overrides: BTreeMap<Value, BTreeSet<NodeId>>,
    default_owner: Option<NodeId>,
}

impl DomainGuidedPolicy {
    /// Hash-based domain assignment over the network.
    pub fn new(network: Network) -> Self {
        DomainGuidedPolicy {
            network,
            overrides: BTreeMap::new(),
            default_owner: None,
        }
    }

    /// Explicitly assign a value to a set of nodes (must be nonempty and
    /// within the network).
    #[must_use]
    pub fn with_value_assignment(
        mut self,
        value: Value,
        nodes: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        let nodes: BTreeSet<NodeId> = nodes.into_iter().collect();
        assert!(!nodes.is_empty(), "α(a) must be nonempty");
        assert!(
            nodes.iter().all(|n| self.network.contains(n)),
            "α(a) ⊆ N required"
        );
        self.overrides.insert(value, nodes);
        self
    }

    /// Assign *every* value to the single node `x` — the "ideal"
    /// distribution used by coordination-freeness witnesses.
    pub fn all_to(network: Network, x: NodeId) -> Self {
        assert!(network.contains(&x));
        DomainGuidedPolicy {
            network: network.clone(),
            overrides: BTreeMap::new(),
            default_owner: None,
        }
        .with_default_owner(x)
    }

    fn with_default_owner(mut self, x: NodeId) -> Self {
        // Implemented as an override-all sentinel: store under a private
        // marker by replacing the hash fallback.
        self.default_owner = Some(x);
        self
    }

    /// α(a) for this policy.
    pub fn alpha(&self, value: &Value) -> BTreeSet<NodeId> {
        if let Some(explicit) = self.overrides.get(value) {
            return explicit.clone();
        }
        if let Some(owner) = &self.default_owner {
            return BTreeSet::from([owner.clone()]);
        }
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        let idx = (h.finish() as usize) % self.network.len();
        let node = self.network.nodes().nth(idx).expect("index in range");
        BTreeSet::from([node.clone()])
    }
}

impl DistributionPolicy for DomainGuidedPolicy {
    fn network(&self) -> &Network {
        &self.network
    }

    fn assign(&self, fact: &Fact) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for v in fact.values() {
            out.extend(self.alpha(v));
        }
        out
    }

    fn is_domain_guided(&self) -> bool {
        true
    }

    fn domain_assignment(&self, value: &Value) -> BTreeSet<NodeId> {
        self.alpha(value)
    }
}

/// A policy defined by an arbitrary function on facts, with a fallback
/// policy for unlisted facts. Used to build the proofs' "override" policies
/// (e.g. `P2(g) = {y}` for `g ∈ J`, `P2(g) = P1(g)` otherwise).
pub struct OverridePolicy {
    base: Arc<dyn DistributionPolicy>,
    overrides: BTreeMap<Fact, BTreeSet<NodeId>>,
}

impl OverridePolicy {
    /// Route every fact of `facts` to exactly the given nodes; defer to
    /// `base` for everything else.
    pub fn new(
        base: Arc<dyn DistributionPolicy>,
        facts: impl IntoIterator<Item = Fact>,
        nodes: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        let nodes: BTreeSet<NodeId> = nodes.into_iter().collect();
        assert!(!nodes.is_empty());
        OverridePolicy {
            overrides: facts.into_iter().map(|f| (f, nodes.clone())).collect(),
            base,
        }
    }
}

impl DistributionPolicy for OverridePolicy {
    fn network(&self) -> &Network {
        self.base.network()
    }

    fn assign(&self, fact: &Fact) -> BTreeSet<NodeId> {
        self.overrides
            .get(fact)
            .cloned()
            .unwrap_or_else(|| self.base.assign(fact))
    }
}

/// A domain-guided policy with a *replication factor*: every value is
/// assigned to `k` consecutive nodes (hash-ring style), so every fact is
/// stored at up to `k · arity` nodes. Exercises the paper's "possibly
/// with replication" clause: the disjoint strategy must keep working when
/// several nodes are responsible for the same value.
pub struct ReplicatedDomainPolicy {
    network: Network,
    replicas: usize,
}

impl ReplicatedDomainPolicy {
    /// Replicate each value's ownership across `replicas` nodes
    /// (`1 <= replicas <= |N|`).
    pub fn new(network: Network, replicas: usize) -> Self {
        assert!(replicas >= 1 && replicas <= network.len());
        ReplicatedDomainPolicy { network, replicas }
    }

    /// α(a): `replicas` consecutive nodes starting at the value's hash.
    pub fn alpha(&self, value: &Value) -> BTreeSet<NodeId> {
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        let start = (h.finish() as usize) % self.network.len();
        let nodes: Vec<&NodeId> = self.network.nodes().collect();
        (0..self.replicas)
            .map(|k| nodes[(start + k) % nodes.len()].clone())
            .collect()
    }
}

impl DistributionPolicy for ReplicatedDomainPolicy {
    fn network(&self) -> &Network {
        &self.network
    }

    fn assign(&self, fact: &Fact) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for v in fact.values() {
            out.extend(self.alpha(v));
        }
        out
    }

    fn is_domain_guided(&self) -> bool {
        true
    }

    fn domain_assignment(&self, value: &Value) -> BTreeSet<NodeId> {
        self.alpha(value)
    }
}

/// Range partitioning on the first attribute: integer values are split
/// into `|N|` contiguous buckets over `lo..hi`; non-integers and
/// out-of-range values go to the last node. *Not* domain-guided (like
/// Example 4.1's P1, ownership follows one attribute position, not the
/// value wherever it occurs).
pub struct RangePolicy {
    network: Network,
    lo: i64,
    hi: i64,
}

impl RangePolicy {
    /// Partition `lo..hi` into `|N|` equal buckets.
    pub fn new(network: Network, lo: i64, hi: i64) -> Self {
        assert!(lo < hi);
        RangePolicy { network, lo, hi }
    }
}

impl DistributionPolicy for RangePolicy {
    fn network(&self) -> &Network {
        &self.network
    }

    fn assign(&self, fact: &Fact) -> BTreeSet<NodeId> {
        let n = self.network.len() as i64;
        let idx = match &fact.args()[0] {
            Value::Int(k) if *k >= self.lo && *k < self.hi => {
                ((k - self.lo) * n / (self.hi - self.lo)).clamp(0, n - 1)
            }
            _ => n - 1,
        };
        let node = self
            .network
            .nodes()
            .nth(idx as usize)
            .expect("bucket in range");
        BTreeSet::from([node.clone()])
    }
}

/// The policy `P1` of Example 4.1: facts over `E(2)` partitioned on the
/// parity of the first attribute (odd → node 1, even → node 2).
/// Demonstrably *not* domain-guided.
pub struct ParityFirstAttributePolicy {
    network: Network,
}

impl ParityFirstAttributePolicy {
    /// Requires a network of exactly two nodes (as in the example).
    pub fn new(network: Network) -> Self {
        assert_eq!(network.len(), 2, "Example 4.1 uses a two-node network");
        ParityFirstAttributePolicy { network }
    }
}

impl DistributionPolicy for ParityFirstAttributePolicy {
    fn network(&self) -> &Network {
        &self.network
    }

    fn assign(&self, fact: &Fact) -> BTreeSet<NodeId> {
        let odd = match &fact.args()[0] {
            Value::Int(k) => k.rem_euclid(2) == 1,
            _ => false,
        };
        let mut nodes = self.network.nodes();
        let n1 = nodes.next().expect("two nodes");
        let n2 = nodes.next().expect("two nodes");
        BTreeSet::from([if odd { n1.clone() } else { n2.clone() }])
    }
}

/// The domain-guided policy `P2` of Example 4.1: odd values owned by node
/// 1, even values by node 2.
pub struct ParityDomainGuidedPolicy {
    inner: DomainGuidedPolicy,
}

impl ParityDomainGuidedPolicy {
    /// Requires a two-node network.
    pub fn new(network: Network) -> Self {
        assert_eq!(network.len(), 2);
        ParityDomainGuidedPolicy {
            inner: DomainGuidedPolicy::new(network),
        }
    }

    fn owner(&self, value: &Value) -> NodeId {
        let odd = match value {
            Value::Int(k) => k.rem_euclid(2) == 1,
            _ => false,
        };
        let mut nodes = self.inner.network.nodes();
        let n1 = nodes.next().expect("two nodes");
        let n2 = nodes.next().expect("two nodes");
        if odd {
            n1.clone()
        } else {
            n2.clone()
        }
    }
}

impl DistributionPolicy for ParityDomainGuidedPolicy {
    fn network(&self) -> &Network {
        self.inner.network()
    }

    fn assign(&self, fact: &Fact) -> BTreeSet<NodeId> {
        fact.values().map(|v| self.owner(v)).collect()
    }

    fn is_domain_guided(&self) -> bool {
        true
    }

    fn domain_assignment(&self, value: &Value) -> BTreeSet<NodeId> {
        BTreeSet::from([self.owner(value)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;

    fn two() -> Network {
        Network::of_size(2)
    }

    #[test]
    fn example_4_1_policy_p1() {
        // I = {E(1,3), E(3,4), E(4,6)}: node 1 gets E(1,3), E(3,4); node 2
        // gets E(4,6).
        let p1 = ParityFirstAttributePolicy::new(two());
        let i = Instance::from_facts([fact("E", [1, 3]), fact("E", [3, 4]), fact("E", [4, 6])]);
        let dist = distribute(&p1, &i);
        let n1 = Value::str("n1");
        let n2 = Value::str("n2");
        assert_eq!(dist[&n1].len(), 2);
        assert!(dist[&n1].contains(&fact("E", [1, 3])));
        assert!(dist[&n1].contains(&fact("E", [3, 4])));
        assert_eq!(dist[&n2].len(), 1);
        assert!(dist[&n2].contains(&fact("E", [4, 6])));
        assert!(!p1.is_domain_guided());
    }

    #[test]
    fn example_4_1_policy_p2_replicates() {
        // Domain-guided: E(3,4) contains odd 3 and even 4 -> both nodes.
        let p2 = ParityDomainGuidedPolicy::new(two());
        let i = Instance::from_facts([fact("E", [1, 3]), fact("E", [3, 4]), fact("E", [4, 6])]);
        let dist = distribute(&p2, &i);
        let n1 = Value::str("n1");
        let n2 = Value::str("n2");
        assert_eq!(dist[&n1].len(), 2); // E(1,3), E(3,4)
        assert_eq!(dist[&n2].len(), 2); // E(3,4), E(4,6)
        assert!(dist[&n1].contains(&fact("E", [3, 4])));
        assert!(dist[&n2].contains(&fact("E", [3, 4])));
        assert!(p2.is_domain_guided());
    }

    #[test]
    fn p1_is_not_domain_guided_on_witness() {
        // The paper's witness: no node is assigned ALL facts containing 4.
        // Under any domain assignment, the owner(s) of 4 would hold both
        // E(3,4) and E(4,6).
        let p1 = ParityFirstAttributePolicy::new(two());
        let i = Instance::from_facts([fact("E", [3, 4]), fact("E", [4, 6])]);
        let dist = distribute(&p1, &i);
        let holds_all_4 = dist
            .values()
            .any(|inst| inst.contains(&fact("E", [3, 4])) && inst.contains(&fact("E", [4, 6])));
        assert!(!holds_all_4, "no node holds every fact containing 4");
    }

    #[test]
    fn hash_policy_partitions_totally() {
        let p = HashPolicy::new(Network::of_size(4));
        let i = calm_common::generator::path(10);
        let dist = distribute(&p, &i);
        let total: usize = dist.values().map(Instance::len).sum();
        assert_eq!(total, i.len(), "hash policy does not replicate");
    }

    #[test]
    fn domain_guided_assign_is_union_of_alphas() {
        let p = DomainGuidedPolicy::new(Network::of_size(3));
        let f = fact("E", [1, 2]);
        let expected: BTreeSet<NodeId> = p
            .alpha(&Value::Int(1))
            .union(&p.alpha(&Value::Int(2)))
            .cloned()
            .collect();
        assert_eq!(p.assign(&f), expected);
    }

    #[test]
    fn all_to_routes_everything_to_x() {
        let net = Network::of_size(3);
        let x = Value::str("n2");
        let p = DomainGuidedPolicy::all_to(net, x.clone());
        let i = calm_common::generator::path(5);
        let dist = distribute(&p, &i);
        assert_eq!(dist[&x], i);
        assert!(dist[&Value::str("n1")].is_empty());
        assert!(p.is_domain_guided());
    }

    #[test]
    fn override_policy_reroutes_listed_facts() {
        let net = Network::of_size(2);
        let base: Arc<dyn DistributionPolicy> =
            Arc::new(DomainGuidedPolicy::all_to(net.clone(), Value::str("n1")));
        let j = [fact("E", [7, 8])];
        let p = OverridePolicy::new(base, j.clone(), [Value::str("n2")]);
        assert_eq!(
            p.assign(&fact("E", [7, 8])),
            BTreeSet::from([Value::str("n2")])
        );
        assert_eq!(
            p.assign(&fact("E", [1, 2])),
            BTreeSet::from([Value::str("n1")])
        );
    }

    #[test]
    fn replicated_policy_assigns_k_owners() {
        let p = ReplicatedDomainPolicy::new(Network::of_size(4), 2);
        for k in 0..10i64 {
            assert_eq!(p.alpha(&Value::Int(k)).len(), 2, "value {k}");
        }
        assert!(p.is_domain_guided());
        // Every owner of a value holds every fact containing it.
        let i = calm_common::generator::path(6);
        let dist = distribute(&p, &i);
        for f in i.facts() {
            for val in f.values() {
                for owner in p.alpha(val) {
                    assert!(dist[&owner].contains(&f), "{owner} misses {f}");
                }
            }
        }
    }

    #[test]
    fn range_policy_buckets_by_first_attribute() {
        let p = RangePolicy::new(Network::of_size(2), 0, 10);
        let lowf = fact("E", [1, 9]);
        let highf = fact("E", [9, 1]);
        assert_ne!(p.assign(&lowf), p.assign(&highf));
        // Out-of-range goes to the last node.
        let off = fact("E", [999, 0]);
        assert_eq!(p.assign(&off), BTreeSet::from([Value::str("n2")]));
    }

    #[test]
    fn value_assignment_override() {
        let p = DomainGuidedPolicy::new(Network::of_size(2))
            .with_value_assignment(Value::Int(5), [Value::str("n1"), Value::str("n2")]);
        assert_eq!(p.alpha(&Value::Int(5)).len(), 2);
        // Fact containing 5 is replicated to both nodes.
        assert_eq!(p.assign(&fact("E", [5, 5])).len(), 2);
    }
}
