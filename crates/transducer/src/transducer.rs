//! Relational transducers (Section 4.1.2): the per-node program
//! `Π = (Qout, Qins, Qdel, Qsnd)`.

use crate::schema::TransducerSchema;
use calm_common::fact::{Fact, RelName};
use calm_common::instance::Instance;
use calm_common::storage::{EvalMetrics, RelId, SharedSymbols};
use calm_datalog::eval::{Database, RuleSet};
use calm_datalog::program::Program;
use std::collections::HashMap;
use std::sync::Mutex;

/// The result of one transition's queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransducerStep {
    /// `Qout(D)` — new output facts (over `Υout`; output is cumulative).
    pub out: Instance,
    /// `Qins(D)` — memory insertions (over `Υmem`).
    pub ins: Instance,
    /// `Qdel(D)` — memory deletions (over `Υmem`).
    pub del: Instance,
    /// `Qsnd(D)` — messages sent to every other node (over `Υmsg`).
    pub snd: Instance,
    /// Engine counters for evaluating this step's queries (zero for
    /// native Rust transducers, which bypass the Datalog engine).
    pub metrics: EvalMetrics,
}

/// A relational transducer: four queries over the combined schema
/// `Υin ∪ Υout ∪ Υmsg ∪ Υmem ∪ Υsys`.
///
/// Implementations may be Datalog programs ([`DatalogTransducer`]) or
/// native Rust ([`crate::strategy`]) — the formal model only requires
/// *queries*, i.e. generic deterministic mappings.
pub trait Transducer: Send + Sync {
    /// The transducer schema.
    fn schema(&self) -> &TransducerSchema;

    /// Evaluate the four queries on the visible database `D` of one
    /// transition.
    fn step(&self, d: &Instance) -> TransducerStep;

    /// A display name for reports.
    fn name(&self) -> &str {
        "transducer"
    }
}

/// A transducer whose four queries are (unions of) non-recursive Datalog¬
/// rule sets, evaluated in one shot over `D`. Rules whose heads are over
/// `Υout`/`Υmem`/`Υmsg` feed `Qout`/`Qins`/`Qsnd`; deletion rules use
/// head relations prefixed `del_` (targeting the memory relation after
/// the prefix).
pub struct DatalogTransducer {
    schema: TransducerSchema,
    name: String,
    /// Per-transducer evaluation state reused across transitions: the
    /// symbol table, the compiled rule set, head-relation routing by
    /// interned id, and a scratch database whose allocations survive
    /// `clear()`. A `Mutex` keeps `step(&self)` shareable across the
    /// simulator's threads without rebuilding any of it per transition.
    ctx: Mutex<StepContext>,
}

/// Where facts derived for a head relation go in a [`TransducerStep`].
enum Route {
    Out,
    Snd,
    Ins,
    /// `del_<base>` head: route to `del`, renamed to the base relation.
    Del(RelName),
}

struct StepContext {
    symbols: SharedSymbols,
    rules: RuleSet,
    routes: HashMap<RelId, Route>,
    scratch: Database,
}

impl DatalogTransducer {
    /// Build from a rule set. Head relations must lie in `Υout`, `Υmem`,
    /// `Υmsg`, or be `del_<mem-relation>`.
    pub fn new(name: impl Into<String>, schema: TransducerSchema, rules: Program) -> Self {
        let symbols = SharedSymbols::new();
        let compiled;
        let mut routes = HashMap::new();
        {
            let mut table = symbols.write();
            for rule in rules.rules() {
                let head = rule.head.relation.as_ref();
                let route = if schema.output.contains(head) {
                    Route::Out
                } else if schema.mem.contains(head) {
                    Route::Ins
                } else if schema.msg.contains(head) {
                    Route::Snd
                } else if let Some(base) = head
                    .strip_prefix("del_")
                    .filter(|base| schema.mem.contains(base))
                {
                    Route::Del(calm_common::fact::rel(base))
                } else {
                    panic!("rule head {head} is not an output/memory/message relation");
                };
                routes.insert(table.rel(head), route);
            }
            compiled = RuleSet::new(&rules, &mut table);
        }
        let scratch = Database::with_symbols(symbols.clone());
        DatalogTransducer {
            schema,
            name: name.into(),
            ctx: Mutex::new(StepContext {
                symbols,
                rules: compiled,
                routes,
                scratch,
            }),
        }
    }

    /// Parse the rule set from Datalog source.
    ///
    /// # Errors
    /// Returns the parser/validation error message.
    pub fn parse(
        name: impl Into<String>,
        schema: TransducerSchema,
        src: &str,
    ) -> Result<Self, String> {
        let rules = calm_datalog::parser::parse_program(src).map_err(|e| e.to_string())?;
        Ok(DatalogTransducer::new(name, schema, rules))
    }
}

impl Transducer for DatalogTransducer {
    fn schema(&self) -> &TransducerSchema {
        &self.schema
    }

    fn step(&self, d: &Instance) -> TransducerStep {
        let mut guard = self.ctx.lock().expect("step context");
        let ctx = &mut *guard;
        // Diff-reload, not `clear()` + additive `load()`: the scratch
        // database persists across transitions, and `load` alone would
        // keep rows the instance no longer holds (deleted memory or
        // consumed messages), deriving from facts whose supports are
        // gone. `sync_with_instance` retracts exactly the stale rows
        // and keeps unchanged ones interned.
        ctx.scratch.sync_with_instance(d);
        let mut step = TransducerStep::default();
        let mut metrics = EvalMetrics::default();
        // One read lock across the whole derivation: rows are uninterned
        // as they are emitted, no intermediate Database or Instance.
        let table = ctx.symbols.read();
        ctx.rules
            .derive(&ctx.scratch, &mut metrics, &mut |rel, row| {
                let Some(route) = ctx.routes.get(&rel) else {
                    return;
                };
                let args: Vec<_> = row.iter().map(|s| table.value(*s).clone()).collect();
                match route {
                    Route::Out => step.out.insert(Fact::new(table.rel_name(rel), args)),
                    Route::Snd => step.snd.insert(Fact::new(table.rel_name(rel), args)),
                    Route::Ins => step.ins.insert(Fact::new(table.rel_name(rel), args)),
                    Route::Del(base) => step.del.insert(Fact::new(base, args)),
                };
            });
        drop(table);
        step.metrics = metrics;
        step
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::schema::Schema;

    fn echo_schema() -> TransducerSchema {
        TransducerSchema::new(
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("out_E", 2)]),
            Schema::from_pairs([("msg_E", 2)]),
            Schema::from_pairs([("seen", 2)]),
        )
    }

    #[test]
    fn datalog_transducer_routes_heads() {
        let t = DatalogTransducer::parse(
            "echo",
            echo_schema(),
            "out_E(x,y) :- E(x,y).\n\
             msg_E(x,y) :- E(x,y).\n\
             seen(x,y) :- msg_E(x,y).",
        )
        .unwrap();
        let d = Instance::from_facts([fact("E", [1, 2]), fact("msg_E", [3, 4])]);
        let step = t.step(&d);
        assert_eq!(step.out, Instance::from_facts([fact("out_E", [1, 2])]));
        assert_eq!(step.snd, Instance::from_facts([fact("msg_E", [1, 2])]));
        assert_eq!(step.ins, Instance::from_facts([fact("seen", [3, 4])]));
        assert!(step.del.is_empty());
    }

    #[test]
    fn deletion_rules_use_del_prefix() {
        let t = DatalogTransducer::parse(
            "forgetter",
            echo_schema(),
            "del_seen(x,y) :- seen(x,y), E(x,y).",
        )
        .unwrap();
        let d = Instance::from_facts([fact("seen", [1, 2]), fact("E", [1, 2])]);
        let step = t.step(&d);
        assert_eq!(step.del, Instance::from_facts([fact("seen", [1, 2])]));
    }

    #[test]
    fn step_after_fact_removal_drops_stale_derivations() {
        // Regression for the Instance::remove / scratch-Database
        // mismatch: the StepContext database persists across steps, so
        // a step over a shrunk instance must not keep deriving from the
        // removed fact's old row.
        let t = DatalogTransducer::parse("echo", echo_schema(), "out_E(x,y) :- E(x,y).").unwrap();
        let mut d = Instance::from_facts([fact("E", [1, 2]), fact("E", [3, 4])]);
        assert_eq!(t.step(&d).out.relation_len("out_E"), 2);
        d.remove(&fact("E", [3, 4]));
        let step = t.step(&d);
        assert_eq!(
            step.out,
            Instance::from_facts([fact("out_E", [1, 2])]),
            "removed fact must stop feeding derivations"
        );
        // And re-adding works too (revive path).
        d.insert(fact("E", [3, 4]));
        assert_eq!(t.step(&d).out.relation_len("out_E"), 2);
    }

    #[test]
    #[should_panic(expected = "not an output/memory/message")]
    fn stray_head_rejected() {
        let rules = calm_datalog::parser::parse_program("Other(x) :- E(x,x).").unwrap();
        let _ = DatalogTransducer::new("bad", echo_schema(), rules);
    }

    #[test]
    fn system_relations_readable() {
        let t = DatalogTransducer::parse(
            "id-echo",
            TransducerSchema::new(
                Schema::from_pairs([("E", 2)]),
                Schema::from_pairs([("out_owner", 2)]),
                Schema::new(),
                Schema::new(),
            ),
            "out_owner(n, x) :- Id(n), E(x, y).",
        )
        .unwrap();
        let d = Instance::from_facts([
            fact("E", [1, 2]),
            calm_common::fact::Fact::new("Id", vec![calm_common::value::Value::str("n1")]),
        ]);
        let step = t.step(&d);
        assert_eq!(step.out.relation_len("out_owner"), 1);
    }
}
