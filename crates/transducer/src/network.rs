//! Networks: nonempty finite sets of nodes, where nodes are ordinary
//! domain values (Section 4.1.1).

use calm_common::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A node identifier — any domain value (the paper: "node identifiers can
/// occur as data in relations").
pub type NodeId = Value;

/// A network `N`: a nonempty finite set of values from **dom**.
#[derive(Clone, PartialEq, Eq)]
pub struct Network {
    nodes: BTreeSet<NodeId>,
}

impl Network {
    /// Build a network from explicit node values. Panics when empty.
    pub fn from_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let nodes: BTreeSet<NodeId> = nodes.into_iter().collect();
        assert!(!nodes.is_empty(), "networks are nonempty");
        Network { nodes }
    }

    /// A network of `n` nodes named `n1 ... n<n>` (string values, so they
    /// do not collide with the integer data used by the experiments).
    pub fn of_size(n: usize) -> Self {
        assert!(n >= 1);
        Network::from_nodes((1..=n).map(|k| Value::str(format!("n{k}"))))
    }

    /// The nodes, in deterministic order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeId> + '_ {
        self.nodes.iter()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Networks are nonempty; this always returns `false` (provided for
    /// API symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether a value names a node of this network.
    pub fn contains(&self, node: &NodeId) -> bool {
        self.nodes.contains(node)
    }

    /// The first node in deterministic order.
    pub fn first(&self) -> &NodeId {
        self.nodes.iter().next().expect("nonempty")
    }

    /// All nodes except `x`, in deterministic order.
    pub fn others<'a>(&'a self, x: &'a NodeId) -> impl Iterator<Item = &'a NodeId> + 'a {
        self.nodes.iter().filter(move |n| *n != x)
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network{:?}", self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_size_builds_named_nodes() {
        let n = Network::of_size(3);
        assert_eq!(n.len(), 3);
        assert!(n.contains(&Value::str("n1")));
        assert!(n.contains(&Value::str("n3")));
        assert!(!n.contains(&Value::str("n4")));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_network_rejected() {
        let _ = Network::from_nodes(std::iter::empty());
    }

    #[test]
    fn others_excludes_self() {
        let n = Network::of_size(3);
        let x = Value::str("n2");
        let others: Vec<_> = n.others(&x).cloned().collect();
        assert_eq!(others, vec![Value::str("n1"), Value::str("n3")]);
    }

    #[test]
    fn single_node_network() {
        let n = Network::of_size(1);
        assert_eq!(n.len(), 1);
        assert_eq!(n.others(n.first()).count(), 0);
    }
}
