//! Message buffers are multisets of facts (Section 4.1.3): the same
//! message can be in flight multiple times.

use std::collections::BTreeMap;

/// A multiset over an ordered element type.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Multiset<T: Ord> {
    counts: BTreeMap<T, usize>,
}

impl<T: Ord + Clone> Multiset<T> {
    /// The empty multiset.
    pub fn new() -> Self {
        Multiset {
            counts: BTreeMap::new(),
        }
    }

    /// Add one occurrence.
    pub fn insert(&mut self, item: T) {
        *self.counts.entry(item).or_insert(0) += 1;
    }

    /// Add `n` occurrences.
    pub fn insert_n(&mut self, item: T, n: usize) {
        if n > 0 {
            *self.counts.entry(item).or_insert(0) += n;
        }
    }

    /// Remove one occurrence; returns `false` when absent.
    pub fn remove_one(&mut self, item: &T) -> bool {
        match self.counts.get_mut(item) {
            Some(c) if *c > 1 => {
                *c -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(item);
                true
            }
            None => false,
        }
    }

    /// Multiset difference: remove the occurrences of `other` (saturating).
    pub fn subtract(&mut self, other: &Multiset<T>) {
        for (item, &n) in &other.counts {
            for _ in 0..n {
                if !self.remove_one(item) {
                    break;
                }
            }
        }
    }

    /// Number of occurrences of an element.
    pub fn count(&self, item: &T) -> usize {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Total number of occurrences.
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The distinct elements (the multiset "collapsed to a set").
    pub fn support(&self) -> impl Iterator<Item = &T> {
        self.counts.keys()
    }

    /// Iterate `(element, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&T, usize)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// Drain everything, returning the previous contents.
    pub fn take_all(&mut self) -> Multiset<T> {
        Multiset {
            counts: std::mem::take(&mut self.counts),
        }
    }

    /// Drain everything as `(element, count)` pairs in element order —
    /// the bulk form of a deliver-everything sweep (one pass, no
    /// per-occurrence removes).
    pub fn drain_all(&mut self) -> impl Iterator<Item = (T, usize)> {
        std::mem::take(&mut self.counts).into_iter()
    }

    /// Absorb another multiset wholesale (the bulk form of repeated
    /// [`Multiset::insert`]): occurrence counts add. When `self` is
    /// empty this is a move, not an element-by-element merge.
    pub fn extend_from(&mut self, other: Multiset<T>) {
        if self.counts.is_empty() {
            self.counts = other.counts;
            return;
        }
        for (item, n) in other.counts {
            *self.counts.entry(item).or_insert(0) += n;
        }
    }
}

impl<T: Ord + Clone> Extend<T> for Multiset<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.insert(x);
        }
    }
}

impl<T: Ord + Clone> FromIterator<T> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut m = Multiset::new();
        for x in iter {
            m.insert(x);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_multiplicities() {
        let mut m = Multiset::new();
        m.insert("a");
        m.insert("a");
        m.insert("b");
        assert_eq!(m.count(&"a"), 2);
        assert_eq!(m.len(), 3);
        assert_eq!(m.support().count(), 2);
    }

    #[test]
    fn remove_one_decrements() {
        let mut m: Multiset<&str> = ["a", "a"].into_iter().collect();
        assert!(m.remove_one(&"a"));
        assert_eq!(m.count(&"a"), 1);
        assert!(m.remove_one(&"a"));
        assert!(!m.remove_one(&"a"));
        assert!(m.is_empty());
    }

    #[test]
    fn subtract_is_saturating() {
        let mut m: Multiset<i32> = [1, 1, 2].into_iter().collect();
        let other: Multiset<i32> = [1, 2, 2, 3].into_iter().collect();
        m.subtract(&other);
        assert_eq!(m.count(&1), 1);
        assert_eq!(m.count(&2), 0);
        assert_eq!(m.count(&3), 0);
    }

    #[test]
    fn take_all_empties() {
        let mut m: Multiset<i32> = [1, 2].into_iter().collect();
        let taken = m.take_all();
        assert!(m.is_empty());
        assert_eq!(taken.len(), 2);
    }

    #[test]
    fn drain_all_yields_counts_and_empties() {
        let mut m: Multiset<i32> = [1, 1, 2].into_iter().collect();
        let drained: Vec<(i32, usize)> = m.drain_all().collect();
        assert_eq!(drained, vec![(1, 2), (2, 1)]);
        assert!(m.is_empty());
        assert_eq!(m.drain_all().count(), 0);
    }

    #[test]
    fn extend_from_adds_counts() {
        let mut m: Multiset<i32> = [1, 2].into_iter().collect();
        let other: Multiset<i32> = [1, 3, 3].into_iter().collect();
        m.extend_from(other);
        assert_eq!(m.count(&1), 2);
        assert_eq!(m.count(&2), 1);
        assert_eq!(m.count(&3), 2);
        // Into an empty multiset it is a move.
        let mut empty: Multiset<i32> = Multiset::new();
        empty.extend_from([4, 4].into_iter().collect());
        assert_eq!(empty.count(&4), 2);
    }

    #[test]
    fn extend_takes_single_occurrences() {
        let mut m: Multiset<i32> = Multiset::new();
        m.extend([1, 1, 2]);
        assert_eq!(m.count(&1), 2);
        assert_eq!(m.len(), 3);
    }
}
