//! # calm-transducer
//!
//! Relational transducer networks (Section 4): the original model of
//! Ameloot–Neven–Van den Bussche, the policy-aware and domain-guided
//! extensions of Zinn–Green–Ludäscher, the asynchronous operational
//! semantics with multiset message buffers and fair schedulers, and the
//! three generic coordination-free evaluation strategies that witness
//! `F0 = M`, `F1 = Mdistinct` and `F2 = Mdisjoint`.
//!
//! A simulation is assembled from four ingredients:
//!
//! ```text
//! TransducerNetwork {
//!     transducer: &dyn Transducer,       // the per-node program
//!     policy:     &dyn DistributionPolicy, // how inputs are distributed
//!     config:     SystemConfig,          // which system relations exist
//! }
//! ```
//!
//! and driven with [`runtime::run`] (to quiescence) or the
//! coordination-freeness witnesses in [`coordination`].

#![warn(missing_docs)]

pub mod coordination;
pub mod engine;
pub mod multiset;
pub mod netcompile;
pub mod network;
pub mod policy;
pub mod proof_replay;
pub mod runtime;
pub mod schema;
pub mod strategy;
pub mod system_facts;
pub mod trace;
pub mod transducer;

pub use coordination::{heartbeat_profile, heartbeat_witness};
pub use engine::{NodeEngine, NodeStepOutcome};
pub use multiset::Multiset;
pub use netcompile::{compile_monotone_program, NetCompileError};
pub use network::{Network, NodeId};
pub use policy::{
    distribute, DistributionPolicy, DomainGuidedPolicy, HashPolicy, OverridePolicy,
    ParityDomainGuidedPolicy, ParityFirstAttributePolicy, RangePolicy, ReplicatedDomainPolicy,
};
pub use proof_replay::{replay_no_all_indistinguishability, replay_policy_surgery, ReplayOutcome};
pub use runtime::{
    network_output, run, run_with, transition, transition_with, verify_computes, Configuration,
    Delivery, Metrics, RunResult, Scheduler, TransducerNetwork, DEFAULT_DELIVER_P,
};
pub use schema::{policy_relation, SystemConfig, TransducerSchema};
pub use strategy::{
    classify_message, collected_input, expected_output, DisjointStrategy, DistinctStrategy,
    MessageClass, MessageClassCounts, MonotoneBroadcast,
};
pub use trace::{traced_run, Trace, TraceEvent, TraceSink};
pub use transducer::{DatalogTransducer, Transducer, TransducerStep};
