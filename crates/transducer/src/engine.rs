//! The per-node step core ([`NodeEngine`]) shared by both execution
//! engines: the sequential simulator ([`crate::runtime`]) and the
//! threaded executor (the `calm-net` crate).
//!
//! A transition of node `x` factors into two halves:
//!
//! 1. **delivery** — choose the submultiset `m ⊆ b(x)` and hand the
//!    collapsed set `M` to the node (engine-specific: the sequential
//!    simulator owns every buffer, the threaded executor owns per-node
//!    inboxes fed by channels);
//! 2. **the step itself** — assemble `D = H(x) ∪ s(x) ∪ M ∪ S`, apply
//!    the four queries, fold `out`/`ins`/`del` into the node state, and
//!    emit the messages of `Qsnd` (engine-independent).
//!
//! [`NodeEngine::apply`] is half 2. It owns all the bookkeeping both
//! engines must agree on — per-class message counters, output-growth
//! indices, engine counters, and the per-transition observability
//! event — so the equivalence tests compare engines that differ *only*
//! in scheduling.

use crate::network::NodeId;
use crate::policy::DistributionPolicy;
use crate::schema::SystemConfig;
use crate::strategy::classify_message;
use crate::system_facts::system_facts;
use crate::transducer::Transducer;
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_obs::{ArgValue, Obs};

/// The engine-independent half of one node's transition: everything
/// after delivery. Construct once per node (it caches the node's obs
/// track and recipient count) and call [`NodeEngine::apply`] per step.
pub struct NodeEngine<'a> {
    transducer: &'a dyn Transducer,
    policy: &'a dyn DistributionPolicy,
    sys: SystemConfig,
    node: NodeId,
    /// `H(x)` — the node's fragment of the distributed input.
    input: &'a Instance,
    /// Obs display lane: `1 + <node index>` (track 0 is engine-level).
    track: u32,
    /// `|N| - 1`: every sent fact is enqueued once per other node.
    recipients: usize,
}

/// What one [`NodeEngine::apply`] produced, for the caller to route.
#[derive(Debug, Clone, Default)]
pub struct NodeStepOutcome {
    /// Whether the node's state (output ∪ memory) changed.
    pub state_changed: bool,
    /// Whether the node's *output* portion grew.
    pub grew_output: bool,
    /// `Qsnd(D)` — message facts, each to be enqueued at every other
    /// node (already counted in the metrics; the caller only routes).
    pub sent: Vec<Fact>,
}

impl<'a> NodeEngine<'a> {
    /// Build the step core for one node. `input` is `H(x)`, the node's
    /// fragment of `dist_P(I)`.
    pub fn new(
        transducer: &'a dyn Transducer,
        policy: &'a dyn DistributionPolicy,
        sys: SystemConfig,
        node: NodeId,
        input: &'a Instance,
    ) -> Self {
        let track = policy
            .network()
            .nodes()
            .position(|n| n == &node)
            .map_or(0, |i| i as u32 + 1);
        let recipients = policy.network().len() - 1;
        NodeEngine {
            transducer,
            policy,
            sys,
            node,
            input,
            track,
            recipients,
        }
    }

    /// The node this engine steps.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// The obs display lane (`1 + <node index>`).
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Execute the post-delivery half of one transition on `state`.
    ///
    /// `delivered` is the collapsed set `M` (distinct facts);
    /// `delivered_occurrences` is `|m|`, the multiset occurrences the
    /// caller consumed (already added to `metrics.messages_delivered` by
    /// the caller — it is passed here only for the observability event).
    /// Increments `metrics.transitions`, counts sends per class, tracks
    /// output growth, and emits the per-transition `runtime/transition`
    /// event with per-class counter deltas to `obs`.
    ///
    /// `sent_filter`, when present, is this node's set of every message
    /// fact it ever sent: facts already in the set are suppressed (not
    /// returned, not counted), fresh facts are added. The threaded
    /// executor passes it so the message flow is finite and its
    /// termination-detection ring can conclude — sound for the same
    /// reason the sequential engine's quiescence detection is (states
    /// accumulate everything they react to, so a re-delivered fact is a
    /// no-op at every receiver). The sequential engine passes `None`:
    /// its delivered-set bookkeeping lives in [`crate::runtime::run`].
    pub fn apply(
        &self,
        state: &mut Instance,
        delivered: &[Fact],
        delivered_occurrences: usize,
        mut sent_filter: Option<&mut std::collections::BTreeSet<Fact>>,
        metrics: &mut crate::runtime::Metrics,
        obs: &Obs,
    ) -> NodeStepOutcome {
        metrics.transitions += 1;

        // J = H(x) ∪ s(x) ∪ M.
        let mut j = self.input.clone();
        j.extend(state.facts());
        j.extend(delivered.iter().cloned());

        // S and D.
        let s = system_facts(
            &self.node,
            self.policy.network(),
            &self.transducer.schema().input,
            self.policy,
            self.sys,
            &j,
        );
        let d = j.union(&s);

        let step = self.transducer.step(&d);
        metrics.eval.merge(&step.metrics);

        // Update state: cumulative output, insert/delete memory. Change
        // tracking is incremental (insert/remove return whether they had
        // an effect) — no state snapshot.
        let schema = self.transducer.schema();
        let mut state_changed = false;
        let mut grew_output = false;
        let mut new_output: Vec<String> = Vec::new();
        for f in step.out.facts() {
            debug_assert!(schema.output.covers(&f), "Qout must target Υout: {f}");
            if obs.enabled() && !state.contains(&f) {
                new_output.push(f.to_string());
            }
            if state.insert(f) {
                state_changed = true;
                grew_output = true;
            }
        }
        let ins = step.ins.difference(&step.del);
        let del = step.del.difference(&step.ins);
        for f in ins.facts() {
            debug_assert!(schema.mem.covers(&f), "Qins must target Υmem: {f}");
            if state.insert(f) {
                state_changed = true;
            }
        }
        for f in del.facts() {
            if state.remove(&f) {
                state_changed = true;
            }
        }

        // Count the sends: one occurrence per (fact, recipient) pair.
        let mut sent = Vec::with_capacity(step.snd.len());
        let class_before = metrics.by_class;
        for f in step.snd.facts() {
            debug_assert!(schema.msg.covers(&f), "Qsnd must target Υmsg: {f}");
            if let Some(filter) = sent_filter.as_deref_mut() {
                if !filter.insert(f.clone()) {
                    continue;
                }
            }
            metrics
                .by_class
                .record(classify_message(&f), self.recipients);
            sent.push(f);
        }
        let sent_n = sent.len() * self.recipients;
        metrics.messages_sent += sent_n;

        // Output growth bookkeeping (transition index is 1-based and was
        // incremented above).
        if grew_output {
            if metrics.first_output_at.is_none() {
                metrics.first_output_at = Some(metrics.transitions);
            }
            metrics.last_output_growth_at = Some(metrics.transitions);
        }

        if obs.enabled() {
            obs.event("runtime", "transition", self.track, || {
                vec![
                    ("node", ArgValue::Str(self.node.to_string())),
                    ("delivered", ArgValue::U64(delivered_occurrences as u64)),
                    ("sent", ArgValue::U64(sent_n as u64)),
                    ("state_changed", ArgValue::Bool(state_changed)),
                    ("new_output", ArgValue::List(new_output)),
                ]
            });
            if delivered_occurrences > 0 {
                obs.counter(
                    "runtime",
                    "messages.delivered",
                    delivered_occurrences as u64,
                );
                obs.histogram("runtime", "delivered_batch", delivered_occurrences as u64);
            }
            if sent_n > 0 {
                obs.counter("runtime", "messages.sent", sent_n as u64);
                for ((label, now), (_, was)) in metrics
                    .by_class
                    .as_pairs()
                    .iter()
                    .zip(class_before.as_pairs().iter())
                {
                    if now > was {
                        obs.counter("strategy", &format!("messages.{label}"), (now - was) as u64);
                    }
                }
            }
        }

        NodeStepOutcome {
            state_changed,
            grew_output,
            sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::HashPolicy;
    use crate::runtime::Metrics;
    use crate::schema::TransducerSchema;
    use crate::strategy::MonotoneBroadcast;
    use calm_common::fact::fact;
    use calm_common::schema::Schema;
    use calm_queries::tc::tc_datalog;

    #[test]
    fn apply_counts_sends_per_recipient() {
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let net = Network::of_size(3);
        let policy = HashPolicy::new(net.clone());
        let input = Instance::from_facts([fact("E", [1, 2])]);
        let x = net.first().clone();
        let engine = NodeEngine::new(&t, &policy, SystemConfig::ORIGINAL, x, &input);
        let mut state = Instance::new();
        let mut metrics = Metrics::default();
        let outcome = engine.apply(&mut state, &[], 0, None, &mut metrics, &Obs::noop());
        assert!(outcome.state_changed);
        assert!(outcome.grew_output);
        // One broadcast fact, two other nodes.
        assert_eq!(outcome.sent.len(), 1);
        assert_eq!(metrics.messages_sent, 2);
        assert_eq!(metrics.by_class.fact, 2);
        assert_eq!(metrics.transitions, 1);
        assert_eq!(metrics.first_output_at, Some(1));
    }

    #[test]
    fn apply_reaches_local_fixpoint() {
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let net = Network::of_size(2);
        let policy = HashPolicy::new(net.clone());
        let input = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
        let x = net.first().clone();
        let engine = NodeEngine::new(&t, &policy, SystemConfig::ORIGINAL, x, &input);
        let mut state = Instance::new();
        let mut metrics = Metrics::default();
        let first = engine.apply(&mut state, &[], 0, None, &mut metrics, &Obs::noop());
        assert!(first.state_changed);
        // Repeating with no new deliveries converges: the second step
        // changes nothing and sends nothing (the strategy remembers what
        // it broadcast).
        let second = engine.apply(&mut state, &[], 0, None, &mut metrics, &Obs::noop());
        assert!(!second.state_changed);
        assert!(second.sent.is_empty());
    }

    #[test]
    fn track_is_one_plus_node_index() {
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let net = Network::of_size(3);
        let policy = HashPolicy::new(net.clone());
        let input = Instance::new();
        for (i, n) in net.nodes().enumerate() {
            let engine = NodeEngine::new(&t, &policy, SystemConfig::ORIGINAL, n.clone(), &input);
            assert_eq!(engine.track(), i as u32 + 1);
        }
        let _ = TransducerSchema::new(Schema::new(), Schema::new(), Schema::new(), Schema::new());
    }
}
