//! Compiling positive Datalog(≠) into a *declarative networking* program:
//! a pure-Datalog transducer whose network execution computes the query
//! coordination-free (the constructive content of CALM's easy direction,
//! and the style of program Hellerstein's conjectures are about).
//!
//! Given a positive program `P` with `edb R1..Rk` and outputs `O ⊆ idb`:
//!
//! * every node broadcasts its (collected) input facts: `m_R(x̄) ← R(x̄)`,
//!   `m_R(x̄) ← c_R(x̄)`; stores everything it sees: `c_R(x̄) ← R(x̄)`,
//!   `c_R(x̄) ← m_R(x̄)`;
//! * each rule of `P` is rewritten over the collected/derived relations
//!   (`R ↦ c_R` for edb, `T ↦ t_T` for idb) and derives into memory —
//!   one immediate-consequence round **per transition**, so the fixpoint
//!   unfolds across heartbeats of the run rather than inside one
//!   transition;
//! * output rules copy `t_T` into `out_T`.
//!
//! Because every derived fact is monotone in the collected input, the
//! network output converges to `Q(I)` on every fair run and any policy.

use crate::schema::TransducerSchema;
use crate::transducer::DatalogTransducer;
use calm_common::schema::Schema;
use calm_datalog::ast::{Atom, Rule};
use calm_datalog::program::Program;

/// Errors from the network compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetCompileError {
    /// The program is not positive — the broadcast strategy is only
    /// correct for monotone queries, and negation breaks monotonicity.
    NotPositive(String),
}

impl std::fmt::Display for NetCompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetCompileError::NotPositive(r) => {
                write!(
                    f,
                    "only positive Datalog(≠) compiles to the broadcast network: {r}"
                )
            }
        }
    }
}

impl std::error::Error for NetCompileError {}

fn collected(r: &str) -> String {
    format!("c_{r}")
}

fn message(r: &str) -> String {
    format!("m_{r}")
}

fn derived(r: &str) -> String {
    format!("t_{r}")
}

fn output(r: &str) -> String {
    format!("out_{r}")
}

/// Compile a positive Datalog(≠) program into a broadcast transducer.
///
/// # Errors
/// Returns [`NetCompileError::NotPositive`] when any rule has negation.
pub fn compile_monotone_program(
    name: impl Into<String>,
    p: &Program,
) -> Result<DatalogTransducer, NetCompileError> {
    for rule in p.rules() {
        if !rule.is_positive() {
            return Err(NetCompileError::NotPositive(rule.to_string()));
        }
    }
    let edb = p.edb();
    let idb = p.idb();

    let mut msg = Schema::new();
    let mut mem = Schema::new();
    let mut out = Schema::new();
    for (r, a) in edb.iter() {
        msg.add(&message(r), a);
        mem.add(&collected(r), a);
    }
    for (t, a) in idb.iter() {
        mem.add(&derived(t), a);
    }
    for o in p.outputs() {
        let a = idb.arity(o).expect("outputs are idb");
        out.add(&output(o), a);
    }
    let schema = TransducerSchema::new(edb.clone(), out, msg, mem);

    let mut rules: Vec<Rule> = Vec::new();
    // Gossip layer.
    for (r, arity) in edb.iter() {
        let vars: Vec<&str> = (0..arity).map(|i| VAR_NAMES[i]).collect();
        let local = Atom::vars(r, &vars);
        let coll = Atom::vars(collected(r), &vars);
        let m = Atom::vars(message(r), &vars);
        rules.push(Rule::positive(coll.clone(), vec![local.clone()]));
        rules.push(Rule::positive(coll.clone(), vec![m.clone()]));
        rules.push(Rule::positive(m.clone(), vec![local]));
        rules.push(Rule::positive(m, vec![coll]));
    }
    // Rewritten program rules.
    for rule in p.rules() {
        let rewrite = |a: &Atom| -> Atom {
            let name = a.relation.as_ref();
            if idb.contains(name) {
                Atom::new(derived(name), a.terms.clone())
            } else {
                Atom::new(collected(name), a.terms.clone())
            }
        };
        rules.push(Rule {
            head: rewrite(&rule.head),
            pos: rule.pos.iter().map(&rewrite).collect(),
            neg: Vec::new(),
            ineq: rule.ineq.clone(),
        });
    }
    // Output copies.
    for o in p.outputs() {
        let arity = idb.arity(o).expect("outputs are idb");
        let vars: Vec<&str> = (0..arity).map(|i| VAR_NAMES[i]).collect();
        rules.push(Rule::positive(
            Atom::vars(output(o), &vars),
            vec![Atom::vars(derived(o), &vars)],
        ));
    }
    let program = Program::new(rules).expect("generated rules are well-formed");
    Ok(DatalogTransducer::new(name, schema, program))
}

const VAR_NAMES: [&str; 8] = ["x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::{DomainGuidedPolicy, HashPolicy};
    use crate::runtime::{run, verify_computes, Scheduler, TransducerNetwork};
    use crate::schema::SystemConfig;
    use calm_common::fact::Fact;
    use calm_common::generator::{cycle, path};
    use calm_common::instance::Instance;

    fn expected(p: &calm_datalog::Program, input: &Instance) -> Instance {
        let answer = calm_datalog::eval::eval_query(p, input).unwrap();
        Instance::from_facts(
            answer
                .facts()
                .map(|f| Fact::new(output(f.relation()), f.args().to_vec())),
        )
    }

    #[test]
    fn compiled_tc_computes_on_networks() {
        let p =
            calm_datalog::parse_program("@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).")
                .unwrap();
        let t = compile_monotone_program("net-tc", &p).unwrap();
        for input in [path(4), cycle(4)] {
            let exp = expected(&p, &input);
            for n in [1, 2, 3] {
                let policy = HashPolicy::new(Network::of_size(n));
                let tn = TransducerNetwork {
                    transducer: &t,
                    policy: &policy,
                    config: SystemConfig::ORIGINAL,
                };
                verify_computes(
                    &tn,
                    &input,
                    &exp,
                    &[Scheduler::RoundRobin, Scheduler::random(4, 30)],
                    200_000,
                )
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            }
        }
    }

    #[test]
    fn fixpoint_unfolds_across_heartbeats() {
        // On a single node, each transition performs one immediate-
        // consequence round: a path of length 5 needs several heartbeats
        // before T(0,5) appears.
        let p =
            calm_datalog::parse_program("@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).")
                .unwrap();
        let t = compile_monotone_program("net-tc", &p).unwrap();
        let input = path(5);
        let exp = expected(&p, &input);
        let net = Network::of_size(1);
        let x = net.first().clone();
        let policy = DomainGuidedPolicy::all_to(net, x.clone());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let beats = crate::coordination::heartbeat_witness(&tn, &input, &x, &exp, 20)
            .expect("fixpoint reached by heartbeats");
        assert!(
            beats >= 3,
            "recursion takes multiple transitions, got {beats}"
        );
    }

    #[test]
    fn inequalities_survive_compilation() {
        let p = calm_datalog::parse_program("@output O.\nO(x,y) :- E(x,y), x != y.").unwrap();
        let t = compile_monotone_program("net-neq", &p).unwrap();
        let mut input = path(2);
        input.insert(calm_common::fact::fact("E", [1, 1]));
        let exp = expected(&p, &input);
        let policy = HashPolicy::new(Network::of_size(2));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r = run(&tn, &input, &Scheduler::RoundRobin, 100_000);
        assert!(r.quiescent);
        assert_eq!(r.output, exp);
    }

    #[test]
    fn negation_rejected() {
        let p = calm_datalog::parse_program("O(x,y) :- E(x,y), not E(y,x).").unwrap();
        assert!(matches!(
            compile_monotone_program("bad", &p),
            Err(NetCompileError::NotPositive(_))
        ));
    }

    #[test]
    fn multi_rule_multi_idb_program() {
        // Two idb layers: same-generation style.
        let p = calm_datalog::parse_program(
            "@output SG.\n\
             SG(x,y) :- Flat(x,y).\n\
             SG(x,y) :- Up(x,u), SG(u,w), Down(w,y).",
        )
        .unwrap();
        let t = compile_monotone_program("net-sg", &p).unwrap();
        let input = Instance::from_facts([
            calm_common::fact::fact("Flat", [2, 3]),
            calm_common::fact::fact("Up", [1, 2]),
            calm_common::fact::fact("Down", [3, 4]),
        ]);
        let exp = expected(&p, &input);
        assert!(exp.contains(&Fact::new(
            "out_SG",
            vec![calm_common::v(1), calm_common::v(4)]
        )));
        let policy = HashPolicy::new(Network::of_size(2));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r = run(&tn, &input, &Scheduler::RoundRobin, 100_000);
        assert!(r.quiescent);
        assert_eq!(r.output, exp);
    }

    #[test]
    fn matches_monotone_broadcast_strategy_output() {
        // The declarative compilation and the native MonotoneBroadcast
        // strategy compute the same thing (modulo relation naming).
        let p =
            calm_datalog::parse_program("@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).")
                .unwrap();
        let compiled = compile_monotone_program("net-tc", &p).unwrap();
        let native = crate::strategy::MonotoneBroadcast::new(Box::new(
            calm_datalog::DatalogQuery::new("tc", p.clone()).unwrap(),
        ));
        let input = path(4);
        let policy = HashPolicy::new(Network::of_size(2));
        let tn1 = TransducerNetwork {
            transducer: &compiled,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let tn2 = TransducerNetwork {
            transducer: &native,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r1 = run(&tn1, &input, &Scheduler::RoundRobin, 100_000);
        let r2 = run(&tn2, &input, &Scheduler::RoundRobin, 100_000);
        assert!(r1.quiescent && r2.quiescent);
        assert_eq!(r1.output, r2.output);
    }
}
