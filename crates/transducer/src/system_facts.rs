//! System facts `S` for a transition (Section 4.1.3).
//!
//! For active node `x` with visible facts `J`:
//!
//! * `A = N ∪ adom(J)` (or `{x} ∪ adom(J)` when `All` is removed, §4.3);
//! * `S = {Id(x)} ∪ {All(y) | y ∈ N} ∪ {MyAdom(a) | a ∈ A}
//!        ∪ {policy_R(ā) | ā ⊆ A, x ∈ P(R(ā))}`,
//!   with each part present only when the [`SystemConfig`] enables it.
//!
//! Restricting `policy_R` to tuples over `A` is the paper's safety
//! restriction: a node only sees the policy over values it already knows.

use crate::network::{Network, NodeId};
use crate::policy::DistributionPolicy;
use crate::schema::{policy_relation, SystemConfig};
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::schema::Schema;
use calm_common::value::Value;
use std::collections::BTreeSet;

/// Compute the system facts for a transition of node `x`.
///
/// `visible` is `J` — the union of local input facts, state, and delivered
/// messages. The enumeration of `policy_R` candidates is `|A|^k` per input
/// relation of arity `k`; the simulator asserts `k <= 4` to keep runs
/// tractable (all the paper's schemas are binary).
pub fn system_facts(
    x: &NodeId,
    network: &Network,
    input_schema: &Schema,
    policy: &dyn DistributionPolicy,
    config: SystemConfig,
    visible: &Instance,
) -> Instance {
    let mut s = Instance::new();
    if config.include_id {
        s.insert(Fact::new("Id", vec![x.clone()]));
    }
    if config.include_all {
        for y in network.nodes() {
            s.insert(Fact::new("All", vec![y.clone()]));
        }
    }
    // The known-value set A.
    let mut a: BTreeSet<Value> = visible.adom();
    if config.include_all {
        a.extend(network.nodes().cloned());
    } else {
        a.insert(x.clone());
    }
    if config.policy_relations {
        for val in &a {
            s.insert(Fact::new("MyAdom", vec![val.clone()]));
        }
        let a_vec: Vec<Value> = a.iter().cloned().collect();
        for (rel, arity) in input_schema.iter() {
            assert!(
                arity <= 4,
                "policy relation enumeration capped at arity 4 (got {arity} for {rel})"
            );
            let pname = policy_relation(rel);
            for tuple in tuples_over(&a_vec, arity) {
                let candidate = Fact::new(rel.as_ref(), tuple.clone());
                if policy.assign(&candidate).contains(x) {
                    s.insert(Fact::new(&pname, tuple));
                }
            }
        }
    }
    s
}

/// All tuples of the given arity over a value slice (odometer order).
pub fn tuples_over(values: &[Value], arity: usize) -> Vec<Vec<Value>> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(values.len().pow(arity as u32));
    let mut idx = vec![0usize; arity];
    loop {
        out.push(idx.iter().map(|&i| values[i].clone()).collect());
        let mut pos = 0;
        loop {
            if pos == arity {
                return out;
            }
            idx[pos] += 1;
            if idx[pos] < values.len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ParityFirstAttributePolicy;
    use calm_common::fact::fact;

    fn setup() -> (Network, Schema, ParityFirstAttributePolicy) {
        let net = Network::of_size(2);
        let schema = Schema::from_pairs([("E", 2)]);
        let policy = ParityFirstAttributePolicy::new(net.clone());
        (net, schema, policy)
    }

    #[test]
    fn example_4_2_system_facts_at_node_1() {
        // Node 1 with local facts E(1,3), E(3,4): sees Id(n1), All(n1),
        // All(n2), MyAdom over {n1, n2, 1, 3, 4}, and policy_E(a, b) for
        // a ∈ {1, 3} (odd), b over the known values.
        let (net, schema, policy) = setup();
        let n1 = Value::str("n1");
        let visible = Instance::from_facts([fact("E", [1, 3]), fact("E", [3, 4])]);
        let s = system_facts(
            &n1,
            &net,
            &schema,
            &policy,
            SystemConfig::POLICY_AWARE,
            &visible,
        );
        assert!(s.contains(&Fact::new("Id", vec![n1.clone()])));
        assert_eq!(s.relation_len("All"), 2);
        // A = {n1, n2, 1, 3, 4} -> 5 MyAdom facts.
        assert_eq!(s.relation_len("MyAdom"), 5);
        // policy_E(a, b): a must be an odd integer from A -> a ∈ {1, 3},
        // b ranges over all 5 values of A: 10 facts.
        assert_eq!(s.relation_len("policy_E"), 10);
        assert!(s.contains(&Fact::new("policy_E", vec![Value::Int(3), Value::Int(4)])));
        // Node 1 is not responsible for even-first-attribute facts.
        assert!(!s.contains(&Fact::new("policy_E", vec![Value::Int(4), Value::Int(3)])));
    }

    #[test]
    fn original_model_has_no_policy_relations() {
        let (net, schema, policy) = setup();
        let n1 = Value::str("n1");
        let visible = Instance::from_facts([fact("E", [1, 3])]);
        let s = system_facts(
            &n1,
            &net,
            &schema,
            &policy,
            SystemConfig::ORIGINAL,
            &visible,
        );
        assert_eq!(s.relation_len("MyAdom"), 0);
        assert_eq!(s.relation_len("policy_E"), 0);
        assert!(s.contains(&Fact::new("Id", vec![n1])));
        assert_eq!(s.relation_len("All"), 2);
    }

    #[test]
    fn no_all_variant_shrinks_a() {
        let (net, schema, policy) = setup();
        let n1 = Value::str("n1");
        let visible = Instance::from_facts([fact("E", [1, 3])]);
        let s = system_facts(
            &n1,
            &net,
            &schema,
            &policy,
            SystemConfig::POLICY_AWARE_NO_ALL,
            &visible,
        );
        assert_eq!(s.relation_len("All"), 0);
        // A = {n1, 1, 3}.
        assert_eq!(s.relation_len("MyAdom"), 3);
        assert!(s.contains(&Fact::new("MyAdom", vec![n1.clone()])));
        assert!(!s.contains(&Fact::new("MyAdom", vec![Value::str("n2")])));
    }

    #[test]
    fn oblivious_sees_nothing() {
        let (net, schema, policy) = setup();
        let n1 = Value::str("n1");
        let visible = Instance::from_facts([fact("E", [1, 3])]);
        let s = system_facts(
            &n1,
            &net,
            &schema,
            &policy,
            SystemConfig::OBLIVIOUS,
            &visible,
        );
        assert!(s.is_empty());
    }

    #[test]
    fn tuples_over_counts() {
        let vals = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(tuples_over(&vals, 1).len(), 3);
        assert_eq!(tuples_over(&vals, 2).len(), 9);
        assert_eq!(tuples_over(&[], 2).len(), 0);
    }

    #[test]
    fn received_values_grow_myadom() {
        // Example 4.2's remark: once node 1 stores value 6, MyAdom(6) and
        // policy_E(a, 6) appear.
        let (net, schema, policy) = setup();
        let n1 = Value::str("n1");
        let visible = Instance::from_facts([fact("E", [1, 3]), fact("coll_E", [4, 6])]);
        let s = system_facts(
            &n1,
            &net,
            &schema,
            &policy,
            SystemConfig::POLICY_AWARE,
            &visible,
        );
        assert!(s.contains(&Fact::new("MyAdom", vec![Value::Int(6)])));
        assert!(s.contains(&Fact::new("policy_E", vec![Value::Int(3), Value::Int(6)])));
    }
}
