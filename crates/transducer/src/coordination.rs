//! Coordination-freeness (Definition 3) witnesses.
//!
//! A transducer is coordination-free when for every network and input
//! there is an "ideal" distribution policy under which some run computes
//! `Q(I)` in a prefix of **heartbeat transitions only** (no messages
//! read). This module runs exactly those prefixes.

use crate::network::NodeId;
use crate::policy::distribute;
use crate::runtime::{
    network_output, transition, Configuration, Delivery, Metrics, TransducerNetwork,
};
use calm_common::instance::Instance;

/// Drive a heartbeat-only prefix at node `x` and report how many
/// heartbeats it takes until the network output equals `expected`
/// (`Q(I)`), or `None` if `max_heartbeats` is reached first.
///
/// Per Definition 3, a `Some(_)` result under some policy for each
/// network/input is the coordination-freeness witness; the caller picks
/// the policy (typically [`crate::policy::DomainGuidedPolicy::all_to`]).
pub fn heartbeat_witness(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    x: &NodeId,
    expected: &Instance,
    max_heartbeats: usize,
) -> Option<usize> {
    let dist = distribute(tn.policy, input);
    let mut config = Configuration::start(tn.policy.network());
    let mut metrics = Metrics::default();
    for step in 1..=max_heartbeats {
        transition(tn, &dist, &mut config, x, Delivery::None, &mut metrics);
        if network_output(tn, &config) == *expected {
            return Some(step);
        }
    }
    None
}

/// The stronger diagnostic used by experiment E8/E9: check that the
/// heartbeat prefix *never* overshoots (output stays within `expected`)
/// and eventually reaches it. Returns `(heartbeats, overshoot)`.
pub fn heartbeat_profile(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    x: &NodeId,
    expected: &Instance,
    max_heartbeats: usize,
) -> (Option<usize>, bool) {
    let dist = distribute(tn.policy, input);
    let mut config = Configuration::start(tn.policy.network());
    let mut metrics = Metrics::default();
    let mut overshoot = false;
    for step in 1..=max_heartbeats {
        transition(tn, &dist, &mut config, x, Delivery::None, &mut metrics);
        let out = network_output(tn, &config);
        if !out.is_subset(expected) {
            overshoot = true;
        }
        if out == *expected {
            return (Some(step), overshoot);
        }
    }
    (None, overshoot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::DomainGuidedPolicy;
    use crate::schema::SystemConfig;
    use crate::strategy::{expected_output, MonotoneBroadcast};
    use calm_common::generator::path;
    use calm_common::value::Value;
    use calm_queries::tc::tc_datalog;

    #[test]
    fn monotone_strategy_witnesses_on_ideal_policy() {
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let input = path(4);
        let expected = expected_output(t.query(), &input);
        let net = Network::of_size(4);
        let x = Value::str("n3");
        let policy = DomainGuidedPolicy::all_to(net, x.clone());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let steps = heartbeat_witness(&tn, &input, &x, &expected, 5).expect("witness");
        assert_eq!(steps, 1, "one heartbeat suffices with all data local");
    }

    #[test]
    fn wrong_node_cannot_witness() {
        // With all data at n3, heartbeats at n1 produce nothing.
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let input = path(4);
        let expected = expected_output(t.query(), &input);
        let net = Network::of_size(4);
        let policy = DomainGuidedPolicy::all_to(net, Value::str("n3"));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        assert!(heartbeat_witness(&tn, &input, &Value::str("n1"), &expected, 5).is_none());
    }

    #[test]
    fn profile_reports_no_overshoot_for_monotone() {
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let input = path(3);
        let expected = expected_output(t.query(), &input);
        let net = Network::of_size(2);
        let x = Value::str("n1");
        let policy = DomainGuidedPolicy::all_to(net, x.clone());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let (steps, overshoot) = heartbeat_profile(&tn, &input, &x, &expected, 5);
        assert!(steps.is_some());
        assert!(!overshoot);
    }
}
