//! Traced runs: a per-transition event log of a network execution, for
//! debugging transducers and for the examples' narrative output.
//!
//! Since the calm-obs layer landed, there is exactly one event mechanism:
//! the runtime emits per-transition events through [`calm_obs::Obs`], and
//! a traced run is simply [`run_with`] feeding a [`TraceSink`] that
//! collects those events back into a [`Trace`]. The same run can fan out
//! to a JSONL log or Chrome trace at no extra cost via
//! [`calm_obs::MultiSink`].

use crate::runtime::{run_with, RunResult, Scheduler, TransducerNetwork};
use calm_common::instance::Instance;
use calm_obs::{ArgValue, Obs, Sink};
use std::fmt;
use std::sync::{Arc, Mutex};

/// One transition's observable effects, reconstructed from the runtime's
/// `runtime/transition` observability event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// 1-based transition index.
    pub index: usize,
    /// The active node (rendered).
    pub node: String,
    /// Number of message occurrences delivered (0 = heartbeat).
    pub delivered: usize,
    /// Message occurrences enqueued to other nodes by this transition.
    pub sent: usize,
    /// Output facts that appeared at this node in this transition
    /// (rendered).
    pub new_output: Vec<String>,
    /// Whether the node's state changed at all.
    pub state_changed: bool,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<4} {}  delivered={} sent={}{}",
            self.index,
            self.node,
            self.delivered,
            self.sent,
            if self.new_output.is_empty() {
                String::new()
            } else {
                format!("  +out: {}", self.new_output.join(" "))
            }
        )
    }
}

/// The event log of a run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Only the events where output appeared.
    pub fn output_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| !e.new_output.is_empty())
    }

    /// Render the full log, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// A [`Sink`] collecting the runtime's per-transition events into a
/// [`Trace`]. Every other observation kind passes through untouched
/// (combine with other sinks via [`calm_obs::MultiSink`] to keep them).
#[derive(Default)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    /// An empty collector.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Drain the collected events into a [`Trace`], assigning 1-based
    /// transition indexes by arrival order.
    pub fn take_trace(&self) -> Trace {
        let mut events = std::mem::take(&mut *self.events.lock().expect("trace events"));
        for (i, e) in events.iter_mut().enumerate() {
            e.index = i + 1;
        }
        Trace { events }
    }
}

impl Sink for TraceSink {
    fn span(&self, _: &str, _: &str, _: u32, _: u64, _: u64) {}

    fn event(&self, cat: &str, name: &str, _track: u32, _ts_us: u64, args: &[(&str, ArgValue)]) {
        if cat != "runtime" || name != "transition" {
            return;
        }
        let mut event = TraceEvent {
            index: 0,
            node: String::new(),
            delivered: 0,
            sent: 0,
            new_output: Vec::new(),
            state_changed: false,
        };
        for (key, value) in args {
            match (*key, value) {
                ("node", ArgValue::Str(s)) => event.node = s.clone(),
                ("delivered", ArgValue::U64(n)) => event.delivered = *n as usize,
                ("sent", ArgValue::U64(n)) => event.sent = *n as usize,
                ("state_changed", ArgValue::Bool(b)) => event.state_changed = *b,
                ("new_output", ArgValue::List(facts)) => event.new_output = facts.clone(),
                _ => {}
            }
        }
        self.events.lock().expect("trace events").push(event);
    }

    fn counter(&self, _: &str, _: &str, _: u64, _: u64) {}
    fn gauge(&self, _: &str, _: &str, _: u32, _: u64, _: u64) {}
    fn histogram(&self, _: &str, _: &str, _: u64) {}
}

/// Run round-robin with full delivery until quiescence (same stopping rule
/// as [`crate::runtime::run`]), recording a [`TraceEvent`] per transition.
pub fn traced_run(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    max_transitions: usize,
) -> (RunResult, Trace) {
    let sink = Arc::new(TraceSink::new());
    let obs = Obs::new(sink.clone());
    let result = run_with(tn, input, &Scheduler::RoundRobin, max_transitions, &obs);
    (result, sink.take_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::HashPolicy;
    use crate::runtime::run;
    use crate::schema::SystemConfig;
    use crate::strategy::{expected_output, MonotoneBroadcast};
    use calm_common::generator::path;
    use calm_queries::tc::tc_datalog;
    use std::collections::BTreeSet;

    #[test]
    fn trace_matches_untraced_run() {
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let input = path(4);
        let expected = expected_output(t.query(), &input);
        let policy = HashPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let (result, trace) = traced_run(&tn, &input, 100_000);
        assert!(result.quiescent);
        assert_eq!(result.output, expected);
        // Event bookkeeping is consistent with the metrics.
        assert_eq!(trace.events.len(), result.metrics.transitions);
        let traced_sent: usize = trace.events.iter().map(|e| e.sent).sum();
        assert_eq!(traced_sent, result.metrics.messages_sent);
        let traced_delivered: usize = trace.events.iter().map(|e| e.delivered).sum();
        assert_eq!(traced_delivered, result.metrics.messages_delivered);
        // Output events reconstruct the final output (rendered form).
        let from_trace: BTreeSet<String> = trace
            .output_events()
            .flat_map(|e| e.new_output.iter().cloned())
            .collect();
        let rendered: BTreeSet<String> = result.output.facts().map(|f| f.to_string()).collect();
        assert_eq!(from_trace, rendered);
        // Rendering produces one line per event, 1-based indexes in order.
        assert_eq!(trace.render().lines().count(), trace.events.len());
        assert!(trace
            .events
            .iter()
            .enumerate()
            .all(|(i, e)| e.index == i + 1));
        // The traced run is the plain run plus observation: identical
        // output and metrics.
        let plain = run(&tn, &input, &Scheduler::RoundRobin, 100_000);
        assert_eq!(plain.output, result.output);
        assert_eq!(plain.metrics, result.metrics);
    }

    #[test]
    fn single_node_trace_is_all_heartbeat_like() {
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let input = path(2);
        let policy = HashPolicy::new(Network::of_size(1));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let (result, trace) = traced_run(&tn, &input, 1000);
        assert!(result.quiescent);
        assert!(trace.events.iter().all(|e| e.delivered == 0 && e.sent == 0));
    }
}
