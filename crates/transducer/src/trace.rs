//! Traced runs: a per-transition event log of a network execution, for
//! debugging transducers and for the examples' narrative output.

use crate::network::NodeId;
use crate::policy::distribute;
use crate::runtime::{
    network_output, transition, Configuration, Delivery, Metrics, RunResult, TransducerNetwork,
};
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use std::collections::BTreeMap;
use std::fmt;

/// One transition's observable effects.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// 1-based transition index.
    pub index: usize,
    /// The active node.
    pub node: NodeId,
    /// Number of message occurrences delivered (0 = heartbeat).
    pub delivered: usize,
    /// Message occurrences enqueued to other nodes by this transition.
    pub sent: usize,
    /// Output facts that appeared at this node in this transition.
    pub new_output: Vec<Fact>,
    /// Whether the node's state changed at all.
    pub state_changed: bool,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<4} {}  delivered={} sent={}{}",
            self.index,
            self.node,
            self.delivered,
            self.sent,
            if self.new_output.is_empty() {
                String::new()
            } else {
                format!(
                    "  +out: {}",
                    self.new_output
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            }
        )
    }
}

/// The event log of a run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Only the events where output appeared.
    pub fn output_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| !e.new_output.is_empty())
    }

    /// Render the full log, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// Run round-robin with full delivery until quiescence (same stopping rule
/// as [`crate::runtime::run`]), recording a [`TraceEvent`] per transition.
pub fn traced_run(
    tn: &TransducerNetwork<'_>,
    input: &Instance,
    max_transitions: usize,
) -> (RunResult, Trace) {
    let dist = distribute(tn.policy, input);
    let mut config = Configuration::start(tn.policy.network());
    let mut metrics = Metrics::default();
    let mut trace = Trace::default();
    let nodes: Vec<NodeId> = tn.policy.network().nodes().cloned().collect();
    let out_schema = tn.transducer.schema().output.clone();
    let mut delivered_sets: BTreeMap<NodeId, std::collections::BTreeSet<Fact>> = nodes
        .iter()
        .map(|n| (n.clone(), std::collections::BTreeSet::new()))
        .collect();

    let mut quiescent = false;
    while metrics.transitions < max_transitions {
        let mut state_changed_any = false;
        for x in &nodes {
            if metrics.transitions >= max_transitions {
                break;
            }
            let before_out = config.state[x].restrict(&out_schema);
            let pending = config.buffer[x].len();
            let sent_before = metrics.messages_sent;
            {
                let set = delivered_sets.get_mut(x).expect("node");
                for f in config.buffer[x].support() {
                    set.insert(f.clone());
                }
            }
            let changed = transition(tn, &dist, &mut config, x, Delivery::All, &mut metrics);
            state_changed_any |= changed;
            let after_out = config.state[x].restrict(&out_schema);
            trace.events.push(TraceEvent {
                index: metrics.transitions,
                node: x.clone(),
                delivered: pending,
                sent: metrics.messages_sent - sent_before,
                new_output: after_out.difference(&before_out).facts().collect(),
                state_changed: changed,
            });
        }
        let all_seen = nodes.iter().all(|x| {
            config.buffer[x]
                .support()
                .all(|f| delivered_sets[x].contains(f))
        });
        if !state_changed_any && all_seen {
            quiescent = true;
            break;
        }
    }
    let result = RunResult {
        output: network_output(tn, &config),
        config,
        metrics,
        quiescent,
    };
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::policy::HashPolicy;
    use crate::schema::SystemConfig;
    use crate::strategy::{expected_output, MonotoneBroadcast};
    use calm_common::generator::path;
    use calm_queries::tc::tc_datalog;

    #[test]
    fn trace_matches_untraced_run() {
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let input = path(4);
        let expected = expected_output(t.query(), &input);
        let policy = HashPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let (result, trace) = traced_run(&tn, &input, 100_000);
        assert!(result.quiescent);
        assert_eq!(result.output, expected);
        // Event bookkeeping is consistent with the metrics.
        assert_eq!(trace.events.len(), result.metrics.transitions);
        let traced_sent: usize = trace.events.iter().map(|e| e.sent).sum();
        assert_eq!(traced_sent, result.metrics.messages_sent);
        // Output events reconstruct the final output.
        let mut from_trace = calm_common::instance::Instance::new();
        for e in trace.output_events() {
            from_trace.extend(e.new_output.iter().cloned());
        }
        assert_eq!(from_trace, result.output);
        // Rendering produces one line per event.
        assert_eq!(trace.render().lines().count(), trace.events.len());
    }

    #[test]
    fn single_node_trace_is_all_heartbeat_like() {
        let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
        let input = path(2);
        let policy = HashPolicy::new(Network::of_size(1));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let (result, trace) = traced_run(&tn, &input, 1000);
        assert!(result.quiescent);
        assert!(trace.events.iter().all(|e| e.delivered == 0 && e.sent == 0));
    }
}
