//! Property tests for the transducer substrate: multiset laws, policy
//! totality and replication invariants, and the safety restriction on
//! system facts (Section 4.1.3: `policy_R` only over known values).

use calm_common::fact::{fact, Fact};
use calm_common::instance::Instance;
use calm_common::schema::Schema;
use calm_common::value::v;
use calm_transducer::system_facts::system_facts;
use calm_transducer::{
    distribute, DistributionPolicy, DomainGuidedPolicy, HashPolicy, Multiset, Network,
    ReplicatedDomainPolicy, SystemConfig,
};
use proptest::prelude::*;

fn edge_instance() -> impl Strategy<Value = Instance> {
    prop::collection::vec((0..6i64, 0..6i64), 0..10)
        .prop_map(|pairs| Instance::from_facts(pairs.into_iter().map(|(a, b)| fact("E", [a, b]))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- Multiset laws ----------

    #[test]
    fn multiset_insert_remove_roundtrip(items in prop::collection::vec(0..5i64, 0..20)) {
        let mut m: Multiset<i64> = items.iter().copied().collect();
        prop_assert_eq!(m.len(), items.len());
        for x in &items {
            prop_assert!(m.remove_one(x));
        }
        prop_assert!(m.is_empty());
    }

    #[test]
    fn multiset_subtract_bounds(a in prop::collection::vec(0..4i64, 0..12),
                                b in prop::collection::vec(0..4i64, 0..12)) {
        let mut m: Multiset<i64> = a.iter().copied().collect();
        let n: Multiset<i64> = b.iter().copied().collect();
        let before = m.len();
        m.subtract(&n);
        prop_assert!(m.len() <= before);
        // Element-wise: count is max(0, a_count - b_count).
        for x in 0..4i64 {
            let expect = a.iter().filter(|&&y| y == x).count()
                .saturating_sub(b.iter().filter(|&&y| y == x).count());
            prop_assert_eq!(m.count(&x), expect);
        }
    }

    // ---------- Policy invariants ----------

    #[test]
    fn distribution_covers_every_fact(i in edge_instance(), n in 1usize..5) {
        let policy = HashPolicy::new(Network::of_size(n));
        let dist = distribute(&policy, &i);
        // Every input fact is somewhere; nothing extra appears.
        let mut union = Instance::new();
        for part in dist.values() {
            union.extend(part.facts());
        }
        prop_assert_eq!(union, i);
    }

    #[test]
    fn domain_guided_owner_holds_all_its_values_facts(i in edge_instance(), n in 1usize..5) {
        let policy = DomainGuidedPolicy::new(Network::of_size(n));
        let dist = distribute(&policy, &i);
        for f in i.facts() {
            for val in f.values() {
                for owner in policy.domain_assignment(val) {
                    prop_assert!(
                        dist[&owner].contains(&f),
                        "owner of {val} must hold {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn replicated_policy_alpha_size(n in 2usize..6, val in 0..100i64) {
        let k = 2usize.min(n);
        let policy = ReplicatedDomainPolicy::new(Network::of_size(n), k);
        prop_assert_eq!(policy.domain_assignment(&v(val)).len(), k);
    }

    // ---------- System facts safety restriction ----------

    #[test]
    fn policy_relations_bounded_by_known_values(i in edge_instance()) {
        // The paper's safety restriction: policy_R tuples range only over
        // A = N ∪ adom(J).
        let net = Network::of_size(2);
        let policy = HashPolicy::new(net.clone());
        let schema = Schema::from_pairs([("E", 2)]);
        let x = net.first().clone();
        let s = system_facts(&x, &net, &schema, &policy, SystemConfig::POLICY_AWARE, &i);
        let mut allowed = i.adom();
        allowed.extend(net.nodes().cloned());
        for t in s.tuples("policy_E") {
            for val in t {
                prop_assert!(allowed.contains(val), "{val} outside A");
            }
        }
        // MyAdom is exactly A.
        let myadom: std::collections::BTreeSet<_> =
            s.tuples("MyAdom").map(|t| t[0].clone()).collect();
        prop_assert_eq!(myadom, allowed);
    }

    #[test]
    fn policy_truthful_about_assignments(i in edge_instance()) {
        // Every policy_R(ā) shown to x really is assigned to x, and every
        // E-tuple over A assigned to x is shown.
        let net = Network::of_size(3);
        let policy = HashPolicy::new(net.clone());
        let schema = Schema::from_pairs([("E", 2)]);
        for x in net.nodes() {
            let s = system_facts(x, &net, &schema, &policy, SystemConfig::POLICY_AWARE, &i);
            for t in s.tuples("policy_E") {
                let f = Fact::new("E", t.clone());
                prop_assert!(policy.assign(&f).contains(x));
            }
        }
    }
}
