//! Property tests for the transducer substrate: multiset laws, policy
//! totality and replication invariants, and the safety restriction on
//! system facts (Section 4.1.3: `policy_R` only over known values).
//!
//! Deterministic seeded loops over [`calm_common::rng::Rng`].

use calm_common::fact::{fact, Fact};
use calm_common::instance::Instance;
use calm_common::rng::Rng;
use calm_common::schema::Schema;
use calm_common::value::v;
use calm_transducer::system_facts::system_facts;
use calm_transducer::{
    distribute, DistributionPolicy, DomainGuidedPolicy, HashPolicy, Multiset, Network,
    ReplicatedDomainPolicy, SystemConfig,
};

const CASES: u64 = 64;

fn edge_instance(r: &mut Rng) -> Instance {
    let mut i = Instance::new();
    for _ in 0..r.gen_range(0..10usize) {
        i.insert(fact("E", [r.gen_range(0..6i64), r.gen_range(0..6i64)]));
    }
    i
}

fn small_vec(r: &mut Rng, max_val: i64, max_len: usize) -> Vec<i64> {
    (0..r.gen_range(0..max_len))
        .map(|_| r.gen_range(0..max_val))
        .collect()
}

// ---------- Multiset laws ----------

#[test]
fn multiset_insert_remove_roundtrip() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let items = small_vec(&mut r, 5, 20);
        let mut m: Multiset<i64> = items.iter().copied().collect();
        assert_eq!(m.len(), items.len(), "seed {seed}");
        for x in &items {
            assert!(m.remove_one(x), "seed {seed}");
        }
        assert!(m.is_empty(), "seed {seed}");
    }
}

#[test]
fn multiset_subtract_bounds() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = small_vec(&mut r, 4, 12);
        let b = small_vec(&mut r, 4, 12);
        let mut m: Multiset<i64> = a.iter().copied().collect();
        let n: Multiset<i64> = b.iter().copied().collect();
        let before = m.len();
        m.subtract(&n);
        assert!(m.len() <= before, "seed {seed}");
        // Element-wise: count is max(0, a_count - b_count).
        for x in 0..4i64 {
            let expect = a
                .iter()
                .filter(|&&y| y == x)
                .count()
                .saturating_sub(b.iter().filter(|&&y| y == x).count());
            assert_eq!(m.count(&x), expect, "seed {seed}");
        }
    }
}

// ---------- Policy invariants ----------

#[test]
fn distribution_covers_every_fact() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let i = edge_instance(&mut r);
        let n = r.gen_range(1..5usize);
        let policy = HashPolicy::new(Network::of_size(n));
        let dist = distribute(&policy, &i);
        // Every input fact is somewhere; nothing extra appears.
        let mut union = Instance::new();
        for part in dist.values() {
            union.extend(part.facts());
        }
        assert_eq!(union, i, "seed {seed}");
    }
}

#[test]
fn domain_guided_owner_holds_all_its_values_facts() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let i = edge_instance(&mut r);
        let n = r.gen_range(1..5usize);
        let policy = DomainGuidedPolicy::new(Network::of_size(n));
        let dist = distribute(&policy, &i);
        for f in i.facts() {
            for val in f.values() {
                for owner in policy.domain_assignment(val) {
                    assert!(
                        dist[&owner].contains(&f),
                        "seed {seed}: owner of {val} must hold {f}"
                    );
                }
            }
        }
    }
}

#[test]
fn replicated_policy_alpha_size() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let n = r.gen_range(2..6usize);
        let val = r.gen_range(0..100i64);
        let k = 2usize.min(n);
        let policy = ReplicatedDomainPolicy::new(Network::of_size(n), k);
        assert_eq!(policy.domain_assignment(&v(val)).len(), k, "seed {seed}");
    }
}

// ---------- System facts safety restriction ----------

#[test]
fn policy_relations_bounded_by_known_values() {
    for seed in 0..CASES {
        let i = edge_instance(&mut Rng::seed_from_u64(seed));
        // The paper's safety restriction: policy_R tuples range only over
        // A = N ∪ adom(J).
        let net = Network::of_size(2);
        let policy = HashPolicy::new(net.clone());
        let schema = Schema::from_pairs([("E", 2)]);
        let x = net.first().clone();
        let s = system_facts(&x, &net, &schema, &policy, SystemConfig::POLICY_AWARE, &i);
        let mut allowed = i.adom();
        allowed.extend(net.nodes().cloned());
        for t in s.tuples("policy_E") {
            for val in t {
                assert!(allowed.contains(val), "seed {seed}: {val} outside A");
            }
        }
        // MyAdom is exactly A.
        let myadom: std::collections::BTreeSet<_> =
            s.tuples("MyAdom").map(|t| t[0].clone()).collect();
        assert_eq!(myadom, allowed, "seed {seed}");
    }
}

#[test]
fn policy_truthful_about_assignments() {
    for seed in 0..CASES {
        let i = edge_instance(&mut Rng::seed_from_u64(seed));
        // Every policy_R(ā) shown to x really is assigned to x, and every
        // E-tuple over A assigned to x is shown.
        let net = Network::of_size(3);
        let policy = HashPolicy::new(net.clone());
        let schema = Schema::from_pairs([("E", 2)]);
        for x in net.nodes() {
            let s = system_facts(x, &net, &schema, &policy, SystemConfig::POLICY_AWARE, &i);
            for t in s.tuples("policy_E") {
                let f = Fact::new("E", t.clone());
                assert!(policy.assign(&f).contains(x), "seed {seed}");
            }
        }
    }
}
