//! Transducer-level differential sweep for incremental maintenance:
//! every strategy family, run repeatedly from ONE transducer instance
//! while the input shrinks and grows through random [`UpdateBatch`]es,
//! must produce the same quiescent output as a freshly-built transducer
//! on the same input.
//!
//! The reused transducer is the interesting half: its per-node
//! `StepContext` scratch [`Database`] persists across transitions *and*
//! across runs, so every delivery over a shrunk instance exercises the
//! `sync_with_instance` diff-reload path (the `Instance::remove` /
//! scratch-database mismatch regression at the network level, not just
//! the single-step level).
//!
//! [`UpdateBatch`]: calm_common::update::UpdateBatch
//! [`Database`]: calm_datalog::eval::Database

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::rng::Rng;
use calm_common::update::UpdateBatch;
use calm_datalog::DatalogQuery;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    run, DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy, HashPolicy,
    MonotoneBroadcast, Network, RunResult, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};

const SEEDS: u64 = 5;
const ROUNDS: usize = 3;

fn random_edges(rng: &mut Rng, domain: i64, edges: usize) -> Instance {
    Instance::from_facts((0..edges).map(|_| {
        fact(
            "E",
            [
                rng.gen_range(0..domain as u64) as i64,
                rng.gen_range(0..domain as u64) as i64,
            ],
        )
    }))
}

/// A random signed batch over the `E` input relation; deletions are
/// drawn from the current input so they actually remove something.
fn rand_batch(rng: &mut Rng, current: &Instance, domain: i64) -> UpdateBatch {
    let mut b = UpdateBatch::new();
    let present: Vec<_> = current.facts().collect();
    for _ in 0..rng.gen_range(0..3usize) {
        if !present.is_empty() {
            b.delete
                .push(present[rng.gen_range(0..present.len() as u64) as usize].clone());
        }
    }
    for _ in 0..rng.gen_range(1..3usize) {
        b.insert.push(fact(
            "E",
            [
                rng.gen_range(0..domain as u64) as i64,
                rng.gen_range(0..domain as u64) as i64,
            ],
        ));
    }
    b
}

/// Same family builder as `parallel_eval.rs` (integration tests cannot
/// import each other).
fn family(
    name: &str,
) -> (
    Box<dyn Transducer>,
    Box<dyn DistributionPolicy>,
    SystemConfig,
) {
    let q = |q: DatalogQuery| Box::new(q);
    match name {
        "monotone" => (
            Box::new(MonotoneBroadcast::new(q(tc_datalog()))),
            Box::new(HashPolicy::new(Network::of_size(4))),
            SystemConfig::ORIGINAL,
        ),
        "distinct" => (
            Box::new(DistinctStrategy::new(q(edges_without_source_loop()))),
            Box::new(HashPolicy::new(Network::of_size(3))),
            SystemConfig::POLICY_AWARE,
        ),
        "disjoint" => (
            Box::new(DisjointStrategy::new(q(qtc_datalog()))),
            Box::new(DomainGuidedPolicy::new(Network::of_size(3))),
            SystemConfig::POLICY_AWARE,
        ),
        other => panic!("unknown family {other}"),
    }
}

fn run_once(
    t: &dyn Transducer,
    policy: &dyn DistributionPolicy,
    config: SystemConfig,
    input: &Instance,
) -> RunResult {
    let tn = TransducerNetwork {
        transducer: t,
        policy,
        config,
    };
    run(&tn, input, &Scheduler::RoundRobin, 500_000)
}

#[test]
fn reused_transducers_survive_updates_between_runs() {
    for name in ["monotone", "distinct", "disjoint"] {
        for seed in 0..SEEDS {
            let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0xc0ffee) ^ 0x0b5e55ed);
            // The request/OK/ack protocol is per-value: keep domains small.
            let mut input = random_edges(&mut rng, 4, 3);
            let (reused, policy, config) = family(name);
            for round in 0..ROUNDS {
                let got = run_once(reused.as_ref(), policy.as_ref(), config, &input);
                let (fresh, fpolicy, fconfig) = family(name);
                let want = run_once(fresh.as_ref(), fpolicy.as_ref(), fconfig, &input);
                assert!(
                    got.quiescent && want.quiescent,
                    "{name} seed {seed} round {round}: both runs must quiesce"
                );
                assert_eq!(
                    got.output, want.output,
                    "{name} seed {seed} round {round}: reused transducer diverged from fresh"
                );
                // Evolve the input for the next round: some deliveries in
                // that run will hand the reused transducer instances that
                // no longer contain rows its scratch database still holds.
                rand_batch(&mut rng, &input, 4).apply_to_instance(&mut input);
            }
        }
    }
}
