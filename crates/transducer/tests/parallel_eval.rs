//! Intra-node data-parallel evaluation through the transducer runtime:
//! every strategy family, run on the sequential simulator with its
//! node-local fixpoints partitioned over `eval_threads` workers, must
//! produce a byte-identical [`RunResult`] — same output instance AND the
//! same [`Metrics`] down to the engine-level `eval` counters — as the
//! single-threaded run, at any thread count.
//!
//! This is the layer between the engine-level differential suite
//! (calm-datalog's proptests) and the end-to-end chaos check (calm-net /
//! calm-cli): it pins that the determinism guarantee survives the
//! transducer transition loop, where the same query is re-evaluated on
//! every delivery.
//!
//! [`RunResult`]: calm_transducer::RunResult
//! [`Metrics`]: calm_transducer::Metrics

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::rng::Rng;
use calm_datalog::DatalogQuery;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    run, DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy, HashPolicy,
    MonotoneBroadcast, Network, RunResult, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};

const THREADS: [usize; 2] = [2, 8];

fn random_edges(seed: u64, domain: i64, edges: usize) -> Instance {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    Instance::from_facts((0..edges).map(|_| {
        fact(
            "E",
            [
                rng.gen_range(0..domain as u64) as i64,
                rng.gen_range(0..domain as u64) as i64,
            ],
        )
    }))
}

/// Build each family's transducer around a query configured for
/// `eval_threads` data-parallel workers.
fn family(
    name: &str,
    eval_threads: usize,
) -> (
    Box<dyn Transducer>,
    Box<dyn DistributionPolicy>,
    SystemConfig,
) {
    let q = |q: DatalogQuery| Box::new(q.with_eval_threads(eval_threads));
    match name {
        "monotone" => (
            Box::new(MonotoneBroadcast::new(q(tc_datalog()))),
            Box::new(HashPolicy::new(Network::of_size(4))),
            SystemConfig::ORIGINAL,
        ),
        "distinct" => (
            Box::new(DistinctStrategy::new(q(edges_without_source_loop()))),
            Box::new(HashPolicy::new(Network::of_size(3))),
            SystemConfig::POLICY_AWARE,
        ),
        "disjoint" => (
            Box::new(DisjointStrategy::new(q(qtc_datalog()))),
            Box::new(DomainGuidedPolicy::new(Network::of_size(3))),
            SystemConfig::POLICY_AWARE,
        ),
        other => panic!("unknown family {other}"),
    }
}

fn run_family(name: &str, eval_threads: usize, input: &Instance) -> RunResult {
    let (t, policy, config) = family(name, eval_threads);
    let tn = TransducerNetwork {
        transducer: t.as_ref(),
        policy: policy.as_ref(),
        config,
    };
    run(&tn, input, &Scheduler::RoundRobin, 500_000)
}

fn assert_identical(a: &RunResult, b: &RunResult, tag: &str) {
    assert!(a.quiescent && b.quiescent, "{tag}: both runs must quiesce");
    assert_eq!(a.output, b.output, "{tag}: output diverged");
    // Metrics covers transitions, message flow, per-class counts and
    // the engine-level eval counters in one comparison.
    assert_eq!(a.metrics, b.metrics, "{tag}: run metrics diverged");
}

#[test]
fn strategies_are_byte_identical_across_eval_thread_counts() {
    for name in ["monotone", "distinct", "disjoint"] {
        for i in 0..6u64 {
            // The request/OK/ack protocol is per-value: keep domains small.
            let input = random_edges(400 + i, 4, 2 + (i as usize % 3));
            let seq = run_family(name, 1, &input);
            assert!(
                seq.metrics.transitions > 0,
                "{name} seed {i}: the run must exercise the network"
            );
            for threads in THREADS {
                let par = run_family(name, threads, &input);
                assert_identical(&seq, &par, &format!("{name} seed {i} T={threads}"));
            }
        }
    }
}

#[test]
fn random_schedules_stay_identical_too() {
    // Data-parallel fixpoints inside an adversarially-scheduled run:
    // the schedule (not the evaluation) is the only nondeterminism, so
    // pinning the scheduler seed must pin the whole RunResult.
    let input = random_edges(77, 5, 5);
    for seed in 0..4u64 {
        let sched = Scheduler::random(seed, 64);
        let (t1, p1, c1) = family("monotone", 1);
        let seq = run(
            &TransducerNetwork {
                transducer: t1.as_ref(),
                policy: p1.as_ref(),
                config: c1,
            },
            &input,
            &sched,
            500_000,
        );
        let (t8, p8, c8) = family("monotone", 8);
        let par = run(
            &TransducerNetwork {
                transducer: t8.as_ref(),
                policy: p8.as_ref(),
                config: c8,
            },
            &input,
            &sched,
            500_000,
        );
        assert_identical(&seq, &par, &format!("random schedule seed {seed}"));
    }
}
