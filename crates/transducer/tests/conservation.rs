//! Conservation invariants of the runtime's metrics: every message
//! occurrence ever enqueued is either delivered or still buffered, the
//! per-class breakdown always sums to `messages_sent`, and the per-node
//! high-water marks dominate every observed queue depth.

use calm_common::generator::path;
use calm_common::Instance;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    distribute, run, transition, Configuration, Delivery, DisjointStrategy, DistinctStrategy,
    DistributionPolicy, DomainGuidedPolicy, HashPolicy, Metrics, MonotoneBroadcast, Network,
    RunResult, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};

fn check_conservation(r: &RunResult, label: &str) {
    let m = &r.metrics;
    assert_eq!(
        m.messages_sent,
        m.messages_delivered + r.config.buffered(),
        "{label}: sent = delivered + buffered must hold at quiescence"
    );
    assert_eq!(
        m.by_class.total(),
        m.messages_sent,
        "{label}: per-class counts must sum to messages_sent"
    );
    // High-water marks dominate the final depths.
    for (node, buf) in &r.config.buffer {
        let hw = m.buffered_high_water.get(node).copied().unwrap_or(0);
        assert!(
            hw >= buf.len(),
            "{label}: high-water {hw} < final depth {} at {node}",
            buf.len()
        );
    }
}

fn run_both_schedulers(
    t: &dyn Transducer,
    policy: &dyn DistributionPolicy,
    config: SystemConfig,
    input: &Instance,
    label: &str,
) -> RunResult {
    let tn = TransducerNetwork {
        transducer: t,
        policy,
        config,
    };
    let rr = run(&tn, input, &Scheduler::RoundRobin, 500_000);
    assert!(rr.quiescent, "{label}: round-robin run must quiesce");
    check_conservation(&rr, label);
    let rand = run(&tn, input, &Scheduler::random(23, 40), 500_000);
    assert!(rand.quiescent, "{label}: random run must quiesce");
    check_conservation(&rand, label);
    rr
}

#[test]
fn monotone_broadcast_sends_only_fact_broadcasts() {
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(3));
    let rr = run_both_schedulers(&t, &policy, SystemConfig::ORIGINAL, &path(5), "M");
    let by_class = rr.metrics.by_class;
    assert!(by_class.fact > 0, "M broadcasts input facts");
    assert_eq!(by_class.absence, 0, "M never sends absences");
    assert_eq!(by_class.coordination(), 0, "M is protocol-free");
    assert_eq!(by_class.other, 0);
    assert!(rr.metrics.max_queue_depth() > 0, "messages were buffered");
}

#[test]
fn distinct_strategy_adds_absence_broadcasts() {
    let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    let policy = HashPolicy::new(Network::of_size(3));
    let rr = run_both_schedulers(
        &t,
        &policy,
        SystemConfig::POLICY_AWARE,
        &path(4),
        "Mdistinct",
    );
    let by_class = rr.metrics.by_class;
    assert!(by_class.fact > 0, "Mdistinct broadcasts facts");
    assert!(by_class.absence > 0, "Mdistinct broadcasts non-facts");
    assert_eq!(by_class.coordination(), 0, "no per-value protocol");
}

#[test]
fn disjoint_strategy_pays_the_request_ok_protocol() {
    let t = DisjointStrategy::new(Box::new(qtc_datalog()));
    let policy = DomainGuidedPolicy::new(Network::of_size(3));
    let rr = run_both_schedulers(
        &t,
        &policy,
        SystemConfig::POLICY_AWARE,
        &path(3),
        "Mdisjoint",
    );
    let by_class = rr.metrics.by_class;
    assert!(by_class.value > 0, "Mdisjoint broadcasts the active domain");
    assert!(by_class.request > 0, "Mdisjoint sends per-value requests");
    assert!(by_class.ok > 0, "Mdisjoint sends per-value OKs");
    assert!(by_class.coordination() > 0);
    assert_eq!(by_class.absence, 0, "no absence broadcasting");
}

#[test]
fn conservation_holds_after_every_single_transition() {
    // Step a network by hand and check the invariant mid-run, not just at
    // quiescence: an enqueued occurrence is either consumed by a delivery
    // or still sitting in some buffer.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let net = Network::of_size(3);
    let policy = HashPolicy::new(net.clone());
    let tn = TransducerNetwork {
        transducer: &t,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    let input = path(4);
    let dist = distribute(&policy, &input);
    let mut config = Configuration::start(&net);
    let mut metrics = Metrics::default();
    let nodes: Vec<_> = net.nodes().cloned().collect();
    for step in 0..30 {
        let x = &nodes[step % nodes.len()];
        let delivery = match step % 3 {
            0 => Delivery::All,
            1 => Delivery::None,
            _ => Delivery::sample(step as u64),
        };
        transition(&tn, &dist, &mut config, x, delivery, &mut metrics);
        assert_eq!(
            metrics.messages_sent,
            metrics.messages_delivered + config.buffered(),
            "conservation violated after transition {step}"
        );
        assert_eq!(metrics.by_class.total(), metrics.messages_sent);
        for (node, buf) in &config.buffer {
            let hw = metrics.buffered_high_water.get(node).copied().unwrap_or(0);
            assert!(hw >= buf.len(), "high-water behind live depth at {node}");
        }
    }
}

#[test]
fn single_node_network_has_empty_class_counts() {
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(1));
    let rr = run_both_schedulers(&t, &policy, SystemConfig::ORIGINAL, &path(3), "M/1");
    assert_eq!(rr.metrics.messages_sent, 0);
    assert_eq!(rr.metrics.by_class.total(), 0);
    assert_eq!(rr.metrics.max_queue_depth(), 0);
}
