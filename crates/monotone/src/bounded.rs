//! The bounded classes `Mᵢ`, `Mᵢdistinct`, `Mᵢdisjoint` (Theorem 3.1).
//!
//! Utilities around the paper's structural facts:
//!
//! * `M = Mᵢ` for every `i` (Theorem 3.1(2)) — because an arbitrary
//!   addition decomposes into single-fact additions. The decomposition
//!   argument is *constructive*; [`incremental_decomposition_holds`]
//!   replays it on concrete instances.
//! * For domain-distinct/disjoint additions, the decomposition **fails**:
//!   adding facts one at a time can break admissibility midway (a fact
//!   that is fresh w.r.t. `I` may share values with earlier additions),
//!   which is exactly why the bounded hierarchies are strict.

use crate::classes::{check_pair, ExtensionKind, Violation};
use calm_common::domain::{fact_domain_disjoint, fact_domain_distinct};
use calm_common::instance::Instance;
use calm_common::query::Query;

/// Replay Theorem 3.1(2)'s argument on a concrete `(I, J)`: add the facts
/// of `J` one at a time and verify the output never shrinks at any step
/// (which implies `Q(I) ⊆ Q(I ∪ J)` by transitivity). Returns the first
/// violating step, if any.
pub fn incremental_decomposition_holds(
    q: &dyn Query,
    base: &Instance,
    extension: &Instance,
) -> Result<(), Violation> {
    let mut current = base.clone();
    for f in extension.facts() {
        let step = Instance::from_facts([f]);
        if let Some(violation) = check_pair(q, &current, &step) {
            return Err(violation);
        }
        current.extend(step.facts());
    }
    Ok(())
}

/// Whether the single-fact decomposition of `J` over `I` stays admissible
/// for the given kind at every step: each fact of `J` must be
/// distinct/disjoint from `I` *plus the previously added facts*.
///
/// For `ExtensionKind::Any` this is always `true` — the structural reason
/// `M = Mᵢ`. For the weaker kinds it can be `false`, the structural
/// reason the bounded hierarchies of Theorem 3.1(3,4) are strict.
pub fn decomposition_stays_admissible(
    kind: ExtensionKind,
    base: &Instance,
    extension: &Instance,
) -> bool {
    let mut current = base.clone();
    for f in extension.facts() {
        let adom = current.adom();
        let ok = match kind {
            ExtensionKind::Any => true,
            ExtensionKind::DomainDistinct => fact_domain_distinct(&f, &adom),
            ExtensionKind::DomainDisjoint => fact_domain_disjoint(&f, &adom),
        };
        if !ok {
            return false;
        }
        current.insert(f);
    }
    true
}

/// Locate a query's position on the bounded ladder: the least bound `i`
/// (up to `max_bound`) at which the `Mᵢ` condition for `kind` is
/// violated, i.e. the query is in `M^{i-1}` (empirically) but not `Mᵢ`.
/// Returns `None` when no violation is found up to `max_bound` —
/// consistent with membership in the unbounded class.
///
/// This is Theorem 3.1(3,4)'s measurement: `Q^{i+2}_clique` breaks at
/// bound `i+1` on the distinct ladder and `Q^{i+1}_star` at bound `i+1`
/// on the disjoint ladder.
pub fn ladder_break_point(
    q: &dyn Query,
    kind: ExtensionKind,
    max_bound: usize,
    trials: usize,
    seed: u64,
    mut base_gen: impl FnMut(&mut calm_common::rng::Rng) -> Instance,
) -> Option<usize> {
    for bound in 1..=max_bound {
        let hit = crate::classes::Falsifier::new(kind)
            .with_bound(bound)
            .with_trials(trials)
            .with_seed(seed ^ bound as u64)
            .falsify(q, &mut base_gen);
        if hit.is_some() {
            return Some(bound);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::generator::{edge, star_from};

    #[test]
    fn any_kind_always_decomposes() {
        let base = Instance::from_facts([edge(0, 1)]);
        let ext = Instance::from_facts([edge(0, 2), edge(2, 3), edge(0, 0)]);
        assert!(decomposition_stays_admissible(
            ExtensionKind::Any,
            &base,
            &ext
        ));
    }

    #[test]
    fn disjoint_star_does_not_decompose() {
        // The paper's Theorem 3.1(4) core: a fresh 2-spoke star is domain
        // disjoint as a whole, but after adding its first edge, the second
        // edge shares the centre — single-fact steps are inadmissible.
        let base = Instance::from_facts([edge(0, 1)]);
        let star = star_from(100, 2);
        assert!(calm_common::is_domain_disjoint(&star, &base));
        assert!(!decomposition_stays_admissible(
            ExtensionKind::DomainDisjoint,
            &base,
            &star
        ));
    }

    #[test]
    fn distinct_clique_star_does_not_decompose() {
        // Theorem 3.1(3) core: the fresh-centre star into old clique
        // vertices is domain-distinct as a whole, but its later edges use
        // the centre introduced by the first edge.
        let base = calm_common::generator::clique_from(0, 3);
        let j = Instance::from_facts([edge(10, 0), edge(10, 1), edge(10, 2)]);
        assert!(calm_common::is_domain_distinct(&j, &base));
        assert!(!decomposition_stays_admissible(
            ExtensionKind::DomainDistinct,
            &base,
            &j
        ));
    }

    #[test]
    fn ladder_break_point_locates_star_query() {
        // Q^2_star ∈ M¹_disjoint \ M²_disjoint: break point 2.
        use calm_common::query::FnQuery;
        use calm_common::schema::Schema;
        let q = FnQuery::new(
            "q2star",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("E", 2)]),
            |i: &Instance| {
                // has_star(2): some vertex with >= 2 distinct out-neighbours.
                let mut outdeg: std::collections::BTreeMap<_, std::collections::BTreeSet<_>> =
                    Default::default();
                for t in i.tuples("E") {
                    if t[0] != t[1] {
                        outdeg.entry(t[0].clone()).or_default().insert(t[1].clone());
                    }
                }
                if outdeg.values().any(|s| s.len() >= 2) {
                    Instance::new()
                } else {
                    i.clone()
                }
            },
        );
        let breakpoint = ladder_break_point(&q, ExtensionKind::DomainDisjoint, 3, 2000, 77, |_| {
            Instance::from_facts([edge(1, 2)])
        });
        assert_eq!(breakpoint, Some(2));
    }

    #[test]
    fn monotone_query_has_no_break_point() {
        use calm_common::query::FnQuery;
        use calm_common::schema::Schema;
        let q = FnQuery::new(
            "copy",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                )
            },
        );
        let breakpoint = ladder_break_point(&q, ExtensionKind::DomainDisjoint, 3, 100, 78, |_| {
            Instance::from_facts([edge(1, 2)])
        });
        assert_eq!(breakpoint, None);
    }

    #[test]
    fn monotone_query_passes_incremental_replay() {
        use calm_common::query::FnQuery;
        use calm_common::schema::Schema;
        let q = FnQuery::new(
            "copy",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                )
            },
        );
        let base = Instance::from_facts([edge(0, 1)]);
        let ext = Instance::from_facts([edge(1, 2), edge(2, 0)]);
        assert!(incremental_decomposition_holds(&q, &base, &ext).is_ok());
    }

    #[test]
    fn non_monotone_query_fails_replay_at_some_step() {
        use calm_common::query::FnQuery;
        use calm_common::schema::Schema;
        let q = FnQuery::new(
            "no-loops",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                if i.tuples("E").any(|t| t[0] == t[1]) {
                    Instance::new()
                } else {
                    Instance::from_facts(
                        i.tuples("E")
                            .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                    )
                }
            },
        );
        let base = Instance::from_facts([edge(0, 1)]);
        let ext = Instance::from_facts([edge(2, 2)]);
        assert!(incremental_decomposition_holds(&q, &base, &ext).is_err());
    }
}
