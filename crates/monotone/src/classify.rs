//! One-call classification of a query against the Figure-1 hierarchy.

use crate::classes::{ExtensionKind, Falsifier, Violation};
use crate::exhaustive::Exhaustive;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::rng::Rng;

/// The verdict for one class: either a concrete counterexample (definitive
/// non-membership) or "no violation found" (membership up to the search
/// bounds; membership is undecidable in general, Section 7).
#[derive(Debug, Clone)]
pub enum Verdict {
    /// No violating pair found by exhaustive + randomized search.
    ConsistentWithMembership,
    /// A violating pair — the query is definitively outside the class.
    NotMember(Violation),
}

impl Verdict {
    /// Whether no violation was found.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Verdict::ConsistentWithMembership)
    }
}

/// The three-row classification of a query.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// `M` (plain monotonicity).
    pub monotone: Verdict,
    /// `Mdistinct`.
    pub domain_distinct: Verdict,
    /// `Mdisjoint`.
    pub domain_disjoint: Verdict,
}

impl ClassReport {
    /// The paper's class name for the lowest class the query is
    /// consistent with (`"M"`, `"Mdistinct"`, `"Mdisjoint"`, or `"C"`).
    pub fn lowest_class(&self) -> &'static str {
        if self.monotone.is_consistent() {
            "M"
        } else if self.domain_distinct.is_consistent() {
            "Mdistinct"
        } else if self.domain_disjoint.is_consistent() {
            "Mdisjoint"
        } else {
            "C"
        }
    }
}

/// Classify a query against `M`, `Mdistinct` and `Mdisjoint` using the
/// default exhaustive bounds plus `trials` randomized trials with the
/// given base-instance generator.
pub fn classify_query(
    q: &dyn Query,
    trials: usize,
    seed: u64,
    mut base_gen: impl FnMut(&mut Rng) -> Instance + Clone,
) -> ClassReport {
    let mut verdict = |kind: ExtensionKind, salt: u64| -> Verdict {
        if let Some(v) = Exhaustive::new(kind).certify(q) {
            return Verdict::NotMember(v);
        }
        match Falsifier::new(kind)
            .with_trials(trials)
            .with_seed(seed ^ salt)
            .falsify(q, &mut base_gen)
        {
            Some(v) => Verdict::NotMember(v),
            None => Verdict::ConsistentWithMembership,
        }
    };
    ClassReport {
        monotone: verdict(ExtensionKind::Any, 0x1),
        domain_distinct: verdict(ExtensionKind::DomainDistinct, 0x2),
        domain_disjoint: verdict(ExtensionKind::DomainDisjoint, 0x3),
    }
}

/// Classify with a default random-graph base generator over the query's
/// input schema.
pub fn classify_query_default(q: &dyn Query, trials: usize, seed: u64) -> ClassReport {
    let schema = q.input_schema().clone();
    classify_query(q, trials, seed, move |rng: &mut Rng| {
        let mut r = calm_common::generator::InstanceRng::seeded(rng.gen_u64());
        r.random_instance(&schema, 4, 5)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::query::FnQuery;
    use calm_common::schema::Schema;

    fn copy_query() -> impl Query {
        FnQuery::new(
            "copy",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                )
            },
        )
    }

    fn no_loop_sources() -> impl Query {
        FnQuery::new(
            "no-loop-sources",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .filter(|t| !i.contains_tuple("E", &[t[0].clone(), t[0].clone()]))
                        .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                )
            },
        )
    }

    #[test]
    fn monotone_query_lands_in_m() {
        let report = classify_query_default(&copy_query(), 60, 1);
        assert_eq!(report.lowest_class(), "M");
        assert!(report.domain_disjoint.is_consistent());
    }

    #[test]
    fn sp_query_lands_in_mdistinct() {
        let report = classify_query_default(&no_loop_sources(), 60, 2);
        assert_eq!(report.lowest_class(), "Mdistinct");
        assert!(!report.monotone.is_consistent());
        if let Verdict::NotMember(v) = &report.monotone {
            assert!(!v.lost.is_empty());
        }
    }

    #[test]
    fn anti_monotone_query_lands_in_c() {
        let q = FnQuery::new(
            "is-empty",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 1)]),
            |i: &Instance| {
                if i.relation_len("E") == 0 {
                    Instance::from_facts([fact("O", [0])])
                } else {
                    Instance::new()
                }
            },
        );
        let report = classify_query_default(&q, 60, 3);
        assert_eq!(report.lowest_class(), "C");
    }
}
