//! # calm-monotone
//!
//! Empirical checkers for the monotonicity hierarchy of Section 3 —
//! `M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C` with the bounded variants `Mᵢ*` —
//! plus the preservation classes `H`, `Hinj`, `E` of Lemma 3.2 and the
//! component-distribution property of Definition 5 / Lemma 5.2.
//!
//! Since membership is undecidable (Section 7), the crate offers
//! randomized **falsifiers** (a hit is a definitive non-membership
//! certificate) and **exhaustive small-domain certification** (every pair
//! `(I, J)` up to configurable sizes).

#![warn(missing_docs)]

pub mod bounded;
pub mod classes;
pub mod classify;
pub mod components;
pub mod exhaustive;
pub mod preservation;

pub use bounded::{
    decomposition_stays_admissible, incremental_decomposition_holds, ladder_break_point,
};
pub use classes::{check_pair, sample_extension, ExtensionKind, Falsifier, Violation};
pub use classify::{classify_query, classify_query_default, ClassReport, Verdict};
pub use components::{check_distributes_over_components, falsify_component_distribution};
pub use exhaustive::Exhaustive;
pub use preservation::{
    check_extension_preservation, check_homomorphism_preservation, falsify_extension_preservation,
    falsify_homomorphism_preservation,
};
