//! Monotonicity classes and their empirical checkers (Section 3.1).
//!
//! Membership in `M`, `Mdistinct`, `Mdisjoint` (and the bounded variants)
//! is undecidable in general (Section 7), so the library provides the two
//! things the paper's proofs actually use:
//!
//! * **falsifiers** — randomized searches for a violating pair `(I, J)`;
//!   a hit *certifies non-membership* with an explicit witness;
//! * **exhaustive small-domain certification** — for bounded domains and
//!   instance sizes, verify the monotonicity condition on *every* pair,
//!   which is how the experiments validate the positive claims of
//!   Theorem 3.1 at small scale.

use calm_common::domain::{is_domain_disjoint, is_domain_distinct};
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::rng::Rng;
use calm_common::schema::Schema;
use calm_common::value::{v, Value};
use std::fmt;

/// Which monotonicity condition to test: the shape of the allowed
/// extension instances `J`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtensionKind {
    /// Arbitrary `J` — plain monotonicity (`M`).
    Any,
    /// `J` domain distinct from `I` (`Mdistinct`).
    DomainDistinct,
    /// `J` domain disjoint from `I` (`Mdisjoint`).
    DomainDisjoint,
}

impl ExtensionKind {
    /// Whether `j` is an admissible extension of `i` for this kind.
    pub fn admits(self, j: &Instance, i: &Instance) -> bool {
        match self {
            ExtensionKind::Any => true,
            ExtensionKind::DomainDistinct => is_domain_distinct(j, i),
            ExtensionKind::DomainDisjoint => is_domain_disjoint(j, i),
        }
    }

    /// Paper notation for the induced class.
    pub fn class_name(self, bound: Option<usize>) -> String {
        let base = match self {
            ExtensionKind::Any => "M",
            ExtensionKind::DomainDistinct => "Mdistinct",
            ExtensionKind::DomainDisjoint => "Mdisjoint",
        };
        match bound {
            Some(i) => format!("{base}^{i}"),
            None => base.to_string(),
        }
    }
}

/// A witnessed violation of a monotonicity condition:
/// `Q(base) ⊄ Q(base ∪ extension)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The base instance `I`.
    pub base: Instance,
    /// The admissible extension `J`.
    pub extension: Instance,
    /// The output facts of `Q(I)` missing from `Q(I ∪ J)`.
    pub lost: Instance,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "I = {:?}, J = {:?}, lost output: {:?}",
            self.base, self.extension, self.lost
        )
    }
}

/// Check one pair: does `Q(I) ⊆ Q(I ∪ J)` hold?
pub fn check_pair(q: &dyn Query, base: &Instance, extension: &Instance) -> Option<Violation> {
    let before = q.eval(base);
    let after = q.eval(&base.union(extension));
    let lost = before.difference(&after);
    if lost.is_empty() {
        None
    } else {
        Some(Violation {
            base: base.clone(),
            extension: extension.clone(),
            lost,
        })
    }
}

/// Configuration for the randomized falsifier.
///
/// ```
/// use calm_monotone::{ExtensionKind, Falsifier};
/// use calm_common::{fact, FnQuery, Instance, Schema};
///
/// // "Output V(0) iff there are no edges" — maximally anti-monotone.
/// let q = FnQuery::new(
///     "is-empty",
///     Schema::from_pairs([("E", 2)]),
///     Schema::from_pairs([("O", 1)]),
///     |i: &Instance| if i.relation_len("E") == 0 {
///         Instance::from_facts([fact("O", [0])])
///     } else {
///         Instance::new()
///     },
/// );
/// let violation = Falsifier::new(ExtensionKind::DomainDisjoint)
///     .with_trials(50)
///     .falsify(&q, |_| Instance::new())
///     .expect("a violating (I, J) pair exists");
/// assert!(!violation.lost.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Falsifier {
    /// Extension shape (which class is being tested).
    pub kind: ExtensionKind,
    /// Optional bound `i` on `|J|` (the `Mᵢ` classes). `None` = unbounded.
    pub bound: Option<usize>,
    /// Number of `(I, J)` pairs to try.
    pub trials: usize,
    /// RNG seed (experiments record this for reproducibility).
    pub seed: u64,
    /// Maximum number of facts in a generated extension when unbounded.
    pub max_extension_facts: usize,
}

impl Falsifier {
    /// A falsifier for the given class with sensible defaults.
    pub fn new(kind: ExtensionKind) -> Self {
        Falsifier {
            kind,
            bound: None,
            trials: 200,
            seed: 0xCA1A,
            max_extension_facts: 4,
        }
    }

    /// Set the bound `i` (test `Mᵢ` instead of the unbounded class).
    #[must_use]
    pub fn with_bound(mut self, i: usize) -> Self {
        self.bound = Some(i);
        self
    }

    /// Set the number of trials.
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Search for a violation, generating base instances with `base_gen`
    /// and extensions with the built-in schema-driven sampler. Returns the
    /// first violation found (a certificate of non-membership), or `None`
    /// after all trials.
    pub fn falsify(
        &self,
        q: &dyn Query,
        mut base_gen: impl FnMut(&mut Rng) -> Instance,
    ) -> Option<Violation> {
        let mut rng = Rng::seed_from_u64(self.seed);
        for _ in 0..self.trials {
            let base = base_gen(&mut rng);
            let size = match self.bound {
                Some(b) => rng.gen_range(0..=b),
                None => rng.gen_range(0..=self.max_extension_facts),
            };
            let ext = sample_extension(q.input_schema(), &base, self.kind, size, &mut rng);
            debug_assert!(self.kind.admits(&ext, &base));
            if let Some(violation) = check_pair(q, &base, &ext) {
                return Some(violation);
            }
        }
        None
    }
}

/// Sample an admissible extension of `base` with `size` facts over
/// `schema`, respecting `kind`.
pub fn sample_extension(
    schema: &Schema,
    base: &Instance,
    kind: ExtensionKind,
    size: usize,
    rng: &mut Rng,
) -> Instance {
    let old_values: Vec<Value> = base.adom().into_iter().collect();
    let fresh_base: i64 = old_values
        .iter()
        .filter_map(|val| match val {
            Value::Int(k) => Some(*k + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0)
        .max(1000);
    let relations: Vec<(String, usize)> = schema.iter().map(|(n, a)| (n.to_string(), a)).collect();
    if relations.is_empty() {
        return Instance::new();
    }
    let mut out = Instance::new();
    // A small pool of fresh values, shared across the extension's facts so
    // that the extension can form structures (stars, triangles) among its
    // new values — essential for finding the paper's witnesses.
    let pool: Vec<Value> = (0..(size.max(1) as i64 + 2))
        .map(|k| v(fresh_base + k))
        .collect();
    for _ in 0..size {
        let (rel_name, arity) = &relations[rng.gen_range(0..relations.len())];
        let mut args: Vec<Value> = Vec::with_capacity(*arity);
        match kind {
            ExtensionKind::DomainDisjoint => {
                for _ in 0..*arity {
                    args.push(pool[rng.gen_range(0..pool.len())].clone());
                }
            }
            ExtensionKind::DomainDistinct => {
                // At least one fresh value; the rest free to reuse old
                // values.
                let fresh_at = rng.gen_range(0..*arity);
                for idx in 0..*arity {
                    if idx == fresh_at || old_values.is_empty() || rng.gen_bool(0.4) {
                        args.push(pool[rng.gen_range(0..pool.len())].clone());
                    } else {
                        args.push(old_values[rng.gen_range(0..old_values.len())].clone());
                    }
                }
            }
            ExtensionKind::Any => {
                for _ in 0..*arity {
                    if old_values.is_empty() || rng.gen_bool(0.5) {
                        args.push(pool[rng.gen_range(0..pool.len())].clone());
                    } else {
                        args.push(old_values[rng.gen_range(0..old_values.len())].clone());
                    }
                }
            }
        }
        out.insert(calm_common::fact::Fact::new(rel_name, args));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::generator::InstanceRng;
    use calm_queries_test_helpers::*;

    // Local helper queries so this crate does not depend on calm-queries
    // (which would be a cycle of convenience, not necessity).
    mod calm_queries_test_helpers {
        use calm_common::fact::fact;
        use calm_common::instance::Instance;
        use calm_common::query::FnQuery;
        use calm_common::schema::Schema;

        /// Identity on E — monotone.
        pub fn copy_query() -> FnQuery<impl Fn(&Instance) -> Instance + Send + Sync> {
            FnQuery::new(
                "copy",
                Schema::from_pairs([("E", 2)]),
                Schema::from_pairs([("O", 2)]),
                |i: &Instance| {
                    Instance::from_facts(
                        i.tuples("E")
                            .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                    )
                },
            )
        }

        /// "No edges at all" — anti-monotone: output V(0) iff E empty.
        pub fn empty_graph_query() -> FnQuery<impl Fn(&Instance) -> Instance + Send + Sync> {
            FnQuery::new(
                "empty-graph",
                Schema::from_pairs([("E", 2)]),
                Schema::from_pairs([("O", 1)]),
                |i: &Instance| {
                    if i.relation_len("E") == 0 {
                        Instance::from_facts([fact("O", [0])])
                    } else {
                        Instance::new()
                    }
                },
            )
        }
    }

    #[test]
    fn check_pair_detects_loss() {
        let q = empty_graph_query();
        let base = Instance::new();
        let ext = Instance::from_facts([calm_common::fact::fact("E", [1, 2])]);
        let violation = check_pair(&q, &base, &ext).expect("output lost");
        assert_eq!(violation.lost.len(), 1);
    }

    #[test]
    fn monotone_query_never_falsified() {
        let q = copy_query();
        let found = Falsifier::new(ExtensionKind::Any)
            .with_trials(100)
            .falsify(&q, |rng| InstanceRng::seeded(rng.gen_u64()).gnp(5, 0.3));
        assert!(found.is_none());
    }

    #[test]
    fn anti_monotone_query_falsified_in_every_class() {
        let q = empty_graph_query();
        for kind in [
            ExtensionKind::Any,
            ExtensionKind::DomainDistinct,
            ExtensionKind::DomainDisjoint,
        ] {
            let found = Falsifier::new(kind)
                .with_trials(100)
                .falsify(&q, |_| Instance::new());
            assert!(found.is_some(), "kind {kind:?} should find a violation");
        }
    }

    #[test]
    fn sampled_extensions_are_admissible() {
        let schema = Schema::from_pairs([("E", 2)]);
        let base = InstanceRng::seeded(7).gnp(5, 0.4);
        let mut rng = Rng::seed_from_u64(1);
        for kind in [
            ExtensionKind::Any,
            ExtensionKind::DomainDistinct,
            ExtensionKind::DomainDisjoint,
        ] {
            for size in 0..5 {
                let ext = sample_extension(&schema, &base, kind, size, &mut rng);
                assert!(kind.admits(&ext, &base));
                assert!(ext.len() <= size);
            }
        }
    }

    #[test]
    fn bound_limits_extension_size() {
        let q = copy_query();
        let f = Falsifier::new(ExtensionKind::DomainDisjoint).with_bound(2);
        // Can't observe sizes directly; just ensure it runs and respects
        // admissibility (debug_assert inside falsify).
        assert!(f.falsify(&q, |_| Instance::new()).is_none());
    }

    #[test]
    fn class_names_match_paper() {
        assert_eq!(ExtensionKind::Any.class_name(None), "M");
        assert_eq!(
            ExtensionKind::DomainDistinct.class_name(Some(3)),
            "Mdistinct^3"
        );
        assert_eq!(ExtensionKind::DomainDisjoint.class_name(None), "Mdisjoint");
    }
}
