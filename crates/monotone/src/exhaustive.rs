//! Exhaustive small-domain certification of monotonicity conditions.
//!
//! For a bounded domain and bounded instance sizes, enumerate **every**
//! pair `(I, J)` with `J` admissible for the class under test and verify
//! `Q(I) ⊆ Q(I ∪ J)`. Together with genericity of queries, passing an
//! exhaustive check over all shapes up to a size is strong evidence for
//! class membership; failing one is a definitive counterexample.

use crate::classes::{check_pair, ExtensionKind, Violation};
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;
use calm_common::value::v;

/// Configuration of the exhaustive search.
#[derive(Debug, Clone)]
pub struct Exhaustive {
    /// The class under test.
    pub kind: ExtensionKind,
    /// Bound on `|J|` (`Mᵢ` when `Some(i)`); `None` = up to
    /// `max_extension_facts`.
    pub bound: Option<usize>,
    /// Base-instance domain: values `0..base_domain`.
    pub base_domain: i64,
    /// Maximum number of facts in the base instance.
    pub max_base_facts: usize,
    /// Number of fresh values available to extensions.
    pub fresh_values: i64,
    /// Maximum number of facts in an extension (when `bound` is `None`).
    pub max_extension_facts: usize,
}

impl Exhaustive {
    /// Defaults suitable for the binary-edge schema: domain {0,1,2}, up to
    /// 3 base facts, 2 fresh values, up to 2 extension facts.
    pub fn new(kind: ExtensionKind) -> Self {
        Exhaustive {
            kind,
            bound: None,
            base_domain: 3,
            max_base_facts: 3,
            fresh_values: 2,
            max_extension_facts: 2,
        }
    }

    /// Set the extension bound `i`.
    #[must_use]
    pub fn with_bound(mut self, i: usize) -> Self {
        self.bound = Some(i);
        self
    }

    /// Run the exhaustive check. Returns the first violation, or `None`
    /// when every admissible pair satisfies the condition.
    pub fn certify(&self, q: &dyn Query) -> Option<Violation> {
        let schema = q.input_schema();
        let base_facts = all_facts(schema, 0, self.base_domain);
        let ext_limit = self.bound.unwrap_or(self.max_extension_facts);
        // Extension facts may use base-domain values AND fresh values —
        // admissibility is filtered per base instance below.
        let ext_facts = all_facts(schema, 0, self.base_domain + self.fresh_values);

        for base_subset in subsets_up_to(&base_facts, self.max_base_facts) {
            let base = Instance::from_facts(base_subset.iter().map(|f| (*f).clone()));
            for ext_subset in subsets_up_to(&ext_facts, ext_limit) {
                let ext = Instance::from_facts(ext_subset.iter().map(|f| (*f).clone()));
                if !self.kind.admits(&ext, &base) {
                    continue;
                }
                if let Some(violation) = check_pair(q, &base, &ext) {
                    return Some(violation);
                }
            }
        }
        None
    }
}

/// All facts over `schema` with integer values in `lo..hi`.
pub fn all_facts(schema: &Schema, lo: i64, hi: i64) -> Vec<Fact> {
    let mut out = Vec::new();
    for (name, arity) in schema.iter() {
        let mut tuple = vec![lo; arity];
        loop {
            out.push(Fact::new(
                name.as_ref(),
                tuple.iter().map(|&k| v(k)).collect(),
            ));
            // Odometer increment.
            let mut pos = 0;
            loop {
                if pos == arity {
                    break;
                }
                tuple[pos] += 1;
                if tuple[pos] < hi {
                    break;
                }
                tuple[pos] = lo;
                pos += 1;
            }
            if pos == arity {
                break;
            }
        }
    }
    out
}

/// All subsets of `facts` of size at most `k` (as index lists expanded to
/// fact slices), smallest first.
fn subsets_up_to(facts: &[Fact], k: usize) -> impl Iterator<Item = Vec<&Fact>> {
    // Iterative enumeration by size to keep memory flat.
    (0..=k.min(facts.len())).flat_map(move |size| Combinations::new(facts, size))
}

struct Combinations<'a> {
    facts: &'a [Fact],
    indices: Vec<usize>,
    done: bool,
}

impl<'a> Combinations<'a> {
    fn new(facts: &'a [Fact], size: usize) -> Self {
        let done = size > facts.len();
        Combinations {
            facts,
            indices: (0..size).collect(),
            done,
        }
    }
}

impl<'a> Iterator for Combinations<'a> {
    type Item = Vec<&'a Fact>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let result: Vec<&Fact> = self.indices.iter().map(|&i| &self.facts[i]).collect();
        // Advance to the next combination.
        let n = self.facts.len();
        let k = self.indices.len();
        if k == 0 {
            self.done = true;
            return Some(result);
        }
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.indices[i] < n - (k - i) {
                self.indices[i] += 1;
                for j in i + 1..k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                break;
            }
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::query::FnQuery;

    fn copy_query() -> impl Query {
        FnQuery::new(
            "copy",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                )
            },
        )
    }

    fn no_loop_sources() -> impl Query {
        // O(x,y) :- E(x,y), not E(x,x): in Mdistinct, not in M.
        FnQuery::new(
            "no-loop-sources",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .filter(|t| !i.contains_tuple("E", &[t[0].clone(), t[0].clone()]))
                        .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                )
            },
        )
    }

    #[test]
    fn all_facts_counts() {
        let s = Schema::from_pairs([("E", 2)]);
        assert_eq!(all_facts(&s, 0, 3).len(), 9);
        let s2 = Schema::from_pairs([("E", 2), ("V", 1)]);
        assert_eq!(all_facts(&s2, 0, 2).len(), 4 + 2);
    }

    #[test]
    fn combinations_enumerate_all() {
        let s = Schema::from_pairs([("V", 1)]);
        let facts = all_facts(&s, 0, 4); // V(0..3)
        let subsets: Vec<_> = subsets_up_to(&facts, 2).collect();
        // C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6 = 11.
        assert_eq!(subsets.len(), 11);
    }

    #[test]
    fn monotone_query_certified() {
        let q = copy_query();
        for kind in [
            ExtensionKind::Any,
            ExtensionKind::DomainDistinct,
            ExtensionKind::DomainDisjoint,
        ] {
            assert!(Exhaustive::new(kind).certify(&q).is_none());
        }
    }

    #[test]
    fn sp_style_query_certified_distinct_but_not_any() {
        let q = no_loop_sources();
        // Not monotone: adding the loop E(x,x) (an *old-values* fact)
        // retracts O(x,y).
        let m_violation = Exhaustive::new(ExtensionKind::Any).certify(&q);
        assert!(m_violation.is_some());
        // Domain-distinct monotone: every added fact carries a fresh value,
        // so E(x,x) over old x is never admissible.
        assert!(Exhaustive::new(ExtensionKind::DomainDistinct)
            .certify(&q)
            .is_none());
        assert!(Exhaustive::new(ExtensionKind::DomainDisjoint)
            .certify(&q)
            .is_none());
    }

    #[test]
    fn bound_restricts_search() {
        let q = copy_query();
        let e = Exhaustive::new(ExtensionKind::DomainDisjoint).with_bound(1);
        assert!(e.certify(&q).is_none());
    }
}
