//! Distribution over components (Definition 5, Lemma 5.2).
//!
//! A query `Q` *distributes over components* when for every instance `I`:
//! `Q(I) = ⋃_{C ∈ co(I)} Q(C)` and the outputs of distinct components
//! have disjoint active domains. Lemma 5.2: every `con-Datalog¬` query
//! distributes over components; the checker here validates that claim
//! empirically (experiment E13).

use calm_common::component::components;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::rng::Rng;

/// A witnessed failure of component distribution.
#[derive(Debug, Clone)]
pub struct ComponentViolation {
    /// The instance on which distribution fails.
    pub instance: Instance,
    /// `Q(I)`.
    pub whole: Instance,
    /// `⋃ Q(C)` over components.
    pub pieced: Instance,
    /// Human-readable reason.
    pub reason: String,
}

/// Check Definition 5 on one instance.
pub fn check_distributes_over_components(
    q: &dyn Query,
    i: &Instance,
) -> Option<ComponentViolation> {
    let whole = q.eval(i);
    let comps = components(i);
    let mut pieced = Instance::new();
    let mut outputs = Vec::with_capacity(comps.len());
    for c in &comps {
        let out = q.eval(c);
        pieced.extend(out.facts());
        outputs.push(out);
    }
    if whole != pieced {
        return Some(ComponentViolation {
            instance: i.clone(),
            whole,
            pieced,
            reason: "Q(I) != union of Q(C) over components".to_string(),
        });
    }
    for (a_idx, a) in outputs.iter().enumerate() {
        let adom_a = a.adom();
        for b in outputs.iter().skip(a_idx + 1) {
            if b.adom().iter().any(|val| adom_a.contains(val)) {
                return Some(ComponentViolation {
                    instance: i.clone(),
                    whole: a.clone(),
                    pieced: b.clone(),
                    reason: "outputs of distinct components share values".to_string(),
                });
            }
        }
    }
    None
}

/// Randomized search for a component-distribution violation.
pub fn falsify_component_distribution(
    q: &dyn Query,
    mut gen: impl FnMut(&mut Rng) -> Instance,
    trials: usize,
    seed: u64,
) -> Option<ComponentViolation> {
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..trials {
        let i = gen(&mut rng);
        if let Some(violation) = check_distributes_over_components(q, &i) {
            return Some(violation);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::generator::{disjoint_triangles, path_from};
    use calm_common::query::FnQuery;
    use calm_common::schema::Schema;

    fn tc_like() -> impl Query {
        // Connected query: copies edges — trivially distributes.
        FnQuery::new(
            "copy",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                )
            },
        )
    }

    fn count_cross() -> impl Query {
        // Pairs vertices across the whole instance — does NOT distribute.
        FnQuery::new(
            "all-pairs",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                let adom: Vec<_> = i.adom().into_iter().collect();
                let mut out = Instance::new();
                for a in &adom {
                    for b in &adom {
                        out.insert(fact("O", [a.clone(), b.clone()]));
                    }
                }
                out
            },
        )
    }

    #[test]
    fn connected_style_query_distributes() {
        let q = tc_like();
        let multi = path_from(0, 3).union(&disjoint_triangles(100, 2));
        assert!(check_distributes_over_components(&q, &multi).is_none());
    }

    #[test]
    fn cross_component_query_fails() {
        let q = count_cross();
        let multi = path_from(0, 1).union(&path_from(100, 1));
        let violation = check_distributes_over_components(&q, &multi).unwrap();
        assert!(violation.reason.contains("union"));
    }

    #[test]
    fn falsifier_finds_cross_component_violations() {
        let q = count_cross();
        let hit = falsify_component_distribution(
            &q,
            |rng| {
                let a = path_from(0, rng.gen_range(1..3usize));
                let b = path_from(100, rng.gen_range(1..3usize));
                a.union(&b)
            },
            50,
            7,
        );
        assert!(hit.is_some());
    }

    #[test]
    fn single_component_instances_trivially_pass() {
        let q = count_cross();
        assert!(check_distributes_over_components(&q, &path_from(0, 4)).is_none());
    }
}
