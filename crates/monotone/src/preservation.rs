//! Preservation classes `H`, `Hinj`, `E` (Section 3.2, Lemma 3.2):
//! `H ⊊ Hinj = M ⊊ E = Mdistinct`.

use calm_common::domain::is_induced_subinstance;
use calm_common::homomorphism::{apply, ValueMap};
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::rng::Rng;
use calm_common::value::{v, Value};
use std::collections::BTreeSet;

/// A witnessed preservation failure.
#[derive(Debug, Clone)]
pub struct PreservationViolation {
    /// Source instance `I`.
    pub source: Instance,
    /// Target instance `J`.
    pub target: Instance,
    /// The (injective) homomorphism used.
    pub map: ValueMap,
    /// Output facts whose image is missing from `Q(J)`.
    pub lost: Instance,
}

/// Check preservation under one specific homomorphism `h : I → J`
/// (`h(Q(I)) ⊆ Q(J)`), assuming `h` maps `I` into `J`.
pub fn check_homomorphism_preservation(
    q: &dyn Query,
    i: &Instance,
    j: &Instance,
    h: &ValueMap,
) -> Option<PreservationViolation> {
    debug_assert!(apply(h, i).is_subset(j), "h must be a homomorphism");
    let image = apply(h, &q.eval(i));
    let out_j = q.eval(j);
    let lost = image.difference(&out_j);
    if lost.is_empty() {
        None
    } else {
        Some(PreservationViolation {
            source: i.clone(),
            target: j.clone(),
            map: h.clone(),
            lost,
        })
    }
}

/// Check preservation under extensions for one induced subinstance:
/// `Q(J) ⊆ Q(I)` where `J` is an induced subinstance of `I`.
pub fn check_extension_preservation(
    q: &dyn Query,
    j: &Instance,
    i: &Instance,
) -> Option<PreservationViolation> {
    debug_assert!(is_induced_subinstance(j, i));
    let out_j = q.eval(j);
    let out_i = q.eval(i);
    let lost = out_j.difference(&out_i);
    if lost.is_empty() {
        None
    } else {
        Some(PreservationViolation {
            source: j.clone(),
            target: i.clone(),
            map: ValueMap::new(),
            lost,
        })
    }
}

/// Randomized falsifier for `H` (preservation under homomorphisms):
/// generates `I`, a random value map `h`, sets `J = h(I)` plus optional
/// extra facts, and checks. A hit certifies `Q ∉ H`.
pub fn falsify_homomorphism_preservation(
    q: &dyn Query,
    mut base_gen: impl FnMut(&mut Rng) -> Instance,
    injective: bool,
    trials: usize,
    seed: u64,
) -> Option<PreservationViolation> {
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..trials {
        let i = base_gen(&mut rng);
        let adom: Vec<Value> = i.adom().into_iter().collect();
        if adom.is_empty() {
            continue;
        }
        let h = if injective {
            // A random injective renaming into a shifted range.
            let offset = rng.gen_range(100..200i64);
            adom.iter()
                .enumerate()
                .map(|(idx, val)| (val.clone(), v(offset + idx as i64)))
                .collect::<ValueMap>()
        } else {
            // A random (possibly collapsing) map into a small target set.
            let targets: Vec<Value> = (0..rng.gen_range(1..=adom.len() as i64))
                .map(|k| v(500 + k))
                .collect();
            adom.iter()
                .map(|val| {
                    (
                        val.clone(),
                        targets[rng.gen_range(0..targets.len())].clone(),
                    )
                })
                .collect::<ValueMap>()
        };
        let mut j = apply(&h, &i);
        // Occasionally enlarge the target with fresh junk (preservation
        // must hold into any superset of the image).
        if rng.gen_bool(0.5) {
            j.extend(
                crate::classes::sample_extension(
                    q.input_schema(),
                    &j,
                    crate::classes::ExtensionKind::Any,
                    rng.gen_range(0..3usize),
                    &mut rng,
                )
                .facts(),
            );
        }
        if let Some(violation) = check_homomorphism_preservation(q, &i, &j, &h) {
            return Some(violation);
        }
    }
    None
}

/// Randomized falsifier for `E` (preservation under extensions): generate
/// `I`, carve out a random induced subinstance `J`, check
/// `Q(J) ⊆ Q(I)`.
pub fn falsify_extension_preservation(
    q: &dyn Query,
    mut base_gen: impl FnMut(&mut Rng) -> Instance,
    trials: usize,
    seed: u64,
) -> Option<PreservationViolation> {
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..trials {
        let i = base_gen(&mut rng);
        let j = random_induced_subinstance(&i, &mut rng);
        if let Some(violation) = check_extension_preservation(q, &j, &i) {
            return Some(violation);
        }
    }
    None
}

/// A random induced subinstance: pick a random subset of `adom(I)` and
/// keep exactly the facts over it.
pub fn random_induced_subinstance(i: &Instance, rng: &mut Rng) -> Instance {
    let adom: Vec<Value> = i.adom().into_iter().collect();
    let keep: BTreeSet<Value> = adom.into_iter().filter(|_| rng.gen_bool(0.6)).collect();
    Instance::from_facts(
        i.facts()
            .filter(|f| f.values().all(|val| keep.contains(val))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::generator::InstanceRng;
    use calm_common::query::FnQuery;
    use calm_common::schema::Schema;

    fn edges_neq() -> impl Query {
        // O(x,y) :- E(x,y), x != y — in M (= Hinj) but NOT in H.
        FnQuery::new(
            "edges-neq",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .filter(|t| t[0] != t[1])
                        .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                )
            },
        )
    }

    fn copy_query() -> impl Query {
        FnQuery::new(
            "copy",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                Instance::from_facts(
                    i.tuples("E")
                        .map(|t| fact("O", [t[0].clone(), t[1].clone()])),
                )
            },
        )
    }

    #[test]
    fn neq_query_breaks_h_but_not_hinj() {
        // Collapsing x and y kills O(x,y): not preserved under general
        // homomorphisms...
        let q = edges_neq();
        let hit = falsify_homomorphism_preservation(
            &q,
            |rng| InstanceRng::seeded(rng.gen_u64()).gnp(4, 0.5),
            false,
            200,
            1,
        );
        assert!(hit.is_some(), "Q ∉ H (Lemma 3.2 separation)");
        // ...but injective homomorphisms preserve it.
        let inj = falsify_homomorphism_preservation(
            &q,
            |rng| InstanceRng::seeded(rng.gen_u64()).gnp(4, 0.5),
            true,
            200,
            2,
        );
        assert!(inj.is_none(), "Q ∈ Hinj");
    }

    #[test]
    fn copy_query_preserved_everywhere() {
        let q = copy_query();
        assert!(falsify_homomorphism_preservation(
            &q,
            |rng| InstanceRng::seeded(rng.gen_u64()).gnp(4, 0.4),
            false,
            100,
            3,
        )
        .is_none());
        assert!(falsify_extension_preservation(
            &q,
            |rng| InstanceRng::seeded(rng.gen_u64()).gnp(4, 0.4),
            100,
            4,
        )
        .is_none());
    }

    #[test]
    fn random_induced_subinstance_is_induced() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..20 {
            let i = InstanceRng::seeded(rng.gen_u64()).gnp(5, 0.5);
            let j = random_induced_subinstance(&i, &mut rng);
            assert!(is_induced_subinstance(&j, &i));
        }
    }

    #[test]
    fn extension_preservation_violation_detected() {
        // "Graph is empty" query: Q(∅) nonempty but Q(I) empty.
        let q = FnQuery::new(
            "is-empty",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 1)]),
            |i: &Instance| {
                if i.relation_len("E") == 0 {
                    Instance::from_facts([fact("O", [0])])
                } else {
                    Instance::new()
                }
            },
        );
        let hit = falsify_extension_preservation(
            &q,
            |rng| InstanceRng::seeded(rng.gen_u64()).gnp(3, 0.8),
            100,
            5,
        );
        assert!(hit.is_some());
    }
}
