//! A text syntax for Datalog¬ programs.
//!
//! ```text
//! % transitive closure, then its complement
//! T(x, y) :- E(x, y).
//! T(x, z) :- T(x, y), E(y, z).
//! O(x, y) :- Adom(x), Adom(y), not T(x, y), x != y.
//! ```
//!
//! Lexical conventions:
//! * atoms are `Name(t1, ..., tk)`; the relation name is any identifier;
//! * inside argument lists, bare identifiers are **variables**, numbers are
//!   integer constants, `"quoted"` strings are string constants, and `*` is
//!   the ILOG¬ invention symbol;
//! * negation is written `not A` or `!A`; inequalities `t != u`;
//! * the rule arrow is `:-` or `<-`; rules end with `.`;
//! * `%` and `//` start line comments.
//!
//! An optional header `@output R1, R2.` designates output relations
//! (default: `O` if present, else all idb relations).

use crate::ast::{Atom, Rule, Term};
use crate::program::{Program, ProgramError};
use calm_common::value::Value;
use std::fmt;

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors from [`parse_program`]: either a syntax error or a program
/// well-formedness violation.
#[derive(Debug)]
pub enum ParseProgramError {
    /// Syntax error.
    Parse(ParseError),
    /// Well-formedness violation (unsafe variable, arity conflict, ...).
    Program(ProgramError),
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseProgramError::Parse(e) => write!(f, "{e}"),
            ParseProgramError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseProgramError {}

impl From<ParseError> for ParseProgramError {
    fn from(e: ParseError) -> Self {
        ParseProgramError::Parse(e)
    }
}

impl From<ProgramError> for ParseProgramError {
    fn from(e: ProgramError) -> Self {
        ParseProgramError::Program(e)
    }
}

/// Parse a Datalog¬ program (invention symbol rejected).
pub fn parse_program(src: &str) -> Result<Program, ParseProgramError> {
    let (rules, outputs) = parse_rules(src)?;
    let p = match outputs {
        Some(outs) => Program::with_outputs(rules, outs)?,
        None => Program::new(rules)?,
    };
    Ok(p)
}

/// Parse an ILOG¬ program (invention symbol `*` allowed in heads).
pub fn parse_ilog_program(src: &str) -> Result<Program, ParseProgramError> {
    let (rules, outputs) = parse_rules(src)?;
    let p = Program::new_ilog(rules)?;
    if let Some(outs) = outputs {
        // Rebuild with explicit outputs while keeping ILOG validation.
        let rules = p.rules().to_vec();
        let p = Program::new_ilog(rules)?;
        // Program::new_ilog does not take outputs; emulate by filtering.
        // We re-validate output names here.
        let idb = p.idb();
        for o in &outs {
            if !idb.contains(o) {
                return Err(ProgramError::OutputNotIdb(o.clone()).into());
            }
        }
        return Ok(crate::program::Program::replace_outputs(p, outs));
    }
    Ok(p)
}

/// Parse a set of ground facts (`E(1,2). V("a"). ...`) into an instance.
/// Variables are not allowed — every term must be a constant.
pub fn parse_facts(src: &str) -> Result<calm_common::instance::Instance, ParseError> {
    let mut p = Parser::new(src);
    let mut out = calm_common::instance::Instance::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            return Ok(out);
        }
        let atom = p.atom()?;
        p.skip_ws();
        p.expect('.')?;
        let mut args = Vec::with_capacity(atom.arity());
        for t in &atom.terms {
            match t {
                Term::Const(c) => args.push(c.clone()),
                // In fact files, bare identifiers are string constants
                // (`E(alice, bob).`), not variables.
                Term::Var(v) => args.push(Value::str(v.name())),
                Term::Invention => {
                    return Err(p.err("facts must be ground; found the invention symbol"))
                }
            }
        }
        if args.is_empty() {
            return Err(p.err("nullary facts are not supported"));
        }
        out.insert(calm_common::fact::Fact::new(atom.relation.as_ref(), args));
    }
}

/// Parse a sequence of signed update batches for incremental
/// maintenance (`calm eval --updates`).
///
/// Line syntax:
/// * `+ E(1,2).` — insert the fact into the batch;
/// * `- E(2,3).` — delete it;
/// * a line of three or more dashes (`---`) closes the current batch;
/// * `%` / `//` comments and blank lines are skipped.
///
/// Facts follow [`parse_facts`] conventions (ground, bare identifiers
/// are string constants). A trailing unterminated batch is kept; empty
/// batches produced by consecutive separators are preserved (they are
/// legal no-op updates). Errors carry the 1-based line number.
pub fn parse_updates(src: &str) -> Result<Vec<calm_common::update::UpdateBatch>, String> {
    use calm_common::update::UpdateBatch;
    let mut batches = Vec::new();
    let mut cur = UpdateBatch::new();
    for (i, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with("//") {
            continue;
        }
        if line.len() >= 3 && line.chars().all(|c| c == '-') {
            batches.push(std::mem::take(&mut cur));
            continue;
        }
        let (sign, rest) = match line.split_at(1) {
            ("+", rest) => (true, rest),
            ("-", rest) => (false, rest),
            _ => {
                return Err(format!(
                    "line {}: expected `+ Fact.`, `- Fact.` or `---`, got: {line}",
                    i + 1
                ))
            }
        };
        let facts = parse_facts(rest.trim()).map_err(|e| format!("line {}: {e}", i + 1))?;
        for f in facts.facts() {
            if sign {
                cur.insert.push(f);
            } else {
                cur.delete.push(f);
            }
        }
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    Ok(batches)
}

/// Parse a single rule (must end with `.`).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src);
    let r = p.rule()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after rule"));
    }
    Ok(r)
}

fn parse_rules(src: &str) -> Result<(Vec<Rule>, Option<Vec<String>>), ParseError> {
    let mut p = Parser::new(src);
    let mut rules = Vec::new();
    let mut outputs: Option<Vec<String>> = None;
    loop {
        p.skip_ws();
        if p.at_end() {
            break;
        }
        if p.eat_str("@output") {
            let mut outs = Vec::new();
            loop {
                p.skip_ws();
                outs.push(p.ident()?);
                p.skip_ws();
                if p.eat(',') {
                    continue;
                }
                p.expect('.')?;
                break;
            }
            outputs = Some(outs);
            continue;
        }
        rules.push(p.rule()?);
    }
    Ok((rules, outputs))
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            let before = self.pos;
            while self.peek().is_some_and(char::is_whitespace) {
                self.bump();
            }
            if self.rest().starts_with('%') || self.rest().starts_with("//") {
                while self.peek().is_some_and(|c| c != '\n') {
                    self.bump();
                }
            }
            if self.pos == before {
                break;
            }
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return Err(self.err("expected identifier")),
        }
        while self
            .peek()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '\'')
        {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Term::Invention)
            }
            Some('"') => {
                self.bump();
                let start = self.pos;
                while self.peek().is_some_and(|c| c != '"') {
                    self.bump();
                }
                let s = self.src[start..self.pos].to_string();
                self.expect('"')?;
                Ok(Term::Const(Value::str(s)))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                self.bump();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
                let text = &self.src[start..self.pos];
                let n: i64 = text
                    .parse()
                    .map_err(|_| self.err(format!("invalid integer '{text}'")))?;
                Ok(Term::Const(Value::Int(n)))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let name = self.ident()?;
                Ok(Term::var(name))
            }
            _ => Err(self.err("expected a term")),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        self.skip_ws();
        let name = self.ident()?;
        self.skip_ws();
        self.expect('(')?;
        let mut terms = Vec::new();
        loop {
            terms.push(self.term()?);
            self.skip_ws();
            if self.eat(',') {
                continue;
            }
            self.expect(')')?;
            break;
        }
        Ok(Atom::new(name, terms))
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        self.skip_ws();
        let head = self.atom()?;
        self.skip_ws();
        if !(self.eat_str(":-") || self.eat_str("<-")) {
            return Err(self.err("expected ':-' or '<-'"));
        }
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut ineq = Vec::new();
        loop {
            self.skip_ws();
            if self.eat_str("not ") || self.eat_str("not\t") {
                neg.push(self.atom()?);
            } else if self.peek() == Some('!') && !self.rest().starts_with("!=") {
                self.bump();
                neg.push(self.atom()?);
            } else {
                // Could be an atom or an inequality `t != u`.
                let save = self.pos;
                // Try: term != term
                if let Ok(left) = self.term() {
                    self.skip_ws();
                    if self.eat_str("!=") {
                        let right = self.term()?;
                        ineq.push((left, right));
                    } else {
                        // Not an inequality: rewind and parse an atom.
                        self.pos = save;
                        pos.push(self.atom()?);
                    }
                } else {
                    self.pos = save;
                    pos.push(self.atom()?);
                }
            }
            self.skip_ws();
            if self.eat(',') {
                continue;
            }
            self.expect('.')?;
            break;
        }
        Ok(Rule {
            head,
            pos,
            neg,
            ineq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    #[test]
    fn parses_transitive_closure() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        assert_eq!(p.rules().len(), 2);
        assert!(p.is_positive());
        assert_eq!(p.idb().arity("T"), Some(2));
        assert_eq!(p.edb().arity("E"), Some(2));
    }

    #[test]
    fn parses_negation_and_inequality() {
        let p = parse_program(
            "O(x,y) :- Adom(x), Adom(y), not T(x,y), x != y.\n\
             T(x,y) :- E(x,y).\n\
             Adom(x) :- E(x,y).\n\
             Adom(y) :- E(x,y).",
        )
        .unwrap();
        let rule = &p.rules()[0];
        assert_eq!(rule.neg.len(), 1);
        assert_eq!(rule.ineq.len(), 1);
        assert_eq!(rule.pos.len(), 2);
    }

    #[test]
    fn bang_negation() {
        let p = parse_program("O(x) :- V(x), !W(x).").unwrap();
        assert_eq!(p.rules()[0].neg.len(), 1);
    }

    #[test]
    fn comments_and_whitespace() {
        let p = parse_program(
            "% a comment\n\
             // another\n\
             T(x , y) :- E(x,y) . % trailing\n",
        )
        .unwrap();
        assert_eq!(p.rules().len(), 1);
    }

    #[test]
    fn constants_parse() {
        let r = parse_rule("O(x) :- R(x, 3, \"abc\", -7).").unwrap();
        let terms = &r.pos[0].terms;
        assert_eq!(terms[1], Term::cst(3));
        assert_eq!(terms[2], Term::cst("abc"));
        assert_eq!(terms[3], Term::cst(-7));
    }

    #[test]
    fn output_directive() {
        let p = parse_program(
            "@output T.\n\
             T(x,y) :- E(x,y).\n\
             S(x) :- E(x,x).",
        )
        .unwrap();
        assert_eq!(p.outputs().len(), 1);
        assert!(p.outputs().iter().any(|o| o.as_ref() == "T"));
    }

    #[test]
    fn invention_symbol_rejected_in_plain_datalog() {
        let err = parse_program("R(*, x) :- E(x, x).");
        assert!(err.is_err());
        // But accepted by the ILOG entry point.
        let ok = parse_ilog_program("R(*, x) :- E(x, x).");
        assert!(ok.is_ok());
    }

    #[test]
    fn arrow_variants() {
        let a = parse_rule("T(x) :- V(x).").unwrap();
        let b = parse_rule("T(x) <- V(x).").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_positions() {
        let e = parse_program("T(x) :- V(x)").unwrap_err();
        match e {
            ParseProgramError::Parse(pe) => assert!(pe.message.contains("'.'")),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unsafe_rule_reported_as_program_error() {
        let e = parse_program("T(x, y) :- V(x).").unwrap_err();
        assert!(matches!(e, ParseProgramError::Program(_)));
    }

    #[test]
    fn round_trip_display_reparse() {
        let src = "O(x,y) :- E(x,y), not T(y,x), x != y.";
        let r1 = parse_rule(src).unwrap();
        let r2 = parse_rule(&r1.to_string()).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn parse_facts_ground_instances() {
        let i = parse_facts("E(1, 2). E(2, 3).\n% comment\nV(\"x\"). Person(alice).").unwrap();
        assert_eq!(i.len(), 4);
        assert!(i.contains(&calm_common::fact::fact("E", [1, 2])));
        assert!(i.contains_tuple("V", &[calm_common::value::Value::str("x")]));
        assert!(i.contains_tuple("Person", &[calm_common::value::Value::str("alice")]));
    }

    #[test]
    fn parse_facts_rejects_invention_and_rules() {
        assert!(parse_facts("R(*, 1).").is_err());
        assert!(parse_facts("T(x) :- V(x).").is_err());
    }

    #[test]
    fn parse_facts_empty_input() {
        assert!(parse_facts("  % nothing\n").unwrap().is_empty());
    }

    #[test]
    fn ineq_between_var_and_constant() {
        let r = parse_rule("O(x) :- V(x), x != 3.").unwrap();
        assert_eq!(r.ineq.len(), 1);
        assert_eq!(r.ineq[0].1, Term::cst(3));
    }

    #[test]
    fn parse_updates_batches_and_signs() {
        let src = "% batch one\n+ E(1,2).\n- E(2,3).\n---\n+ V(alice).\n";
        let batches = parse_updates(src).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(
            batches[0].insert,
            vec![calm_common::fact::fact("E", [1, 2])]
        );
        assert_eq!(
            batches[0].delete,
            vec![calm_common::fact::fact("E", [2, 3])]
        );
        assert_eq!(batches[1].delete, vec![]);
        assert!(batches[1].insert[0]
            .args()
            .contains(&calm_common::value::Value::str("alice")));
        // Consecutive separators keep the empty no-op batch.
        assert_eq!(parse_updates("---\n---\n").unwrap().len(), 2);
        assert!(parse_updates("").unwrap().is_empty());
        // Unsigned lines are rejected with a line number.
        let err = parse_updates("+ E(1,2).\nE(3,4).").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
