//! Datalog¬ programs: rule sets with derived schemas and validation.

use crate::ast::{Atom, Rule, Term, Var};
use calm_common::fact::RelName;
use calm_common::schema::Schema;
use std::collections::BTreeSet;
use std::fmt;

/// A Datalog¬ program `P`: a set of rules plus a designated set of output
/// relations (the paper's convention marks some idb relations, typically
/// `O`, as the intended output).
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    rules: Vec<Rule>,
    outputs: BTreeSet<RelName>,
}

/// Validation errors for programs (the well-formedness conditions of
/// Section 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A rule has an empty positive body (`pos_ϕ` must be non-empty).
    EmptyPositiveBody(String),
    /// A variable of the rule does not occur in a positive body atom.
    UnsafeVariable {
        /// The offending rule, displayed.
        rule: String,
        /// The unsafe variable.
        var: String,
    },
    /// A relation is used with inconsistent arities.
    ArityConflict {
        /// The offending relation.
        relation: String,
    },
    /// A nullary atom appears.
    NullaryAtom(String),
    /// The invention symbol `*` appears (only ILOG¬ programs may use it).
    InventionSymbol(String),
    /// An output relation is not an idb relation of the program.
    OutputNotIdb(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::EmptyPositiveBody(r) => {
                write!(f, "rule has empty positive body: {r}")
            }
            ProgramError::UnsafeVariable { rule, var } => write!(
                f,
                "variable {var} does not occur in a positive body atom of: {rule}"
            ),
            ProgramError::ArityConflict { relation } => {
                write!(f, "relation {relation} used with conflicting arities")
            }
            ProgramError::NullaryAtom(r) => write!(f, "nullary atom in: {r}"),
            ProgramError::InventionSymbol(r) => write!(
                f,
                "invention symbol * is only allowed in ILOG programs: {r}"
            ),
            ProgramError::OutputNotIdb(r) => {
                write!(f, "output relation {r} is not an idb relation")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Create a program from rules; output defaults to the relation `O` if
    /// present among the rule heads, otherwise to *all* idb relations.
    ///
    /// # Errors
    /// Returns the first well-formedness violation found.
    pub fn new(rules: Vec<Rule>) -> Result<Self, ProgramError> {
        let mut p = Program {
            rules,
            outputs: BTreeSet::new(),
        };
        p.validate(false)?;
        let idb = p.idb();
        if idb.contains("O") {
            p.outputs.insert(calm_common::fact::rel("O"));
        } else {
            p.outputs = idb.names().cloned().collect();
        }
        Ok(p)
    }

    /// Create a program with explicit output relations.
    ///
    /// # Errors
    /// Returns well-formedness violations, including outputs that are not
    /// idb relations.
    pub fn with_outputs(
        rules: Vec<Rule>,
        outputs: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> Result<Self, ProgramError> {
        let mut p = Program {
            rules,
            outputs: outputs
                .into_iter()
                .map(|s| calm_common::fact::rel(s.as_ref()))
                .collect(),
        };
        p.validate(false)?;
        let idb = p.idb();
        for o in &p.outputs {
            if !idb.contains(o) {
                return Err(ProgramError::OutputNotIdb(o.to_string()));
            }
        }
        Ok(p)
    }

    /// Create a program allowing invention atoms (used by `calm-ilog`).
    /// Performs all validations except the invention-symbol rejection.
    ///
    /// # Errors
    /// Returns non-invention well-formedness violations.
    pub fn new_ilog(rules: Vec<Rule>) -> Result<Self, ProgramError> {
        let mut p = Program {
            rules,
            outputs: BTreeSet::new(),
        };
        p.validate(true)?;
        let idb = p.idb();
        if idb.contains("O") {
            p.outputs.insert(calm_common::fact::rel("O"));
        } else {
            p.outputs = idb.names().cloned().collect();
        }
        Ok(p)
    }

    /// Replace the output set of an already-validated program (used by the
    /// parser for ILOG programs with an `@output` directive; callers must
    /// have checked the names are idb relations).
    pub(crate) fn replace_outputs(p: Program, outs: Vec<String>) -> Program {
        Program {
            rules: p.rules,
            outputs: outs
                .into_iter()
                .map(|s| calm_common::fact::rel(&s))
                .collect(),
        }
    }

    fn validate(&mut self, allow_invention: bool) -> Result<(), ProgramError> {
        let mut arities: std::collections::BTreeMap<RelName, usize> = Default::default();
        for rule in &self.rules {
            if rule.pos.is_empty() {
                return Err(ProgramError::EmptyPositiveBody(rule.to_string()));
            }
            for atom in rule.atoms() {
                if atom.arity() == 0 {
                    return Err(ProgramError::NullaryAtom(rule.to_string()));
                }
                if atom.has_invention() {
                    if !allow_invention {
                        return Err(ProgramError::InventionSymbol(rule.to_string()));
                    }
                } else if let Some(&a) = arities.get(&atom.relation) {
                    if a != atom.arity() {
                        return Err(ProgramError::ArityConflict {
                            relation: atom.relation.to_string(),
                        });
                    }
                } else {
                    arities.insert(atom.relation.clone(), atom.arity());
                }
                // Invention atoms are checked for arity consistency too,
                // counting `*` as one position.
                if atom.has_invention() {
                    if let Some(&a) = arities.get(&atom.relation) {
                        if a != atom.arity() {
                            return Err(ProgramError::ArityConflict {
                                relation: atom.relation.to_string(),
                            });
                        }
                    } else {
                        arities.insert(atom.relation.clone(), atom.arity());
                    }
                }
            }
            // Safety: every variable of the rule occurs in pos.
            let pos_vars = rule.positive_variables();
            for v in rule.variables() {
                if !pos_vars.contains(&v) {
                    return Err(ProgramError::UnsafeVariable {
                        rule: rule.to_string(),
                        var: v.name().to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The output relations.
    pub fn outputs(&self) -> &BTreeSet<RelName> {
        &self.outputs
    }

    /// The output schema (output relations with their arities).
    pub fn output_schema(&self) -> Schema {
        self.sch()
            .filter(|n| self.outputs.iter().any(|o| o.as_ref() == n))
    }

    /// `sch(P)`: the minimal schema the program is over.
    pub fn sch(&self) -> Schema {
        let mut s = Schema::new();
        for rule in &self.rules {
            for atom in rule.atoms() {
                s.add(&atom.relation, atom.arity());
            }
        }
        s
    }

    /// `idb(P)`: relations appearing in rule heads.
    pub fn idb(&self) -> Schema {
        let heads: BTreeSet<&RelName> = self.rules.iter().map(|r| &r.head.relation).collect();
        self.sch().filter(|n| heads.iter().any(|h| h.as_ref() == n))
    }

    /// `edb(P) = sch(P) \ idb(P)`.
    pub fn edb(&self) -> Schema {
        let idb = self.idb();
        self.sch().filter(|n| !idb.contains(n))
    }

    /// Whether all rules are positive.
    pub fn is_positive(&self) -> bool {
        self.rules.iter().all(Rule::is_positive)
    }

    /// Whether any rule uses inequalities.
    pub fn uses_inequalities(&self) -> bool {
        self.rules.iter().any(|r| !r.ineq.is_empty())
    }

    /// Whether the program is semi-positive: every negative body atom is
    /// over `edb(P)`.
    pub fn is_semi_positive(&self) -> bool {
        let idb = self.idb();
        self.rules
            .iter()
            .all(|r| r.neg.iter().all(|a| !idb.contains(&a.relation)))
    }

    /// Rules whose head is the given relation.
    pub fn rules_for<'a>(&'a self, relation: &'a str) -> impl Iterator<Item = &'a Rule> + 'a {
        self.rules
            .iter()
            .filter(move |r| r.head.relation.as_ref() == relation)
    }

    /// A new program consisting of the subset of rules satisfying `keep`,
    /// with the same outputs intersected with the remaining idb.
    pub fn filter_rules(&self, mut keep: impl FnMut(&Rule) -> bool) -> Program {
        let rules: Vec<Rule> = self.rules.iter().filter(|r| keep(r)).cloned().collect();
        let heads: BTreeSet<RelName> = rules.iter().map(|r| r.head.relation.clone()).collect();
        Program {
            rules,
            outputs: self
                .outputs
                .iter()
                .filter(|o| heads.contains(*o))
                .cloned()
                .collect(),
        }
    }

    /// Append the standard `Adom` rules: `Adom(x) ← R(..., x, ...)` for
    /// every position of every relation currently in `edb(P)` (the paper's
    /// convention, Section 2). Returns a new program.
    pub fn with_adom(&self) -> Program {
        let mut rules = self.rules.clone();
        for (name, arity) in self.edb().iter() {
            if name.as_ref() == "Adom" {
                continue;
            }
            for pos in 0..arity {
                let vars: Vec<Term> = (0..arity)
                    .map(|i| {
                        if i == pos {
                            Term::var("x")
                        } else {
                            Term::Var(Var::new(format!("u{i}")))
                        }
                    })
                    .collect();
                rules.push(Rule::positive(
                    Atom::vars("Adom", &["x"]),
                    vec![Atom::new(name.as_ref(), vars)],
                ));
            }
        }
        Program {
            rules,
            outputs: self.outputs.clone(),
        }
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Rule};

    fn tc_program() -> Program {
        Program::new(vec![
            Rule::positive(
                Atom::vars("T", &["x", "y"]),
                vec![Atom::vars("E", &["x", "y"])],
            ),
            Rule::positive(
                Atom::vars("T", &["x", "z"]),
                vec![Atom::vars("T", &["x", "y"]), Atom::vars("E", &["y", "z"])],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn schemas_derived() {
        let p = tc_program();
        assert_eq!(p.sch().len(), 2);
        assert_eq!(p.idb().names().next().unwrap().as_ref(), "T");
        assert_eq!(p.edb().names().next().unwrap().as_ref(), "E");
        assert!(p.is_positive());
        assert!(p.is_semi_positive());
        assert!(!p.uses_inequalities());
    }

    #[test]
    fn default_outputs_all_idb_without_o() {
        let p = tc_program();
        assert_eq!(p.outputs().len(), 1);
        assert!(p.outputs().iter().any(|o| o.as_ref() == "T"));
    }

    #[test]
    fn o_relation_becomes_default_output() {
        let p = Program::new(vec![Rule::positive(
            Atom::vars("O", &["x"]),
            vec![Atom::vars("V", &["x"])],
        )])
        .unwrap();
        assert_eq!(p.outputs().len(), 1);
        assert!(p.outputs().iter().any(|o| o.as_ref() == "O"));
        assert_eq!(p.output_schema().arity("O"), Some(1));
    }

    #[test]
    fn rejects_unsafe_variable() {
        // Head variable y not in pos.
        let err = Program::new(vec![Rule::positive(
            Atom::vars("T", &["x", "y"]),
            vec![Atom::vars("V", &["x"])],
        )])
        .unwrap_err();
        assert!(matches!(err, ProgramError::UnsafeVariable { .. }));
    }

    #[test]
    fn rejects_unsafe_negated_variable() {
        let err = Program::new(vec![Rule {
            head: Atom::vars("T", &["x"]),
            pos: vec![Atom::vars("V", &["x"])],
            neg: vec![Atom::vars("W", &["y"])],
            ineq: vec![],
        }])
        .unwrap_err();
        assert!(matches!(err, ProgramError::UnsafeVariable { .. }));
    }

    #[test]
    fn rejects_empty_body_and_arity_conflicts() {
        let err = Program::new(vec![Rule::positive(Atom::vars("T", &["x"]), vec![])]);
        assert!(matches!(err, Err(ProgramError::EmptyPositiveBody(_))));
        let err = Program::new(vec![Rule::positive(
            Atom::vars("T", &["x"]),
            vec![Atom::vars("E", &["x", "x"]), Atom::vars("E", &["x"])],
        )]);
        assert!(matches!(err, Err(ProgramError::ArityConflict { .. })));
    }

    #[test]
    fn rejects_invention_in_plain_datalog() {
        use crate::ast::Term;
        let err = Program::new(vec![Rule::positive(
            Atom::new("R", vec![Term::Invention, Term::var("x")]),
            vec![Atom::vars("E", &["x", "x"])],
        )]);
        assert!(matches!(err, Err(ProgramError::InventionSymbol(_))));
    }

    #[test]
    fn semi_positive_detection() {
        let p = Program::new(vec![
            Rule::positive(
                Atom::vars("T", &["x", "y"]),
                vec![Atom::vars("E", &["x", "y"])],
            ),
            Rule {
                head: Atom::vars("O", &["x"]),
                pos: vec![Atom::vars("V", &["x"])],
                neg: vec![Atom::vars("E", &["x", "x"])], // edb negation: ok
                ineq: vec![],
            },
        ])
        .unwrap();
        assert!(p.is_semi_positive());
        let p2 = Program::new(vec![
            Rule::positive(
                Atom::vars("T", &["x", "y"]),
                vec![Atom::vars("E", &["x", "y"])],
            ),
            Rule {
                head: Atom::vars("O", &["x"]),
                pos: vec![Atom::vars("V", &["x"])],
                neg: vec![Atom::vars("T", &["x", "x"])], // idb negation
                ineq: vec![],
            },
        ])
        .unwrap();
        assert!(!p2.is_semi_positive());
    }

    #[test]
    fn with_adom_adds_projection_rules() {
        let p = tc_program().with_adom();
        // E has two positions -> two Adom rules added.
        let adom_rules: Vec<_> = p.rules_for("Adom").collect();
        assert_eq!(adom_rules.len(), 2);
        assert!(p.idb().contains("Adom"));
    }

    #[test]
    fn with_outputs_validates() {
        let r = Rule::positive(Atom::vars("T", &["x"]), vec![Atom::vars("V", &["x"])]);
        assert!(Program::with_outputs(vec![r.clone()], ["T"]).is_ok());
        assert!(matches!(
            Program::with_outputs(vec![r], ["V"]),
            Err(ProgramError::OutputNotIdb(_))
        ));
    }
}
