//! Nullary relations via the Section-7 encoding.
//!
//! The paper's model (and this workspace) excludes nullary relations; §7
//! explains the restriction is practical, not fundamental: with general
//! policies everything carries over, and for domain-guided policies one
//! additionally requires every nullary fact to be assigned to **all**
//! nodes (a nullary fact is never domain-disjoint from anything).
//!
//! This module implements the standard encoding: a conceptually nullary
//! atom `R()` becomes the unary atom `R(⊥)` over the reserved marker
//! value [`marker`]. [`encode_source`] rewrites program/fact text;
//! [`decode_instance`] strips the marker for display. For domain-guided
//! distribution, assign the marker value to every node (see the test in
//! `calm-transducer` exercising exactly that).

use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::value::Value;

/// The reserved marker value standing in for "the" nullary tuple.
pub fn marker() -> Value {
    Value::str("\u{22a5}") // ⊥
}

/// Rewrite every nullary atom `Name()` in Datalog source (programs or
/// fact files) into `Name("⊥")`. Everything else is passed through
/// verbatim; string literals are respected.
pub fn encode_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let mut in_string = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_string {
            out.push(c);
            if c == '"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
                i += 1;
            }
            '(' => {
                // Lookahead: an immediately-closing paren is a nullary
                // atom (allow interior whitespace).
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] as char == ')' {
                    out.push_str("(\"\u{22a5}\")");
                    i = j + 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Whether a fact is the encoding of a nullary fact: a single argument
/// equal to the marker.
pub fn is_encoded_nullary(f: &Fact) -> bool {
    f.arity() == 1 && f.args()[0] == marker()
}

/// Render an instance with encoded nullary facts shown as `R()`.
pub fn decode_instance(i: &Instance) -> Vec<String> {
    i.facts()
        .map(|f| {
            if is_encoded_nullary(&f) {
                format!("{}()", f.relation())
            } else {
                f.to_string()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_facts, parse_program};
    use calm_common::fact::fact;

    #[test]
    fn encode_rewrites_nullary_atoms_only() {
        let src = "Nonempty() :- E(x,y).\nO(x,y) :- E(x,y), Nonempty().";
        let enc = encode_source(src);
        assert_eq!(
            enc,
            "Nonempty(\"⊥\") :- E(x,y).\nO(x,y) :- E(x,y), Nonempty(\"⊥\")."
        );
        // Non-nullary atoms untouched; strings untouched.
        let s2 = encode_source("R(\"()\", x) :- V(x).");
        assert_eq!(s2, "R(\"()\", x) :- V(x).");
    }

    #[test]
    fn encoded_program_evaluates() {
        let enc = encode_source(
            "@output O.\n\
             Nonempty() :- E(x,y).\n\
             O(x,y) :- E(x,y), Nonempty().",
        );
        let p = parse_program(&enc).unwrap();
        let input = Instance::from_facts([fact("E", [1, 2])]);
        let out = crate::eval::eval_query(&p, &input).unwrap();
        assert_eq!(out.relation_len("O"), 1);
    }

    #[test]
    fn encoded_nullary_facts_parse_and_decode() {
        let enc = encode_source("Enabled(). E(1,2).");
        let i = parse_facts(&enc).unwrap();
        assert_eq!(i.len(), 2);
        let shown = decode_instance(&i);
        assert!(shown.contains(&"Enabled()".to_string()));
        assert!(shown.contains(&"E(1,2)".to_string()));
        let enabled = i
            .facts()
            .find(|f| f.relation().as_ref() == "Enabled")
            .unwrap();
        assert!(is_encoded_nullary(&enabled));
    }

    #[test]
    fn whitespace_inside_empty_parens() {
        assert_eq!(encode_source("F(  )."), "F(\"⊥\").");
    }

    #[test]
    fn marker_is_stable() {
        assert_eq!(marker(), Value::str("⊥"));
    }
}
