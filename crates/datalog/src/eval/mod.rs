//! Evaluation engines for Datalog¬.
//!
//! * [`database`] — the internal relation store over the shared
//!   substrate ([`calm_common::storage`]): interned symbols, indexed
//!   delta-tracked rows;
//! * [`compile`] — rule compilation into interned slot form;
//! * [`seminaive`] — naive and semi-naive fixpoints for semi-positive
//!   programs;
//! * [`stratified`] — the stratified semantics driver;
//! * [`incremental`] — DRed maintenance of a materialized stratified
//!   database under signed update batches.

pub mod compile;
pub mod database;
pub mod incremental;
pub mod seminaive;
pub mod stratified;

pub use compile::JoinStrategy;
pub use database::Database;
pub use incremental::{apply_update_compiled, UpdateStats};
pub use seminaive::{
    body_valuations, derive_once, fixpoint_naive, fixpoint_seminaive, fixpoint_seminaive_compiled,
    fixpoint_seminaive_compiled_obs, fixpoint_seminaive_frozen, fixpoint_seminaive_frozen_compiled,
    fixpoint_seminaive_frozen_compiled_obs, fixpoint_seminaive_obs, fixpoint_seminaive_with,
    fixpoint_seminaive_with_obs, CompiledProgram, EvalMetrics, EvalOptions, FixpointStats, RuleSet,
    ValuationQuery,
};
pub use stratified::{
    eval_program, eval_program_with, eval_query, eval_query_obs, eval_query_opts,
    eval_stratification, eval_stratification_opts, eval_stratification_shared,
    eval_stratification_shared_obs, plan_report, Engine,
};
