//! Fixpoint evaluation of semi-positive programs: naive and semi-naive.
//!
//! Both compute the minimal fixpoint of the immediate consequence operator
//! `T_P` (Section 2). Negative atoms are only consulted against relations
//! that are fixed during the fixpoint (edb or lower strata), which the
//! stratified driver guarantees.
//!
//! Evaluation runs entirely over the shared substrate
//! ([`calm_common::storage`]): bindings are `Copy` [`Sym`]s, the
//! semi-naive delta is the region of rows past each relation's watermark
//! (no second store, no copying), and the hash indexes used by probe
//! joins are built once before the loop and maintained incrementally on
//! insert — nothing is rebuilt per iteration.

use super::compile::{compile_rule, compile_rule_ordered, CompiledAtom, CompiledRule, Slot};
use super::database::Database;
use crate::ast::{Rule, Var};
use crate::program::Program;
use calm_common::fact::RelName;
use calm_common::storage::{RelId, Storage, Sym, SymTuple, SymbolTable};
use calm_common::value::Value;
use calm_obs::Obs;
use std::collections::BTreeSet;

pub use calm_common::storage::EvalMetrics;

/// Backwards-compatible name for the engine counters: the original
/// `FixpointStats` grew into [`EvalMetrics`].
pub type FixpointStats = EvalMetrics;

/// Evaluation options: the ablation knobs benchmarked by
/// `calm-bench`'s `datalog_eval` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Greedily reorder positive body atoms (join planning).
    pub reorder: bool,
    /// Probe incrementally-maintained hash indexes on the probe
    /// positions (built once per fixpoint, maintained on insert).
    pub index: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            reorder: true,
            index: true,
        }
    }
}

impl EvalOptions {
    /// The unoptimized baseline (original body order, full scans).
    pub const BASELINE: EvalOptions = EvalOptions {
        reorder: false,
        index: false,
    };
}

/// The `(relation, position)` pairs the compiled rules will probe.
fn wanted_indexes(rules: &[CompiledRule]) -> BTreeSet<(RelId, usize)> {
    let mut out = BTreeSet::new();
    for rule in rules {
        for atom in &rule.pos {
            if let Some(p) = atom.probe {
                out.insert((atom.relation, p));
            }
        }
    }
    out
}

/// Match one atom against a row, extending `binding`. Returns the slots
/// that were newly bound (for backtracking), or `None` on mismatch.
fn unify(atom: &CompiledAtom, row: &[Sym], binding: &mut [Option<Sym>]) -> Option<Vec<usize>> {
    debug_assert_eq!(atom.slots.len(), row.len());
    let mut newly = Vec::new();
    for (slot, &s) in atom.slots.iter().zip(row.iter()) {
        match slot {
            Slot::Const(c) => {
                if *c != s {
                    undo(binding, &newly);
                    return None;
                }
            }
            Slot::Var(i) => match binding[*i] {
                Some(existing) => {
                    if existing != s {
                        undo(binding, &newly);
                        return None;
                    }
                }
                None => {
                    binding[*i] = Some(s);
                    newly.push(*i);
                }
            },
        }
    }
    Some(newly)
}

fn undo(binding: &mut [Option<Sym>], newly: &[usize]) {
    for &i in newly {
        binding[i] = None;
    }
}

fn slot_sym(slot: &Slot, binding: &[Option<Sym>]) -> Sym {
    match slot {
        Slot::Const(c) => *c,
        Slot::Var(i) => {
            binding[*i].expect("slot unbound after positive join; rule safety violated")
        }
    }
}

/// Evaluate a compiled rule against `full`. `delta_at` optionally
/// restricts one positive atom (by index) to the delta region of its
/// relation. Negative atoms are checked against `neg_db` (equal to `full`
/// for ordinary evaluation; a frozen approximation for the well-founded
/// alternating fixpoint). Derived head rows are passed to `emit`.
fn eval_rule(
    rule: &CompiledRule,
    full: &Storage,
    use_index: bool,
    neg_db: &Storage,
    delta_at: Option<usize>,
    metrics: &mut EvalMetrics,
    emit: &mut impl FnMut(RelId, SymTuple),
) {
    let mut binding: Vec<Option<Sym>> = vec![None; rule.nvars];
    eval_pos(
        rule,
        0,
        full,
        use_index,
        neg_db,
        delta_at,
        &mut binding,
        metrics,
        emit,
    );
}

#[allow(clippy::too_many_arguments)]
fn eval_pos(
    rule: &CompiledRule,
    idx: usize,
    full: &Storage,
    use_index: bool,
    neg_db: &Storage,
    delta_at: Option<usize>,
    binding: &mut Vec<Option<Sym>>,
    metrics: &mut EvalMetrics,
    emit: &mut impl FnMut(RelId, SymTuple),
) {
    if idx == rule.pos.len() {
        // Check inequalities.
        for (l, r) in &rule.ineq {
            if slot_sym(l, binding) == slot_sym(r, binding) {
                return;
            }
        }
        // Check negative atoms (all slots bound by safety).
        for atom in &rule.neg {
            let row: SymTuple = atom.slots.iter().map(|s| slot_sym(s, binding)).collect();
            if neg_db.contains(atom.relation, &row) {
                return;
            }
        }
        let head: SymTuple = rule
            .head
            .slots
            .iter()
            .map(|s| slot_sym(s, binding))
            .collect();
        metrics.derivations += 1;
        emit(rule.head.relation, head);
        return;
    }
    let atom = &rule.pos[idx];
    let Some(relation) = full.relation(atom.relation) else {
        return;
    };
    let scanning_delta = delta_at == Some(idx);
    // Fast path: probe the hash index with the bound symbol at the probe
    // position (never when this atom scans the small delta region).
    if !scanning_delta && use_index {
        if let Some(p) = atom.probe {
            let s = match atom.slots[p] {
                Slot::Const(c) => c,
                Slot::Var(i) => binding[i].expect("probe position must be bound"),
            };
            if let Some(ids) = relation.probe(p, s) {
                metrics.index_probes += 1;
                metrics.index_hits += ids.len();
                for &id in ids {
                    let row = relation.row(id);
                    if row.len() != atom.slots.len() {
                        continue;
                    }
                    if let Some(newly) = unify(atom, row, binding) {
                        eval_pos(
                            rule,
                            idx + 1,
                            full,
                            use_index,
                            neg_db,
                            delta_at,
                            binding,
                            metrics,
                            emit,
                        );
                        undo(binding, &newly);
                    }
                }
                return;
            }
        }
    }
    let rows = if scanning_delta {
        relation.delta_rows()
    } else {
        relation.rows()
    };
    for row in rows {
        if row.len() != atom.slots.len() {
            continue;
        }
        if let Some(newly) = unify(atom, row, binding) {
            eval_pos(
                rule,
                idx + 1,
                full,
                use_index,
                neg_db,
                delta_at,
                binding,
                metrics,
                emit,
            );
            undo(binding, &newly);
        }
    }
}

fn compile_program(program: &Program, table: &mut SymbolTable, reorder: bool) -> Vec<CompiledRule> {
    let idb: BTreeSet<RelName> = program.idb().names().cloned().collect();
    program
        .rules()
        .iter()
        .map(|r| {
            if reorder {
                compile_rule_ordered(r, table, |rel| idb.contains(rel))
            } else {
                compile_rule(r, table, |rel| idb.contains(rel))
            }
        })
        .collect()
}

/// Compute the minimal fixpoint of a semi-positive program over `db`,
/// **naively**: every iteration re-derives everything. Kept as the
/// baseline for the `datalog_eval` benchmark.
pub fn fixpoint_naive(program: &Program, db: &mut Database) -> FixpointStats {
    let compiled = compile_program(program, &mut db.symbols().clone().write(), false);
    let mut metrics = EvalMetrics::default();
    loop {
        metrics.iterations += 1;
        let mut fresh: Vec<(RelId, SymTuple)> = Vec::new();
        {
            let storage = db.storage();
            for rule in &compiled {
                eval_rule(
                    rule,
                    storage,
                    false,
                    storage,
                    None,
                    &mut metrics,
                    &mut |rel, row| {
                        if !storage.contains(rel, &row) {
                            fresh.push((rel, row));
                        }
                    },
                );
            }
        }
        let mut added = 0;
        for (rel, row) in fresh {
            let bytes = row.len() * std::mem::size_of::<Sym>();
            if db.storage_mut().insert(rel, row) {
                added += 1;
                metrics.bytes_moved += bytes;
            }
        }
        metrics.new_facts += added;
        if added == 0 {
            return metrics;
        }
    }
}

/// Compute the minimal fixpoint of a semi-positive program over `db` using
/// **semi-naive** evaluation: recursive rules only join against the delta
/// of the previous iteration.
pub fn fixpoint_seminaive(program: &Program, db: &mut Database) -> FixpointStats {
    fixpoint_seminaive_impl(program, db, None, EvalOptions::default())
}

/// As [`fixpoint_seminaive`], reporting per-iteration and per-rule spans
/// plus derivation counters to `obs`.
pub fn fixpoint_seminaive_obs(program: &Program, db: &mut Database, obs: &Obs) -> FixpointStats {
    let cp = CompiledProgram::new(
        program,
        &mut db.symbols().clone().write(),
        EvalOptions::default(),
    );
    fixpoint_compiled_impl(&cp, db, None, obs)
}

/// Semi-naive fixpoint with explicit [`EvalOptions`] — the entry point for
/// the `datalog_eval` ablation benchmark.
pub fn fixpoint_seminaive_with(
    program: &Program,
    db: &mut Database,
    options: EvalOptions,
) -> FixpointStats {
    fixpoint_seminaive_impl(program, db, None, options)
}

/// Semi-naive fixpoint with *frozen negation*: every negative body atom is
/// checked against `frozen` instead of the evolving database. This is the
/// `Γ` operator of the well-founded alternating fixpoint
/// ([`crate::wellfounded`]); the program need not be semi-positive.
/// `frozen` must share `db`'s symbol table.
pub fn fixpoint_seminaive_frozen(
    program: &Program,
    db: &mut Database,
    frozen: &Database,
) -> FixpointStats {
    fixpoint_seminaive_impl(program, db, Some(frozen), EvalOptions::default())
}

/// A semi-positive program compiled once against a symbol table, for
/// repeated fixpoint evaluation. [`crate::query::DatalogQuery`] holds one
/// per stratum: the monotonicity falsifiers evaluate the same query
/// thousands of times, and per-eval recompilation dominates small inputs.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    rules: Vec<CompiledRule>,
    indexes: Vec<(RelId, usize)>,
    options: EvalOptions,
    /// Per-rule span labels (`<head-relation>#<rule-index>`), computed at
    /// compile time so tracing never consults the symbol table.
    labels: Vec<String>,
}

impl CompiledProgram {
    /// Compile `program` against `table` with the given options.
    pub fn new(
        program: &Program,
        table: &mut SymbolTable,
        options: EvalOptions,
    ) -> CompiledProgram {
        let rules = compile_program(program, table, options.reorder);
        let indexes = if options.index {
            wanted_indexes(&rules).into_iter().collect()
        } else {
            Vec::new()
        };
        let labels = rules
            .iter()
            .enumerate()
            .map(|(i, r)| format!("{}#{i}", table.rel_name(r.head.relation)))
            .collect();
        CompiledProgram {
            rules,
            indexes,
            options,
            labels,
        }
    }

    /// The span label of rule `i` (`<head-relation>#<rule-index>`).
    pub fn rule_label(&self, i: usize) -> &str {
        &self.labels[i]
    }
}

/// Semi-naive fixpoint of a precompiled program. `db` must use the table
/// the program was compiled against.
pub fn fixpoint_seminaive_compiled(cp: &CompiledProgram, db: &mut Database) -> FixpointStats {
    fixpoint_compiled_impl(cp, db, None, &Obs::noop())
}

/// As [`fixpoint_seminaive_compiled`], reporting per-iteration and
/// per-rule spans plus derivation counters to `obs`.
pub fn fixpoint_seminaive_compiled_obs(
    cp: &CompiledProgram,
    db: &mut Database,
    obs: &Obs,
) -> FixpointStats {
    fixpoint_compiled_impl(cp, db, None, obs)
}

/// As [`fixpoint_seminaive_compiled`], with every negative body atom
/// checked against `frozen` (the `Γ` operator of the well-founded
/// alternating fixpoint). `frozen` must share `db`'s symbol table.
pub fn fixpoint_seminaive_frozen_compiled(
    cp: &CompiledProgram,
    db: &mut Database,
    frozen: &Database,
) -> FixpointStats {
    fixpoint_compiled_impl(cp, db, Some(frozen), &Obs::noop())
}

/// As [`fixpoint_seminaive_frozen_compiled`], reporting to `obs`.
pub fn fixpoint_seminaive_frozen_compiled_obs(
    cp: &CompiledProgram,
    db: &mut Database,
    frozen: &Database,
    obs: &Obs,
) -> FixpointStats {
    fixpoint_compiled_impl(cp, db, Some(frozen), obs)
}

fn fixpoint_seminaive_impl(
    program: &Program,
    db: &mut Database,
    frozen: Option<&Database>,
    options: EvalOptions,
) -> FixpointStats {
    let cp = CompiledProgram::new(program, &mut db.symbols().clone().write(), options);
    fixpoint_compiled_impl(&cp, db, frozen, &Obs::noop())
}

fn fixpoint_compiled_impl(
    cp: &CompiledProgram,
    db: &mut Database,
    frozen: Option<&Database>,
    obs: &Obs,
) -> FixpointStats {
    if let Some(f) = frozen {
        assert!(
            db.symbols().same_table(f.symbols()),
            "frozen negation database must share the symbol table"
        );
    }
    let compiled = &cp.rules;
    let options = cp.options;
    // Build the probe indexes once; inserts keep them current, so the
    // fixpoint loop below never rebuilds an index.
    for &(rel, pos) in &cp.indexes {
        db.storage_mut().relation_mut(rel).ensure_index(pos);
    }
    let mut metrics = EvalMetrics::default();
    let mut pending: Vec<(RelId, SymTuple)> = Vec::new();

    // Round 0: evaluate every rule once on the initial database. This
    // covers non-recursive rules completely (their inputs never change
    // within this stratum) and seeds the delta for recursive ones.
    metrics.iterations += 1;
    {
        let _iter_span = obs.span("eval", || "iteration#0".into());
        let storage = db.storage();
        let neg = frozen.map_or(storage, |f| f.storage());
        for (i, rule) in compiled.iter().enumerate() {
            let before = metrics.derivations;
            let _rule_span = obs.span("eval.rule", || cp.labels[i].clone());
            eval_rule(
                rule,
                storage,
                options.index,
                neg,
                None,
                &mut metrics,
                &mut |rel, row| {
                    if !storage.contains(rel, &row) {
                        pending.push((rel, row));
                    }
                },
            );
            if obs.enabled() {
                obs.counter(
                    "eval.rule",
                    &cp.labels[i],
                    (metrics.derivations - before) as u64,
                );
            }
        }
    }

    loop {
        // Rows inserted now form the next delta region: move every
        // watermark to the current end first, then insert.
        db.storage_mut().mark_deltas();
        let mut added = 0;
        for (rel, row) in pending.drain(..) {
            let bytes = row.len() * std::mem::size_of::<Sym>();
            if db.storage_mut().insert(rel, row) {
                added += 1;
                metrics.bytes_moved += bytes;
            }
        }
        metrics.new_facts += added;
        if obs.enabled() {
            obs.histogram("eval", "iteration_new_facts", added as u64);
        }
        if added == 0 {
            obs.counter("eval", "derivations", metrics.derivations as u64);
            obs.counter("eval", "new_facts", metrics.new_facts as u64);
            obs.counter("eval", "iterations", metrics.iterations as u64);
            return metrics;
        }
        // Delta round: recursive rules only, one delta position at a time.
        // Dedup across repeated relations at multiple positions is handled
        // by the membership guard on `pending` insertion.
        metrics.iterations += 1;
        let iter = metrics.iterations;
        let _iter_span = obs.span("eval", || format!("iteration#{}", iter - 1));
        let storage = db.storage();
        let neg = frozen.map_or(storage, |f| f.storage());
        for (i, rule) in compiled.iter().enumerate() {
            if !rule.is_recursive() {
                continue;
            }
            let before = metrics.derivations;
            let _rule_span = obs.span("eval.rule", || cp.labels[i].clone());
            for (pos_idx, is_rec) in rule.recursive_pos.iter().enumerate() {
                if !is_rec {
                    continue;
                }
                eval_rule(
                    rule,
                    storage,
                    options.index,
                    neg,
                    Some(pos_idx),
                    &mut metrics,
                    &mut |rel, row| {
                        if !storage.contains(rel, &row) {
                            pending.push((rel, row));
                        }
                    },
                );
            }
            if obs.enabled() {
                obs.counter(
                    "eval.rule",
                    &cp.labels[i],
                    (metrics.derivations - before) as u64,
                );
            }
        }
    }
}

/// A program compiled once against a symbol table, for repeated one-shot
/// derivation (the transducer simulator's per-transition step).
#[derive(Debug, Clone)]
pub struct RuleSet {
    compiled: Vec<CompiledRule>,
}

impl RuleSet {
    /// Compile every rule of `program` against `table` (original body
    /// order; one-shot derivation gains little from reordering).
    pub fn new(program: &Program, table: &mut SymbolTable) -> RuleSet {
        RuleSet {
            compiled: compile_program(program, table, false),
        }
    }

    /// Derive all facts firing on `db` directly (no fixpoint iteration),
    /// passing each derived row to `emit`. `db` must use the table this
    /// rule set was compiled against.
    pub fn derive(
        &self,
        db: &Database,
        metrics: &mut EvalMetrics,
        emit: &mut impl FnMut(RelId, SymTuple),
    ) {
        let storage = db.storage();
        for rule in &self.compiled {
            eval_rule(rule, storage, false, storage, None, metrics, emit);
        }
    }
}

/// Evaluate a program's rules against a fixed database *without* fixpoint
/// iteration: derive all facts firing on `db` directly. Used for one-shot
/// queries; the transducer simulator keeps a precompiled [`RuleSet`]
/// instead of calling this per transition.
pub fn derive_once(program: &Program, db: &Database) -> Database {
    let rules = RuleSet::new(program, &mut db.symbols().clone().write());
    let mut out = Database::with_symbols(db.symbols().clone());
    let mut metrics = EvalMetrics::default();
    rules.derive(db, &mut metrics, &mut |rel, row| {
        out.insert(rel, row);
    });
    out
}

/// A rule body compiled once for repeated valuation enumeration — the
/// extension hook used by `calm-ilog` to construct Skolem terms for
/// invention heads. Accepts rules whose *head* contains the invention
/// symbol, since only the body is evaluated.
#[derive(Debug, Clone)]
pub struct ValuationQuery {
    vars: Vec<Var>,
    compiled: CompiledRule,
}

impl ValuationQuery {
    /// Compile the body of `rule` against `table`.
    pub fn new(rule: &Rule, table: &mut SymbolTable) -> ValuationQuery {
        use crate::ast::{Atom, Term};
        let vars: Vec<Var> = rule.positive_variables().into_iter().collect();
        let synthetic = Rule {
            head: Atom::new(
                "__valuation",
                vars.iter().map(|v| Term::Var(v.clone())).collect(),
            ),
            pos: rule.pos.clone(),
            neg: rule.neg.clone(),
            ineq: rule.ineq.clone(),
        };
        let compiled = compile_rule(&synthetic, table, |_| false);
        ValuationQuery { vars, compiled }
    }

    /// The body variables, in the order of each valuation row.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Enumerate every satisfying valuation of the body against `db`
    /// (negation also checked against `db`), deduplicated and in
    /// deterministic (interning) order.
    pub fn eval(&self, db: &Database, metrics: &mut EvalMetrics) -> Vec<SymTuple> {
        let storage = db.storage();
        let mut out: BTreeSet<SymTuple> = BTreeSet::new();
        eval_rule(
            &self.compiled,
            storage,
            false,
            storage,
            None,
            metrics,
            &mut |_, row| {
                out.insert(row);
            },
        );
        out.into_iter().collect()
    }
}

/// Enumerate every satisfying valuation of a rule's body against `db`
/// (negation also checked against `db`). Returns the valuations as
/// variable→value maps in deterministic (value) order.
///
/// Compiles the body on every call; repeated evaluation should hold a
/// [`ValuationQuery`] instead.
pub fn body_valuations(rule: &Rule, db: &Database) -> Vec<std::collections::BTreeMap<Var, Value>> {
    let q = ValuationQuery::new(rule, &mut db.symbols().clone().write());
    let mut metrics = EvalMetrics::default();
    let rows = q.eval(db, &mut metrics);
    let table = db.symbols().read();
    let ordered: BTreeSet<Vec<Value>> = rows
        .iter()
        .map(|row| row.iter().map(|&s| table.value(s).clone()).collect())
        .collect();
    ordered
        .into_iter()
        .map(|t| q.vars().iter().cloned().zip(t).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use calm_common::fact::fact;
    use calm_common::generator::path;
    use calm_common::instance::Instance;

    fn tc() -> Program {
        parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap()
    }

    #[test]
    fn tc_on_path_both_engines_agree() {
        let input = path(5);
        let mut db1 = Database::from_instance(&input);
        let mut db2 = Database::from_instance(&input);
        let s1 = fixpoint_naive(&tc(), &mut db1);
        let s2 = fixpoint_seminaive(&tc(), &mut db2);
        assert_eq!(db1.to_instance(), db2.to_instance());
        // Path with 5 edges: TC has 5+4+3+2+1 = 15 pairs.
        let out = db1.to_instance();
        assert_eq!(out.relation_len("T"), 15);
        // Semi-naive does strictly fewer derivations on a path.
        assert!(s2.derivations <= s1.derivations);
        assert!(s1.new_facts == s2.new_facts);
    }

    #[test]
    fn indexed_run_probes_instead_of_scanning() {
        let input = path(8);
        let mut db = Database::from_instance(&input);
        let s = fixpoint_seminaive(&tc(), &mut db);
        assert!(s.index_probes > 0, "optimized run must use the indexes");
        assert!(s.index_hits > 0);
        assert!(s.bytes_moved > 0);
        // The baseline never touches an index.
        let mut db2 = Database::from_instance(&input);
        let s2 = fixpoint_seminaive_with(&tc(), &mut db2, EvalOptions::BASELINE);
        assert_eq!(s2.index_probes, 0);
        assert_eq!(s2.index_hits, 0);
        assert_eq!(db.to_instance(), db2.to_instance());
    }

    #[test]
    fn negation_against_edb() {
        let p = parse_program("O(x,y) :- E(x,y), not F(x,y).").unwrap();
        let input = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3]), fact("F", [1, 2])]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        let out = db.to_instance();
        assert!(!out.contains(&fact("O", [1, 2])));
        assert!(out.contains(&fact("O", [2, 3])));
    }

    #[test]
    fn inequality_filtering() {
        let p = parse_program("O(x,y) :- E(x,y), x != y.").unwrap();
        let input = Instance::from_facts([fact("E", [1, 1]), fact("E", [1, 2])]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        let out = db.to_instance();
        assert_eq!(out.relation_len("O"), 1);
        assert!(out.contains(&fact("O", [1, 2])));
    }

    #[test]
    fn constants_in_rules() {
        let p = parse_program("O(x) :- E(x, 3).").unwrap();
        let input = Instance::from_facts([fact("E", [1, 3]), fact("E", [2, 4])]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        assert_eq!(db.to_instance().relation_len("O"), 1);
    }

    #[test]
    fn cycle_tc_is_complete_graph() {
        let input = calm_common::generator::cycle(4);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&tc(), &mut db);
        assert_eq!(db.to_instance().relation_len("T"), 16);
    }

    #[test]
    fn derive_once_no_recursion() {
        let input = path(3);
        let db = Database::from_instance(&input);
        let out = derive_once(&tc(), &db);
        // Only the base rule fires (T empty in input db).
        assert_eq!(out.to_instance().relation_len("T"), 3);
    }

    #[test]
    fn empty_input_empty_output() {
        let mut db = Database::new();
        let stats = fixpoint_seminaive(&tc(), &mut db);
        assert!(db.is_empty());
        assert_eq!(stats.new_facts, 0);
    }

    #[test]
    fn body_valuations_enumerates_matches() {
        let r = crate::parser::parse_rule("O(x) :- E(x,y), not F(y), x != y.").unwrap();
        let db = Database::from_instance(&Instance::from_facts([
            fact("E", [1, 2]),
            fact("E", [3, 3]), // killed by x != y
            fact("E", [4, 5]),
            fact("F", [5]), // kills E(4,5)
        ]));
        let vals = body_valuations(&r, &db);
        assert_eq!(vals.len(), 1);
        let m = &vals[0];
        assert_eq!(m[&Var::new("x")], calm_common::v(1));
        assert_eq!(m[&Var::new("y")], calm_common::v(2));
    }

    #[test]
    fn multiple_recursive_atoms_in_one_rule() {
        // Reachability by doubling: D(x,z) :- D(x,y), D(y,z).
        let p = parse_program(
            "D(x,y) :- E(x,y).\n\
             D(x,z) :- D(x,y), D(y,z).",
        )
        .unwrap();
        let input = path(6);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        assert_eq!(db.to_instance().relation_len("D"), 21); // 6+5+..+1
    }
}
