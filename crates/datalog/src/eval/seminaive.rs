//! Fixpoint evaluation of semi-positive programs: naive and semi-naive.
//!
//! Both compute the minimal fixpoint of the immediate consequence operator
//! `T_P` (Section 2). Negative atoms are only consulted against relations
//! that are fixed during the fixpoint (edb or lower strata), which the
//! stratified driver guarantees.
//!
//! Evaluation runs entirely over the shared substrate
//! ([`calm_common::storage`]): bindings are `Copy` [`Sym`]s, the
//! semi-naive delta is the region of rows past each relation's watermark
//! (no second store, no copying), and the hash indexes used by probe
//! joins are built once before the loop and maintained incrementally on
//! insert — nothing is rebuilt per iteration.
//!
//! # Data-parallel evaluation
//!
//! With [`EvalOptions::eval_threads`] > 1 each iteration's rule
//! evaluations are split into [`EvalJob`]s — a rule (restricted to one
//! delta position in delta rounds) over a contiguous chunk of its
//! *outermost* atom's row scan — and executed by scoped worker threads
//! (`std::thread::scope`, no new dependencies) sharing the storage
//! read-only. Each worker keeps a private derivation buffer and
//! [`EvalMetrics`] block; after the round the buffers are merged in job
//! order (rule index, then delta position, then partition index), which
//! reproduces the exact sequential emission order. Because the chunks
//! partition the same outer scan, every counter is a sum over the same
//! event multiset, so the derived database **and** the metrics are
//! byte-identical to the sequential path at any thread count. The one
//! exception guarded by the planner: a rule whose outermost atom would
//! take the index-probe fast path issues exactly one probe, so such a
//! unit is never split (splitting would multiply `index_probes`).

use super::compile::{
    compile_rule, compile_rule_ordered, CompiledAtom, CompiledRule, JoinStrategy, Slot,
};
use super::database::Database;
use crate::ast::{Rule, Var};
use crate::program::Program;
use calm_common::fact::RelName;
use calm_common::storage::{RelId, Storage, Sym, SymTuple, SymbolTable};
use calm_common::value::Value;
use calm_obs::Obs;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

pub use calm_common::storage::EvalMetrics;

/// Backwards-compatible name for the engine counters: the original
/// `FixpointStats` grew into [`EvalMetrics`].
pub type FixpointStats = EvalMetrics;

/// Evaluation options: the ablation knobs benchmarked by
/// `calm-bench`'s `datalog_eval` bench, plus the data-parallel driver
/// knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Greedily reorder positive body atoms (join planning).
    pub reorder: bool,
    /// Probe incrementally-maintained hash indexes on the probe
    /// positions (built once per fixpoint, maintained on insert).
    pub index: bool,
    /// Worker threads for the data-parallel semi-naive driver; 1 (the
    /// default) runs the classic sequential loop. Any value produces a
    /// byte-identical database and [`EvalMetrics`] — see the module
    /// docs on deterministic merging.
    pub eval_threads: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            reorder: true,
            index: true,
            eval_threads: 1,
        }
    }
}

impl EvalOptions {
    /// The unoptimized baseline (original body order, full scans,
    /// sequential).
    pub const BASELINE: EvalOptions = EvalOptions {
        reorder: false,
        index: false,
        eval_threads: 1,
    };

    /// The same options with `eval_threads` set to `max(n, 1)`.
    #[must_use]
    pub fn with_eval_threads(mut self, n: usize) -> Self {
        self.eval_threads = n.max(1);
        self
    }
}

/// The `(relation, position)` pairs the compiled rules will probe via
/// the hash path. Leading-column probes go through the merge-join path
/// over sorted batches instead ([`sorted_relations`]), so no hash index
/// is built — or incrementally maintained on every insert — for them.
fn wanted_indexes(rules: &[CompiledRule]) -> BTreeSet<(RelId, usize)> {
    let mut out = BTreeSet::new();
    for rule in rules {
        for atom in &rule.pos {
            if let (Some(p), JoinStrategy::Hash) = (atom.probe, atom.strategy) {
                out.insert((atom.relation, p));
            }
        }
    }
    out
}

/// The relations some atom merge-joins on its leading column: these are
/// sealed into sorted batches at fixpoint entry and re-sealed at every
/// watermark boundary.
fn sorted_relations(rules: &[CompiledRule]) -> BTreeSet<RelId> {
    let mut out = BTreeSet::new();
    for rule in rules {
        for atom in &rule.pos {
            if atom.strategy == JoinStrategy::Merge {
                out.insert(atom.relation);
            }
        }
    }
    out
}

/// Match one atom against a row, extending `binding`. Returns the slots
/// that were newly bound (for backtracking), or `None` on mismatch.
/// `pub(crate)`: the incremental maintenance engine
/// ([`super::incremental`]) reuses the compiled-rule unification
/// machinery for its delta joins.
pub(crate) fn unify(
    atom: &CompiledAtom,
    row: &[Sym],
    binding: &mut [Option<Sym>],
) -> Option<Vec<usize>> {
    debug_assert_eq!(atom.slots.len(), row.len());
    let mut newly = Vec::new();
    for (slot, &s) in atom.slots.iter().zip(row.iter()) {
        match slot {
            Slot::Const(c) => {
                if *c != s {
                    undo(binding, &newly);
                    return None;
                }
            }
            Slot::Var(i) => match binding[*i] {
                Some(existing) => {
                    if existing != s {
                        undo(binding, &newly);
                        return None;
                    }
                }
                None => {
                    binding[*i] = Some(s);
                    newly.push(*i);
                }
            },
        }
    }
    Some(newly)
}

pub(crate) fn undo(binding: &mut [Option<Sym>], newly: &[usize]) {
    for &i in newly {
        binding[i] = None;
    }
}

pub(crate) fn slot_sym(slot: &Slot, binding: &[Option<Sym>]) -> Sym {
    match slot {
        Slot::Const(c) => *c,
        Slot::Var(i) => {
            binding[*i].expect("slot unbound after positive join; rule safety violated")
        }
    }
}

/// Evaluate a compiled rule against `full`. `delta_at` optionally
/// restricts one positive atom (by index) to the delta region of its
/// relation; `range` optionally restricts the *outermost* atom's row
/// scan to a contiguous `[start, end)` slice (the data-parallel
/// partitioning — indexes into the delta region when the outermost atom
/// is the delta atom, into the full row vector otherwise). Negative
/// atoms are checked against `neg_db` (equal to `full` for ordinary
/// evaluation; a frozen approximation for the well-founded alternating
/// fixpoint). Derived head rows are passed to `emit`.
#[allow(clippy::too_many_arguments)]
fn eval_rule(
    rule: &CompiledRule,
    full: &Storage,
    use_index: bool,
    neg_db: &Storage,
    delta_at: Option<usize>,
    range: Option<(usize, usize)>,
    metrics: &mut EvalMetrics,
    emit: &mut impl FnMut(RelId, SymTuple),
) {
    let mut binding: Vec<Option<Sym>> = vec![None; rule.nvars];
    eval_pos(
        rule,
        0,
        full,
        use_index,
        neg_db,
        delta_at,
        range,
        &mut binding,
        metrics,
        emit,
    );
}

#[allow(clippy::too_many_arguments)]
fn eval_pos(
    rule: &CompiledRule,
    idx: usize,
    full: &Storage,
    use_index: bool,
    neg_db: &Storage,
    delta_at: Option<usize>,
    range: Option<(usize, usize)>,
    binding: &mut Vec<Option<Sym>>,
    metrics: &mut EvalMetrics,
    emit: &mut impl FnMut(RelId, SymTuple),
) {
    if idx == rule.pos.len() {
        // Check inequalities.
        for (l, r) in &rule.ineq {
            if slot_sym(l, binding) == slot_sym(r, binding) {
                return;
            }
        }
        // Check negative atoms (all slots bound by safety).
        for atom in &rule.neg {
            let row: SymTuple = atom.slots.iter().map(|s| slot_sym(s, binding)).collect();
            if neg_db.contains(atom.relation, &row) {
                return;
            }
        }
        let head: SymTuple = rule
            .head
            .slots
            .iter()
            .map(|s| slot_sym(s, binding))
            .collect();
        metrics.derivations += 1;
        emit(rule.head.relation, head);
        return;
    }
    let atom = &rule.pos[idx];
    let Some(relation) = full.relation(atom.relation) else {
        return;
    };
    let scanning_delta = delta_at == Some(idx);
    // Fast paths: probe with the bound symbol at the probe position
    // (never when this atom scans the small delta region). Leading-column
    // probes merge-join the sorted batches; other positions probe the
    // hash index.
    if !scanning_delta && use_index {
        if let Some(p) = atom.probe {
            let s = match atom.slots[p] {
                Slot::Const(c) => c,
                Slot::Var(i) => binding[i].expect("probe position must be bound"),
            };
            if atom.strategy == JoinStrategy::Merge {
                debug_assert_eq!(p, 0, "merge join probes the leading column");
                debug_assert!(
                    idx > 0 || range.is_none(),
                    "partitioned job must not take the outer probe path"
                );
                metrics.merge_probes += 1;
                for row in relation.probe_sorted_iter(s) {
                    metrics.merge_hits += 1;
                    if row.len() != atom.slots.len() {
                        continue;
                    }
                    if let Some(newly) = unify(atom, row, binding) {
                        eval_pos(
                            rule,
                            idx + 1,
                            full,
                            use_index,
                            neg_db,
                            delta_at,
                            range,
                            binding,
                            metrics,
                            emit,
                        );
                        undo(binding, &newly);
                    }
                }
                return;
            }
            if let Some(ids) = relation.probe(p, s) {
                // The parallel planner never partitions a unit whose
                // outermost atom takes the probe path: it would issue
                // one probe per partition instead of one.
                debug_assert!(
                    idx > 0 || range.is_none(),
                    "partitioned job must not take the outer probe path"
                );
                metrics.index_probes += 1;
                metrics.index_hits += ids.len();
                for &id in ids {
                    let row = relation.row(id);
                    if row.len() != atom.slots.len() {
                        continue;
                    }
                    if let Some(newly) = unify(atom, row, binding) {
                        eval_pos(
                            rule,
                            idx + 1,
                            full,
                            use_index,
                            neg_db,
                            delta_at,
                            range,
                            binding,
                            metrics,
                            emit,
                        );
                        undo(binding, &newly);
                    }
                }
                return;
            }
        }
    }
    let mut rows = if scanning_delta {
        relation.delta_rows()
    } else {
        relation.rows()
    };
    if idx == 0 {
        if let Some((start, end)) = range {
            rows = &rows[start.min(rows.len())..end.min(rows.len())];
        }
    }
    for row in rows {
        if row.len() != atom.slots.len() {
            continue;
        }
        if let Some(newly) = unify(atom, row, binding) {
            eval_pos(
                rule,
                idx + 1,
                full,
                use_index,
                neg_db,
                delta_at,
                range,
                binding,
                metrics,
                emit,
            );
            undo(binding, &newly);
        }
    }
}

fn compile_program(program: &Program, table: &mut SymbolTable, reorder: bool) -> Vec<CompiledRule> {
    let idb: BTreeSet<RelName> = program.idb().names().cloned().collect();
    program
        .rules()
        .iter()
        .map(|r| {
            if reorder {
                compile_rule_ordered(r, table, |rel| idb.contains(rel))
            } else {
                compile_rule(r, table, |rel| idb.contains(rel))
            }
        })
        .collect()
}

/// Compute the minimal fixpoint of a semi-positive program over `db`,
/// **naively**: every iteration re-derives everything. Kept as the
/// baseline for the `datalog_eval` benchmark.
pub fn fixpoint_naive(program: &Program, db: &mut Database) -> FixpointStats {
    let compiled = compile_program(program, &mut db.symbols().clone().write(), false);
    let mut metrics = EvalMetrics::default();
    loop {
        metrics.iterations += 1;
        let mut fresh: Vec<(RelId, SymTuple)> = Vec::new();
        {
            let storage = db.storage();
            for rule in &compiled {
                eval_rule(
                    rule,
                    storage,
                    false,
                    storage,
                    None,
                    None,
                    &mut metrics,
                    &mut |rel, row| {
                        if !storage.contains(rel, &row) {
                            fresh.push((rel, row));
                        }
                    },
                );
            }
        }
        let mut added = 0;
        for (rel, row) in fresh {
            let bytes = row.len() * std::mem::size_of::<Sym>();
            if db.storage_mut().insert(rel, row) {
                added += 1;
                metrics.bytes_moved += bytes;
            }
        }
        metrics.new_facts += added;
        if added == 0 {
            return metrics;
        }
    }
}

/// Compute the minimal fixpoint of a semi-positive program over `db` using
/// **semi-naive** evaluation: recursive rules only join against the delta
/// of the previous iteration.
pub fn fixpoint_seminaive(program: &Program, db: &mut Database) -> FixpointStats {
    fixpoint_seminaive_impl(program, db, None, EvalOptions::default())
}

/// As [`fixpoint_seminaive`], reporting per-iteration and per-rule spans
/// plus derivation counters to `obs`.
pub fn fixpoint_seminaive_obs(program: &Program, db: &mut Database, obs: &Obs) -> FixpointStats {
    let cp = CompiledProgram::new(
        program,
        &mut db.symbols().clone().write(),
        EvalOptions::default(),
    );
    fixpoint_compiled_impl(&cp, db, None, obs)
}

/// Semi-naive fixpoint with explicit [`EvalOptions`] — the entry point for
/// the `datalog_eval` ablation benchmark.
pub fn fixpoint_seminaive_with(
    program: &Program,
    db: &mut Database,
    options: EvalOptions,
) -> FixpointStats {
    fixpoint_seminaive_impl(program, db, None, options)
}

/// As [`fixpoint_seminaive_with`], reporting spans and counters to
/// `obs` — the entry point for parameterized (e.g. data-parallel)
/// evaluation with tracing.
pub fn fixpoint_seminaive_with_obs(
    program: &Program,
    db: &mut Database,
    options: EvalOptions,
    obs: &Obs,
) -> FixpointStats {
    let cp = CompiledProgram::new(program, &mut db.symbols().clone().write(), options);
    fixpoint_compiled_impl(&cp, db, None, obs)
}

/// Semi-naive fixpoint with *frozen negation*: every negative body atom is
/// checked against `frozen` instead of the evolving database. This is the
/// `Γ` operator of the well-founded alternating fixpoint
/// ([`crate::wellfounded`]); the program need not be semi-positive.
/// `frozen` must share `db`'s symbol table.
pub fn fixpoint_seminaive_frozen(
    program: &Program,
    db: &mut Database,
    frozen: &Database,
) -> FixpointStats {
    fixpoint_seminaive_impl(program, db, Some(frozen), EvalOptions::default())
}

/// A semi-positive program compiled once against a symbol table, for
/// repeated fixpoint evaluation. [`crate::query::DatalogQuery`] holds one
/// per stratum: the monotonicity falsifiers evaluate the same query
/// thousands of times, and per-eval recompilation dominates small inputs.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    rules: Vec<CompiledRule>,
    indexes: Vec<(RelId, usize)>,
    /// Relations merge-joined on their leading column — sealed into
    /// sorted batches at fixpoint entry and at every watermark boundary.
    sorted: Vec<RelId>,
    options: EvalOptions,
    /// Per-rule span labels (`<head-relation>#<rule-index>`), computed at
    /// compile time so tracing never consults the symbol table.
    labels: Vec<String>,
    /// Per-rule plan descriptions (atom order and join strategy per
    /// atom), rendered at compile time for `--dump-plan` and tracing.
    plan: Vec<String>,
    /// Positive atoms per strategy: `[merge, hash, scan]` counts,
    /// reported as `eval.plan` counters.
    strategy_counts: [usize; 3],
}

impl CompiledProgram {
    /// Compile `program` against `table` with the given options.
    pub fn new(
        program: &Program,
        table: &mut SymbolTable,
        options: EvalOptions,
    ) -> CompiledProgram {
        let rules = compile_program(program, table, options.reorder);
        let (indexes, sorted) = if options.index {
            (
                wanted_indexes(&rules).into_iter().collect(),
                sorted_relations(&rules).into_iter().collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let labels: Vec<String> = rules
            .iter()
            .enumerate()
            .map(|(i, r)| format!("{}#{i}", table.rel_name(r.head.relation)))
            .collect();
        let mut strategy_counts = [0usize; 3];
        let plan = rules
            .iter()
            .zip(&labels)
            .map(|(r, label)| {
                let mut parts: Vec<String> = r
                    .pos
                    .iter()
                    .map(|a| {
                        let strategy = if options.index {
                            a.strategy
                        } else {
                            JoinStrategy::Scan
                        };
                        strategy_counts[match strategy {
                            JoinStrategy::Merge => 0,
                            JoinStrategy::Hash => 1,
                            JoinStrategy::Scan => 2,
                        }] += 1;
                        match (strategy, a.probe) {
                            (JoinStrategy::Scan, _) | (_, None) => {
                                format!("{}[scan]", table.rel_name(a.relation))
                            }
                            (s, Some(p)) => format!("{}[{s}@{p}]", table.rel_name(a.relation)),
                        }
                    })
                    .collect();
                parts.extend(
                    r.neg
                        .iter()
                        .map(|a| format!("not {}[lookup]", table.rel_name(a.relation))),
                );
                format!("{label}: {}", parts.join(", "))
            })
            .collect();
        CompiledProgram {
            rules,
            indexes,
            sorted,
            options,
            labels,
            plan,
            strategy_counts,
        }
    }

    /// The span label of rule `i` (`<head-relation>#<rule-index>`).
    pub fn rule_label(&self, i: usize) -> &str {
        &self.labels[i]
    }

    /// One line per rule: evaluation order of the body atoms and the
    /// join strategy chosen for each (`merge@p` / `hash@p` / `scan`).
    pub fn plan_lines(&self) -> &[String] {
        &self.plan
    }

    /// Positive atoms per join strategy: `(merge, hash, scan)`.
    pub fn strategy_counts(&self) -> (usize, usize, usize) {
        let [m, h, s] = self.strategy_counts;
        (m, h, s)
    }

    /// Set the data-parallel worker count for subsequent fixpoints.
    /// Thread count is a pure driver knob — it never affects
    /// compilation, and any value yields byte-identical results.
    pub fn set_eval_threads(&mut self, n: usize) {
        self.options.eval_threads = n.max(1);
    }

    /// The data-parallel worker count this program will run with.
    pub fn eval_threads(&self) -> usize {
        self.options.eval_threads
    }

    /// The compiled rules — the incremental maintenance engine walks
    /// them directly for its overdelete/rederive delta joins.
    pub(crate) fn rules(&self) -> &[CompiledRule] {
        &self.rules
    }
}

/// Semi-naive fixpoint of a precompiled program. `db` must use the table
/// the program was compiled against.
pub fn fixpoint_seminaive_compiled(cp: &CompiledProgram, db: &mut Database) -> FixpointStats {
    fixpoint_compiled_impl(cp, db, None, &Obs::noop())
}

/// As [`fixpoint_seminaive_compiled`], reporting per-iteration and
/// per-rule spans plus derivation counters to `obs`.
pub fn fixpoint_seminaive_compiled_obs(
    cp: &CompiledProgram,
    db: &mut Database,
    obs: &Obs,
) -> FixpointStats {
    fixpoint_compiled_impl(cp, db, None, obs)
}

/// As [`fixpoint_seminaive_compiled`], with every negative body atom
/// checked against `frozen` (the `Γ` operator of the well-founded
/// alternating fixpoint). `frozen` must share `db`'s symbol table.
pub fn fixpoint_seminaive_frozen_compiled(
    cp: &CompiledProgram,
    db: &mut Database,
    frozen: &Database,
) -> FixpointStats {
    fixpoint_compiled_impl(cp, db, Some(frozen), &Obs::noop())
}

/// As [`fixpoint_seminaive_frozen_compiled`], reporting to `obs`.
pub fn fixpoint_seminaive_frozen_compiled_obs(
    cp: &CompiledProgram,
    db: &mut Database,
    frozen: &Database,
    obs: &Obs,
) -> FixpointStats {
    fixpoint_compiled_impl(cp, db, Some(frozen), obs)
}

fn fixpoint_seminaive_impl(
    program: &Program,
    db: &mut Database,
    frozen: Option<&Database>,
    options: EvalOptions,
) -> FixpointStats {
    let cp = CompiledProgram::new(program, &mut db.symbols().clone().write(), options);
    fixpoint_compiled_impl(&cp, db, frozen, &Obs::noop())
}

/// One unit of evaluation work inside a fixpoint round: a rule
/// (optionally restricted to one delta position), over an optional
/// contiguous `[start, end)` slice of its outermost atom's row scan.
///
/// The planner emits jobs in sequential evaluation order (rule index,
/// then delta position, then partition index); merging worker buffers
/// in job order therefore reproduces the exact sequential emission
/// order — see the module docs.
#[derive(Debug, Clone, Copy)]
struct EvalJob {
    rule: usize,
    delta_at: Option<usize>,
    range: Option<(usize, usize)>,
}

/// Plan the jobs for one `(rule, delta position)` unit: a single
/// unpartitioned job when partitioning is pointless or would change the
/// metrics (outer probe path), otherwise `min(threads, rows)`
/// contiguous chunks of the outermost atom's scan whose sizes differ by
/// at most one.
fn plan_unit(
    jobs: &mut Vec<EvalJob>,
    rule_idx: usize,
    rule: &CompiledRule,
    delta_at: Option<usize>,
    storage: &Storage,
    use_index: bool,
    threads: usize,
) {
    let scan_len = (|| {
        if threads <= 1 {
            return None;
        }
        let atom0 = rule.pos.first()?;
        let scanning_delta = delta_at == Some(0);
        // An outer index probe is a single event: splitting the unit
        // would issue one probe per partition and break the metrics
        // byte-identity guarantee. Keep such units whole.
        if !scanning_delta && use_index && atom0.probe.is_some() {
            return None;
        }
        let relation = storage.relation(atom0.relation)?;
        let len = if scanning_delta {
            relation.delta_rows().len()
        } else {
            relation.len()
        };
        (len >= 2).then_some(len)
    })();
    match scan_len {
        None => jobs.push(EvalJob {
            rule: rule_idx,
            delta_at,
            range: None,
        }),
        Some(len) => {
            let parts = threads.min(len);
            let (base, rem) = (len / parts, len % parts);
            let mut start = 0;
            for p in 0..parts {
                let end = start + base + usize::from(p < rem);
                jobs.push(EvalJob {
                    rule: rule_idx,
                    delta_at,
                    range: Some((start, end)),
                });
                start = end;
            }
        }
    }
}

/// Run one job, appending derived-and-not-yet-stored rows to `sink`.
fn run_job(
    cp: &CompiledProgram,
    job: &EvalJob,
    storage: &Storage,
    neg: &Storage,
    metrics: &mut EvalMetrics,
    sink: &mut Vec<(RelId, SymTuple)>,
) {
    eval_rule(
        &cp.rules[job.rule],
        storage,
        cp.options.index,
        neg,
        job.delta_at,
        job.range,
        metrics,
        &mut |rel, row| {
            if !storage.contains(rel, &row) {
                sink.push((rel, row));
            }
        },
    );
}

/// What one parallel job hands back: its index in the round's job
/// order, the facts it derived, and the counters it accumulated.
type JobResult = (usize, Vec<(RelId, SymTuple)>, EvalMetrics);

/// Execute one round's jobs, extending `pending` with the derivations
/// in sequential order. Sequential (`eval_threads` ≤ 1) runs inline
/// with the classic per-rule spans; parallel fans the jobs out to
/// scoped worker threads over a work-stealing counter and merges the
/// per-job buffers and metrics back in job order.
fn run_round(
    cp: &CompiledProgram,
    storage: &Storage,
    neg: &Storage,
    jobs: &[EvalJob],
    pending: &mut Vec<(RelId, SymTuple)>,
    metrics: &mut EvalMetrics,
    obs: &Obs,
) {
    if cp.options.eval_threads <= 1 {
        let mut k = 0;
        while k < jobs.len() {
            let rule_idx = jobs[k].rule;
            let before = metrics.derivations;
            let _rule_span = obs.span("eval.rule", || cp.labels[rule_idx].clone());
            while k < jobs.len() && jobs[k].rule == rule_idx {
                run_job(cp, &jobs[k], storage, neg, metrics, pending);
                k += 1;
            }
            if obs.enabled() {
                obs.counter(
                    "eval.rule",
                    &cp.labels[rule_idx],
                    (metrics.derivations - before) as u64,
                );
            }
        }
        return;
    }
    let _par_span = obs.span("eval.parallel", || format!("jobs#{}", jobs.len()));
    if obs.enabled() {
        obs.counter("eval.parallel", "partitions", jobs.len() as u64);
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<JobResult> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cp.options.eval_threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= jobs.len() {
                            break;
                        }
                        let mut job_metrics = EvalMetrics::default();
                        let mut buf = Vec::new();
                        run_job(cp, &jobs[j], storage, neg, &mut job_metrics, &mut buf);
                        local.push((j, buf, job_metrics));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("eval worker panicked"))
            .collect()
    });
    // Deterministic merge: every job index occurs exactly once, and job
    // order equals sequential evaluation order, so after sorting the
    // concatenated buffers reproduce the sequential `pending` exactly
    // (insertion order, delta regions and all counters included).
    results.sort_unstable_by_key(|&(j, _, _)| j);
    let mut rule_derivations = 0;
    let mut current_rule = usize::MAX;
    for (j, buf, job_metrics) in results {
        let rule_idx = jobs[j].rule;
        if rule_idx != current_rule {
            if current_rule != usize::MAX && obs.enabled() {
                obs.counter(
                    "eval.rule",
                    &cp.labels[current_rule],
                    rule_derivations as u64,
                );
            }
            current_rule = rule_idx;
            rule_derivations = 0;
        }
        rule_derivations += job_metrics.derivations;
        metrics.merge(&job_metrics);
        pending.extend(buf);
    }
    if current_rule != usize::MAX && obs.enabled() {
        obs.counter(
            "eval.rule",
            &cp.labels[current_rule],
            rule_derivations as u64,
        );
    }
}

fn fixpoint_compiled_impl(
    cp: &CompiledProgram,
    db: &mut Database,
    frozen: Option<&Database>,
    obs: &Obs,
) -> FixpointStats {
    if let Some(f) = frozen {
        assert!(
            db.symbols().same_table(f.symbols()),
            "frozen negation database must share the symbol table"
        );
    }
    let threads = cp.options.eval_threads.max(1);
    // Build the probe indexes once; inserts keep them current, so the
    // fixpoint loop below never rebuilds an index. Merge-joined
    // relations are sealed into sorted batches instead — here and at
    // every watermark boundary below, always on the mutating thread.
    for &(rel, pos) in &cp.indexes {
        db.storage_mut().relation_mut(rel).ensure_index(pos);
    }
    for &rel in &cp.sorted {
        db.storage_mut().relation_mut(rel).ensure_sorted();
    }
    if obs.enabled() {
        let (merge, hash, scan) = cp.strategy_counts();
        obs.counter("eval.plan", "atoms.merge", merge as u64);
        obs.counter("eval.plan", "atoms.hash", hash as u64);
        obs.counter("eval.plan", "atoms.scan", scan as u64);
    }
    let mut metrics = EvalMetrics::default();
    let mut pending: Vec<(RelId, SymTuple)> = Vec::new();
    let mut jobs: Vec<EvalJob> = Vec::new();

    // Round 0: evaluate every rule once on the initial database. This
    // covers non-recursive rules completely (their inputs never change
    // within this stratum) and seeds the delta for recursive ones.
    metrics.iterations += 1;
    {
        let _iter_span = obs.span("eval", || "iteration#0".into());
        let storage = db.storage();
        let neg = frozen.map_or(storage, |f| f.storage());
        for (i, rule) in cp.rules.iter().enumerate() {
            plan_unit(&mut jobs, i, rule, None, storage, cp.options.index, threads);
        }
        run_round(cp, storage, neg, &jobs, &mut pending, &mut metrics, obs);
    }

    let mut batch: Vec<SymTuple> = Vec::new();
    loop {
        // Rows inserted now form the next delta region: move every
        // watermark to the current end first, then insert. Consecutive
        // same-relation runs go through one `insert_batch` each, so the
        // relation is resolved once per run instead of once per row.
        db.storage_mut().mark_deltas();
        let mut added = 0;
        let mut drained = pending.drain(..).peekable();
        while let Some((rel, row)) = drained.next() {
            batch.push(row);
            while drained.peek().is_some_and(|&(r, _)| r == rel) {
                batch.push(drained.next().expect("peeked").1);
            }
            let (new_rows, bytes) = db.storage_mut().insert_batch(rel, batch.drain(..));
            added += new_rows;
            metrics.bytes_moved += bytes;
        }
        drop(drained);
        metrics.new_facts += added;
        if obs.enabled() {
            obs.histogram("eval", "iteration_new_facts", added as u64);
        }
        if added == 0 {
            obs.counter("eval", "derivations", metrics.derivations as u64);
            obs.counter("eval", "new_facts", metrics.new_facts as u64);
            obs.counter("eval", "iterations", metrics.iterations as u64);
            obs.counter("eval", "index_probes", metrics.index_probes as u64);
            obs.counter("eval", "merge_probes", metrics.merge_probes as u64);
            return metrics;
        }
        // Re-seal the merge-joined relations so the sorted batches cover
        // the rows just inserted (including the new delta region): merge
        // probes in the round below are then pure binary searches with
        // an empty unsealed tail.
        for &rel in &cp.sorted {
            db.storage_mut().relation_mut(rel).ensure_sorted();
        }
        // Delta round: recursive rules only, one delta position at a time.
        // Dedup across repeated relations at multiple positions is handled
        // by the membership guard on `pending` insertion.
        metrics.iterations += 1;
        let iter = metrics.iterations;
        let _iter_span = obs.span("eval", || format!("iteration#{}", iter - 1));
        let storage = db.storage();
        let neg = frozen.map_or(storage, |f| f.storage());
        jobs.clear();
        for (i, rule) in cp.rules.iter().enumerate() {
            if !rule.is_recursive() {
                continue;
            }
            for (pos_idx, &is_rec) in rule.recursive_pos.iter().enumerate() {
                if is_rec {
                    plan_unit(
                        &mut jobs,
                        i,
                        rule,
                        Some(pos_idx),
                        storage,
                        cp.options.index,
                        threads,
                    );
                }
            }
        }
        run_round(cp, storage, neg, &jobs, &mut pending, &mut metrics, obs);
    }
}

/// A program compiled once against a symbol table, for repeated one-shot
/// derivation (the transducer simulator's per-transition step).
#[derive(Debug, Clone)]
pub struct RuleSet {
    compiled: Vec<CompiledRule>,
}

impl RuleSet {
    /// Compile every rule of `program` against `table` (original body
    /// order; one-shot derivation gains little from reordering).
    pub fn new(program: &Program, table: &mut SymbolTable) -> RuleSet {
        RuleSet {
            compiled: compile_program(program, table, false),
        }
    }

    /// Derive all facts firing on `db` directly (no fixpoint iteration),
    /// passing each derived row to `emit`. `db` must use the table this
    /// rule set was compiled against.
    pub fn derive(
        &self,
        db: &Database,
        metrics: &mut EvalMetrics,
        emit: &mut impl FnMut(RelId, SymTuple),
    ) {
        let storage = db.storage();
        for rule in &self.compiled {
            eval_rule(rule, storage, false, storage, None, None, metrics, emit);
        }
    }
}

/// Evaluate a program's rules against a fixed database *without* fixpoint
/// iteration: derive all facts firing on `db` directly. Used for one-shot
/// queries; the transducer simulator keeps a precompiled [`RuleSet`]
/// instead of calling this per transition.
pub fn derive_once(program: &Program, db: &Database) -> Database {
    let rules = RuleSet::new(program, &mut db.symbols().clone().write());
    let mut out = Database::with_symbols(db.symbols().clone());
    let mut metrics = EvalMetrics::default();
    rules.derive(db, &mut metrics, &mut |rel, row| {
        out.insert(rel, row);
    });
    out
}

/// A rule body compiled once for repeated valuation enumeration — the
/// extension hook used by `calm-ilog` to construct Skolem terms for
/// invention heads. Accepts rules whose *head* contains the invention
/// symbol, since only the body is evaluated.
#[derive(Debug, Clone)]
pub struct ValuationQuery {
    vars: Vec<Var>,
    compiled: CompiledRule,
}

impl ValuationQuery {
    /// Compile the body of `rule` against `table`.
    pub fn new(rule: &Rule, table: &mut SymbolTable) -> ValuationQuery {
        use crate::ast::{Atom, Term};
        let vars: Vec<Var> = rule.positive_variables().into_iter().collect();
        let synthetic = Rule {
            head: Atom::new(
                "__valuation",
                vars.iter().map(|v| Term::Var(v.clone())).collect(),
            ),
            pos: rule.pos.clone(),
            neg: rule.neg.clone(),
            ineq: rule.ineq.clone(),
        };
        let compiled = compile_rule(&synthetic, table, |_| false);
        ValuationQuery { vars, compiled }
    }

    /// The body variables, in the order of each valuation row.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Enumerate every satisfying valuation of the body against `db`
    /// (negation also checked against `db`), deduplicated and in
    /// deterministic (interning) order.
    pub fn eval(&self, db: &Database, metrics: &mut EvalMetrics) -> Vec<SymTuple> {
        let storage = db.storage();
        let mut out: BTreeSet<SymTuple> = BTreeSet::new();
        eval_rule(
            &self.compiled,
            storage,
            false,
            storage,
            None,
            None,
            metrics,
            &mut |_, row| {
                out.insert(row);
            },
        );
        out.into_iter().collect()
    }
}

/// Enumerate every satisfying valuation of a rule's body against `db`
/// (negation also checked against `db`). Returns the valuations as
/// variable→value maps in deterministic (value) order.
///
/// Compiles the body on every call; repeated evaluation should hold a
/// [`ValuationQuery`] instead.
pub fn body_valuations(rule: &Rule, db: &Database) -> Vec<std::collections::BTreeMap<Var, Value>> {
    let q = ValuationQuery::new(rule, &mut db.symbols().clone().write());
    let mut metrics = EvalMetrics::default();
    let rows = q.eval(db, &mut metrics);
    let table = db.symbols().read();
    let ordered: BTreeSet<Vec<Value>> = rows
        .iter()
        .map(|row| row.iter().map(|&s| table.value(s).clone()).collect())
        .collect();
    ordered
        .into_iter()
        .map(|t| q.vars().iter().cloned().zip(t).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use calm_common::fact::fact;
    use calm_common::generator::path;
    use calm_common::instance::Instance;

    fn tc() -> Program {
        parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap()
    }

    #[test]
    fn tc_on_path_both_engines_agree() {
        let input = path(5);
        let mut db1 = Database::from_instance(&input);
        let mut db2 = Database::from_instance(&input);
        let s1 = fixpoint_naive(&tc(), &mut db1);
        let s2 = fixpoint_seminaive(&tc(), &mut db2);
        assert_eq!(db1.to_instance(), db2.to_instance());
        // Path with 5 edges: TC has 5+4+3+2+1 = 15 pairs.
        let out = db1.to_instance();
        assert_eq!(out.relation_len("T"), 15);
        // Semi-naive does strictly fewer derivations on a path.
        assert!(s2.derivations <= s1.derivations);
        assert!(s1.new_facts == s2.new_facts);
    }

    #[test]
    fn indexed_run_probes_instead_of_scanning() {
        // TC probes E on its leading column: the planner chooses the
        // merge join over sorted batches, never the hash index.
        let input = path(8);
        let mut db = Database::from_instance(&input);
        let s = fixpoint_seminaive(&tc(), &mut db);
        assert!(s.merge_probes > 0, "optimized run must merge-join");
        assert!(s.merge_hits > 0);
        assert_eq!(s.index_probes, 0, "leading-column probes never hash");
        assert!(s.bytes_moved > 0);
        // The baseline neither merges nor touches an index.
        let mut db2 = Database::from_instance(&input);
        let s2 = fixpoint_seminaive_with(&tc(), &mut db2, EvalOptions::BASELINE);
        assert_eq!(s2.index_probes, 0);
        assert_eq!(s2.index_hits, 0);
        assert_eq!(s2.merge_probes, 0);
        assert_eq!(s2.merge_hits, 0);
        assert_eq!(db.to_instance(), db2.to_instance());
    }

    #[test]
    fn non_leading_probe_takes_the_hash_path() {
        // F is probed at position 1 (y bound by E), so the planner falls
        // back to the hash index for it.
        let p = parse_program("O(x,y) :- E(x,y), F(z,y).").unwrap();
        let input = Instance::from_facts([
            fact("E", [1, 2]),
            fact("E", [3, 4]),
            fact("F", [7, 2]),
            fact("F", [8, 9]),
        ]);
        let mut db = Database::from_instance(&input);
        let s = fixpoint_seminaive(&p, &mut db);
        assert!(s.index_probes > 0, "non-leading probe must use the index");
        assert!(s.index_hits > 0);
        let out = db.to_instance();
        assert_eq!(out.relation_len("O"), 1);
        assert!(out.contains(&fact("O", [1, 2])));
    }

    #[test]
    fn merge_join_matches_baseline_on_random_graphs() {
        // Differential: indexed (merge + hash) vs BASELINE (pure scans)
        // must derive the same instance on a spread of graph shapes.
        for n in [0, 1, 2, 5, 9] {
            for input in [path(n), calm_common::generator::cycle(n.max(1))] {
                let mut a = Database::from_instance(&input);
                fixpoint_seminaive(&tc(), &mut a);
                let mut b = Database::from_instance(&input);
                fixpoint_seminaive_with(&tc(), &mut b, EvalOptions::BASELINE);
                assert_eq!(a.to_instance(), b.to_instance(), "diverged at n={n}");
            }
        }
    }

    #[test]
    fn negation_against_edb() {
        let p = parse_program("O(x,y) :- E(x,y), not F(x,y).").unwrap();
        let input = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3]), fact("F", [1, 2])]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        let out = db.to_instance();
        assert!(!out.contains(&fact("O", [1, 2])));
        assert!(out.contains(&fact("O", [2, 3])));
    }

    #[test]
    fn inequality_filtering() {
        let p = parse_program("O(x,y) :- E(x,y), x != y.").unwrap();
        let input = Instance::from_facts([fact("E", [1, 1]), fact("E", [1, 2])]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        let out = db.to_instance();
        assert_eq!(out.relation_len("O"), 1);
        assert!(out.contains(&fact("O", [1, 2])));
    }

    #[test]
    fn constants_in_rules() {
        let p = parse_program("O(x) :- E(x, 3).").unwrap();
        let input = Instance::from_facts([fact("E", [1, 3]), fact("E", [2, 4])]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        assert_eq!(db.to_instance().relation_len("O"), 1);
    }

    #[test]
    fn cycle_tc_is_complete_graph() {
        let input = calm_common::generator::cycle(4);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&tc(), &mut db);
        assert_eq!(db.to_instance().relation_len("T"), 16);
    }

    #[test]
    fn derive_once_no_recursion() {
        let input = path(3);
        let db = Database::from_instance(&input);
        let out = derive_once(&tc(), &db);
        // Only the base rule fires (T empty in input db).
        assert_eq!(out.to_instance().relation_len("T"), 3);
    }

    #[test]
    fn empty_input_empty_output() {
        let mut db = Database::new();
        let stats = fixpoint_seminaive(&tc(), &mut db);
        assert!(db.is_empty());
        assert_eq!(stats.new_facts, 0);
    }

    #[test]
    fn body_valuations_enumerates_matches() {
        let r = crate::parser::parse_rule("O(x) :- E(x,y), not F(y), x != y.").unwrap();
        let db = Database::from_instance(&Instance::from_facts([
            fact("E", [1, 2]),
            fact("E", [3, 3]), // killed by x != y
            fact("E", [4, 5]),
            fact("F", [5]), // kills E(4,5)
        ]));
        let vals = body_valuations(&r, &db);
        assert_eq!(vals.len(), 1);
        let m = &vals[0];
        assert_eq!(m[&Var::new("x")], calm_common::v(1));
        assert_eq!(m[&Var::new("y")], calm_common::v(2));
    }

    /// Row-level (insertion-order) equality of two databases over
    /// *separately interned but identically constructed* symbol tables.
    fn assert_byte_identical(a: &Database, b: &Database) {
        assert_eq!(a.to_instance(), b.to_instance());
        let (sa, sb) = (a.storage(), b.storage());
        let ids: Vec<_> = sa.rel_ids().collect();
        assert_eq!(ids.len(), sb.rel_ids().count());
        for r in ids {
            let rows_a = sa.relation(r).map_or(&[][..], |rel| rel.rows());
            let rows_b = sb.relation(r).map_or(&[][..], |rel| rel.rows());
            assert_eq!(rows_a, rows_b, "insertion order diverged in relation {r:?}");
        }
    }

    #[test]
    fn parallel_fixpoint_is_byte_identical_to_sequential() {
        let input = calm_common::generator::cycle(12);
        let mut seq = Database::from_instance(&input);
        let m_seq = fixpoint_seminaive(&tc(), &mut seq);
        for threads in [2, 3, 8] {
            let mut par = Database::from_instance(&input);
            let m_par = fixpoint_seminaive_with(
                &tc(),
                &mut par,
                EvalOptions::default().with_eval_threads(threads),
            );
            assert_eq!(m_seq, m_par, "EvalMetrics diverged at T={threads}");
            assert_byte_identical(&seq, &par);
        }
    }

    #[test]
    fn parallel_fixpoint_matches_baseline_options_too() {
        // No indexes -> every unit is partitionable (no probe-path
        // exception); the scan-only driver must still be identical.
        let input = path(9);
        let mut seq = Database::from_instance(&input);
        let m_seq = fixpoint_seminaive_with(&tc(), &mut seq, EvalOptions::BASELINE);
        let mut par = Database::from_instance(&input);
        let m_par =
            fixpoint_seminaive_with(&tc(), &mut par, EvalOptions::BASELINE.with_eval_threads(8));
        assert_eq!(m_seq, m_par);
        assert_byte_identical(&seq, &par);
        assert_eq!(m_par.index_probes, 0);
    }

    #[test]
    fn parallel_fixpoint_with_negation_and_ineq() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x,y) :- T(x,y), not F(x,y), x != y.",
        )
        .unwrap();
        let mut facts = vec![fact("F", [1, 3])];
        for i in 1..8 {
            facts.push(fact("E", [i, i + 1]));
        }
        let input = Instance::from_facts(facts);
        let mut seq = Database::from_instance(&input);
        let m_seq = fixpoint_seminaive(&p, &mut seq);
        let mut par = Database::from_instance(&input);
        let m_par =
            fixpoint_seminaive_with(&p, &mut par, EvalOptions::default().with_eval_threads(4));
        assert_eq!(m_seq, m_par);
        assert_byte_identical(&seq, &par);
        assert!(!par.to_instance().contains(&fact("O", [1, 3])));
    }

    #[test]
    fn eval_threads_zero_is_clamped_to_sequential() {
        assert_eq!(EvalOptions::default().with_eval_threads(0).eval_threads, 1);
        let mut cp_db = Database::from_instance(&path(4));
        let mut cp = CompiledProgram::new(
            &tc(),
            &mut cp_db.symbols().clone().write(),
            EvalOptions::default(),
        );
        cp.set_eval_threads(0);
        assert_eq!(cp.eval_threads(), 1);
        fixpoint_seminaive_compiled(&cp, &mut cp_db);
        assert_eq!(cp_db.to_instance().relation_len("T"), 10);
    }

    #[test]
    fn multiple_recursive_atoms_in_one_rule() {
        // Reachability by doubling: D(x,z) :- D(x,y), D(y,z).
        let p = parse_program(
            "D(x,y) :- E(x,y).\n\
             D(x,z) :- D(x,y), D(y,z).",
        )
        .unwrap();
        let input = path(6);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        assert_eq!(db.to_instance().relation_len("D"), 21); // 6+5+..+1
    }
}
