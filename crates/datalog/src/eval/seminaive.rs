//! Fixpoint evaluation of semi-positive programs: naive and semi-naive.
//!
//! Both compute the minimal fixpoint of the immediate consequence operator
//! `T_P` (Section 2). Negative atoms are only consulted against relations
//! that are fixed during the fixpoint (edb or lower strata), which the
//! stratified driver guarantees.

use super::compile::{compile_rule, compile_rule_ordered, CompiledAtom, CompiledRule, Slot};
use super::database::Database;
use crate::program::Program;
use calm_common::fact::RelName;
use calm_common::instance::Tuple;
use calm_common::value::Value;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Evaluation options: the ablation knobs benchmarked by
/// `calm-bench`'s `datalog_eval` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Greedily reorder positive body atoms (join planning).
    pub reorder: bool,
    /// Build per-iteration hash indexes on the probe positions.
    pub index: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            reorder: true,
            index: true,
        }
    }
}

impl EvalOptions {
    /// The unoptimized baseline (original body order, full scans).
    pub const BASELINE: EvalOptions = EvalOptions {
        reorder: false,
        index: false,
    };
}

/// Per-iteration hash indexes: `(relation, position) → value → tuples`.
/// Rebuilt whenever the underlying database grows (cheap relative to the
/// scans they save; see the `datalog_eval` bench).
#[derive(Debug, Default)]
struct Indexes {
    maps: HashMap<(RelName, usize), HashMap<Value, Vec<Tuple>>>,
}

impl Indexes {
    fn build(db: &Database, wanted: &BTreeSet<(RelName, usize)>) -> Indexes {
        let mut maps: HashMap<(RelName, usize), HashMap<Value, Vec<Tuple>>> = HashMap::new();
        for (rel, pos) in wanted {
            let mut map: HashMap<Value, Vec<Tuple>> = HashMap::new();
            if let Some(tuples) = db.tuples(rel) {
                for t in tuples {
                    if let Some(v) = t.get(*pos) {
                        map.entry(v.clone()).or_default().push(t.clone());
                    }
                }
            }
            maps.insert((rel.clone(), *pos), map);
        }
        Indexes { maps }
    }

    fn probe(&self, rel: &RelName, pos: usize, val: &Value) -> Option<&[Tuple]> {
        self.maps
            .get(&(rel.clone(), pos))
            .map(|m| m.get(val).map_or(&[][..], Vec::as_slice))
    }
}

/// The `(relation, position)` pairs the compiled rules will probe.
fn wanted_indexes(rules: &[CompiledRule]) -> BTreeSet<(RelName, usize)> {
    let mut out = BTreeSet::new();
    for rule in rules {
        for atom in &rule.pos {
            if let Some(p) = atom.probe {
                out.insert((atom.relation.clone(), p));
            }
        }
    }
    out
}

/// Statistics of one fixpoint run (used by benchmarks and tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Number of iterations until the fixpoint was reached.
    pub iterations: usize,
    /// Total number of (not necessarily new) facts derived.
    pub derivations: usize,
    /// Number of new facts added to the database.
    pub new_facts: usize,
}

/// Match one atom against a tuple, extending `binding`. Returns the slots
/// that were newly bound (for backtracking), or `None` on mismatch.
fn unify(atom: &CompiledAtom, tuple: &[Value], binding: &mut [Option<Value>]) -> Option<Vec<usize>> {
    debug_assert_eq!(atom.slots.len(), tuple.len());
    let mut newly = Vec::new();
    for (slot, val) in atom.slots.iter().zip(tuple.iter()) {
        match slot {
            Slot::Const(c) => {
                if c != val {
                    undo(binding, &newly);
                    return None;
                }
            }
            Slot::Var(i) => match &binding[*i] {
                Some(existing) => {
                    if existing != val {
                        undo(binding, &newly);
                        return None;
                    }
                }
                None => {
                    binding[*i] = Some(val.clone());
                    newly.push(*i);
                }
            },
        }
    }
    Some(newly)
}

fn undo(binding: &mut [Option<Value>], newly: &[usize]) {
    for &i in newly {
        binding[i] = None;
    }
}

fn slot_value(slot: &Slot, binding: &[Option<Value>]) -> Value {
    match slot {
        Slot::Const(c) => c.clone(),
        Slot::Var(i) => binding[*i]
            .clone()
            .expect("slot unbound after positive join; rule safety violated"),
    }
}

/// Evaluate a compiled rule. `delta` optionally restricts one positive
/// atom (by index) to scan the delta database instead of `full`. Negative
/// atoms are checked against `neg_db` (equal to `full` for ordinary
/// evaluation; a frozen approximation for the well-founded alternating
/// fixpoint). Derived head tuples are passed to `emit`.
fn eval_rule(
    rule: &CompiledRule,
    full: &Database,
    neg_db: &Database,
    delta: Option<(&Database, usize)>,
    emit: &mut impl FnMut(&RelName, Tuple),
) {
    let mut binding: Vec<Option<Value>> = vec![None; rule.nvars];
    eval_pos(rule, 0, full, None, neg_db, delta, &mut binding, emit);
}

fn eval_rule_indexed(
    rule: &CompiledRule,
    full: &Database,
    indexes: &Indexes,
    neg_db: &Database,
    delta: Option<(&Database, usize)>,
    emit: &mut impl FnMut(&RelName, Tuple),
) {
    let mut binding: Vec<Option<Value>> = vec![None; rule.nvars];
    eval_pos(rule, 0, full, Some(indexes), neg_db, delta, &mut binding, emit);
}

#[allow(clippy::too_many_arguments)]
fn eval_pos(
    rule: &CompiledRule,
    idx: usize,
    full: &Database,
    indexes: Option<&Indexes>,
    neg_db: &Database,
    delta: Option<(&Database, usize)>,
    binding: &mut Vec<Option<Value>>,
    emit: &mut impl FnMut(&RelName, Tuple),
) {
    if idx == rule.pos.len() {
        // Check inequalities.
        for (l, r) in &rule.ineq {
            if slot_value(l, binding) == slot_value(r, binding) {
                return;
            }
        }
        // Check negative atoms (all slots bound by safety).
        for atom in &rule.neg {
            let tuple: Tuple = atom.slots.iter().map(|s| slot_value(s, binding)).collect();
            if neg_db.contains(&atom.relation, &tuple) {
                return;
            }
        }
        let head: Tuple = rule
            .head
            .slots
            .iter()
            .map(|s| slot_value(s, binding))
            .collect();
        emit(&rule.head.relation, head);
        return;
    }
    let atom = &rule.pos[idx];
    let scanning_delta = matches!(delta, Some((_, at)) if at == idx);
    // Fast path: probe the hash index with the bound value at the probe
    // position (never when this atom scans the small delta set).
    if !scanning_delta {
        if let (Some(indexes), Some(p)) = (indexes, atom.probe) {
            let val = match &atom.slots[p] {
                Slot::Const(c) => c.clone(),
                Slot::Var(i) => match &binding[*i] {
                    Some(v) => v.clone(),
                    None => unreachable!("probe position must be bound"),
                },
            };
            if let Some(candidates) = indexes.probe(&atom.relation, p, &val) {
                for tuple in candidates {
                    if tuple.len() != atom.slots.len() {
                        continue;
                    }
                    if let Some(newly) = unify(atom, tuple, binding) {
                        eval_pos(rule, idx + 1, full, Some(indexes), neg_db, delta, binding, emit);
                        undo(binding, &newly);
                    }
                }
                return;
            }
        }
    }
    let source = match delta {
        Some((d, at)) if at == idx => d,
        _ => full,
    };
    let Some(tuples) = source.tuples(&atom.relation) else {
        return;
    };
    // Iterate candidates; clone the tuple list handle implicitly via ref.
    for tuple in tuples {
        if tuple.len() != atom.slots.len() {
            continue;
        }
        if let Some(newly) = unify(atom, tuple, binding) {
            eval_pos(rule, idx + 1, full, indexes, neg_db, delta, binding, emit);
            undo(binding, &newly);
        }
    }
}

/// Compute the minimal fixpoint of a semi-positive program over `db`,
/// **naively**: every iteration re-derives everything. Kept as the
/// baseline for the `datalog_eval` benchmark.
pub fn fixpoint_naive(program: &Program, db: &mut Database) -> FixpointStats {
    let idb: BTreeSet<RelName> = program.idb().names().cloned().collect();
    let compiled: Vec<CompiledRule> = program
        .rules()
        .iter()
        .map(|r| compile_rule(r, |rel| idb.contains(rel)))
        .collect();
    let mut stats = FixpointStats::default();
    loop {
        stats.iterations += 1;
        let mut fresh: Vec<(RelName, Tuple)> = Vec::new();
        for rule in &compiled {
            eval_rule(rule, db, db, None, &mut |rel, tuple| {
                stats.derivations += 1;
                if !db.contains(rel, &tuple) {
                    fresh.push((rel.clone(), tuple));
                }
            });
        }
        let mut added = 0;
        for (rel, tuple) in fresh {
            if db.insert(&rel, tuple) {
                added += 1;
            }
        }
        stats.new_facts += added;
        if added == 0 {
            return stats;
        }
    }
}

/// Compute the minimal fixpoint of a semi-positive program over `db` using
/// **semi-naive** evaluation: recursive rules only join against the delta
/// of the previous iteration.
pub fn fixpoint_seminaive(program: &Program, db: &mut Database) -> FixpointStats {
    fixpoint_seminaive_impl(program, db, None, EvalOptions::default())
}

/// Semi-naive fixpoint with explicit [`EvalOptions`] — the entry point for
/// the `datalog_eval` ablation benchmark.
pub fn fixpoint_seminaive_with(
    program: &Program,
    db: &mut Database,
    options: EvalOptions,
) -> FixpointStats {
    fixpoint_seminaive_impl(program, db, None, options)
}

/// Semi-naive fixpoint with *frozen negation*: every negative body atom is
/// checked against `frozen` instead of the evolving database. This is the
/// `Γ` operator of the well-founded alternating fixpoint
/// ([`crate::wellfounded`]); the program need not be semi-positive.
pub fn fixpoint_seminaive_frozen(
    program: &Program,
    db: &mut Database,
    frozen: &Database,
) -> FixpointStats {
    fixpoint_seminaive_impl(program, db, Some(frozen), EvalOptions::default())
}

fn fixpoint_seminaive_impl(
    program: &Program,
    db: &mut Database,
    frozen: Option<&Database>,
    options: EvalOptions,
) -> FixpointStats {
    let idb: BTreeSet<RelName> = program.idb().names().cloned().collect();
    let compiled: Vec<CompiledRule> = program
        .rules()
        .iter()
        .map(|r| {
            if options.reorder {
                compile_rule_ordered(r, |rel| idb.contains(rel))
            } else {
                compile_rule(r, |rel| idb.contains(rel))
            }
        })
        .collect();
    let wanted = if options.index {
        wanted_indexes(&compiled)
    } else {
        BTreeSet::new()
    };
    let mut stats = FixpointStats::default();

    // Round 0: evaluate every rule once on the initial database. This
    // covers non-recursive rules completely (their inputs never change
    // within this stratum) and seeds the delta for recursive ones.
    let mut delta = Database::new();
    stats.iterations += 1;
    {
        let db_ref: &Database = db;
        let neg_db = frozen.unwrap_or(db_ref);
        let indexes = Indexes::build(db_ref, &wanted);
        for rule in &compiled {
            eval_rule_indexed(rule, db_ref, &indexes, neg_db, None, &mut |rel, tuple| {
                stats.derivations += 1;
                if !db_ref.contains(rel, &tuple) {
                    delta.insert(rel, tuple);
                }
            });
        }
    }
    stats.new_facts += db.absorb(&delta);

    // Subsequent rounds: recursive rules only, one delta position at a time.
    while !delta.is_empty() {
        stats.iterations += 1;
        let mut next_delta = Database::new();
        {
            let db_ref: &Database = db;
            let neg_db = frozen.unwrap_or(db_ref);
            let indexes = Indexes::build(db_ref, &wanted);
            for rule in compiled.iter().filter(|r| r.is_recursive()) {
                // Dedup across repeated relations at multiple positions is
                // handled by the set-semantics of `next_delta`.
                for (pos_idx, is_rec) in rule.recursive_pos.iter().enumerate() {
                    if !is_rec {
                        continue;
                    }
                    eval_rule_indexed(
                        rule,
                        db_ref,
                        &indexes,
                        neg_db,
                        Some((&delta, pos_idx)),
                        &mut |rel, tuple| {
                            stats.derivations += 1;
                            if !db_ref.contains(rel, &tuple) {
                                next_delta.insert(rel, tuple);
                            }
                        },
                    );
                }
            }
        }
        stats.new_facts += db.absorb(&next_delta);
        delta = next_delta;
    }
    stats
}

/// Evaluate a single (compiled-on-the-fly) program rule set against a fixed
/// database *without* fixpoint iteration: derive all facts firing on `db`
/// directly. Used by the transducer simulator for one-shot queries.
pub fn derive_once(program: &Program, db: &Database) -> Database {
    let idb: BTreeSet<RelName> = program.idb().names().cloned().collect();
    let mut out = Database::new();
    for r in program.rules() {
        let c = compile_rule(r, |rel| idb.contains(rel));
        eval_rule(&c, db, db, None, &mut |rel, tuple| {
            out.insert(rel, tuple);
        });
    }
    out
}

/// Enumerate every satisfying valuation of a rule's body against `db`
/// (negation also checked against `db`). Returns the valuations as
/// variable→value maps in deterministic order.
///
/// This is the extension hook used by `calm-ilog` (to construct Skolem
/// terms for invention heads) and by the transducer simulator; it accepts
/// rules whose *head* contains the invention symbol, since only the body
/// is evaluated.
pub fn body_valuations(
    rule: &crate::ast::Rule,
    db: &Database,
) -> Vec<std::collections::BTreeMap<crate::ast::Var, Value>> {
    use crate::ast::{Atom, Rule, Term, Var};
    let vars: Vec<Var> = rule.positive_variables().into_iter().collect();
    let synthetic = Rule {
        head: Atom::new(
            "__valuation",
            vars.iter().map(|v| Term::Var(v.clone())).collect(),
        ),
        pos: rule.pos.clone(),
        neg: rule.neg.clone(),
        ineq: rule.ineq.clone(),
    };
    let compiled = compile_rule(&synthetic, |_| false);
    let mut out = BTreeSet::new();
    eval_rule(&compiled, db, db, None, &mut |_, tuple| {
        out.insert(tuple);
    });
    out.into_iter()
        .map(|tuple| vars.iter().cloned().zip(tuple).collect())
        .collect()
}

/// Convenience: all tuples currently in `db` for the given relations.
pub fn collect(db: &Database, relations: &BTreeSet<RelName>) -> Vec<(RelName, Tuple)> {
    let mut out = Vec::new();
    for rel in relations {
        if let Some(tuples) = db.tuples(rel) {
            let set: &HashSet<Tuple> = tuples;
            for t in set {
                out.push((rel.clone(), t.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use calm_common::fact::fact;
    use calm_common::generator::path;
    use calm_common::instance::Instance;

    fn tc() -> Program {
        parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap()
    }

    #[test]
    fn tc_on_path_both_engines_agree() {
        let input = path(5);
        let mut db1 = Database::from_instance(&input);
        let mut db2 = Database::from_instance(&input);
        let s1 = fixpoint_naive(&tc(), &mut db1);
        let s2 = fixpoint_seminaive(&tc(), &mut db2);
        assert_eq!(db1.to_instance(), db2.to_instance());
        // Path with 5 edges: TC has 5+4+3+2+1 = 15 pairs.
        let out = db1.to_instance();
        assert_eq!(out.relation_len("T"), 15);
        // Semi-naive does strictly fewer derivations on a path.
        assert!(s2.derivations <= s1.derivations);
        assert!(s1.new_facts == s2.new_facts);
    }

    #[test]
    fn negation_against_edb() {
        let p = parse_program("O(x,y) :- E(x,y), not F(x,y).").unwrap();
        let input = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3]), fact("F", [1, 2])]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        let out = db.to_instance();
        assert!(!out.contains(&fact("O", [1, 2])));
        assert!(out.contains(&fact("O", [2, 3])));
    }

    #[test]
    fn inequality_filtering() {
        let p = parse_program("O(x,y) :- E(x,y), x != y.").unwrap();
        let input = Instance::from_facts([fact("E", [1, 1]), fact("E", [1, 2])]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        let out = db.to_instance();
        assert_eq!(out.relation_len("O"), 1);
        assert!(out.contains(&fact("O", [1, 2])));
    }

    #[test]
    fn constants_in_rules() {
        let p = parse_program("O(x) :- E(x, 3).").unwrap();
        let input = Instance::from_facts([fact("E", [1, 3]), fact("E", [2, 4])]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        assert_eq!(db.to_instance().relation_len("O"), 1);
    }

    #[test]
    fn cycle_tc_is_complete_graph() {
        let input = calm_common::generator::cycle(4);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&tc(), &mut db);
        assert_eq!(db.to_instance().relation_len("T"), 16);
    }

    #[test]
    fn derive_once_no_recursion() {
        let input = path(3);
        let db = Database::from_instance(&input);
        let out = derive_once(&tc(), &db);
        // Only the base rule fires (T empty in input db).
        assert_eq!(out.to_instance().relation_len("T"), 3);
    }

    #[test]
    fn empty_input_empty_output() {
        let mut db = Database::new();
        let stats = fixpoint_seminaive(&tc(), &mut db);
        assert!(db.is_empty());
        assert_eq!(stats.new_facts, 0);
    }

    #[test]
    fn body_valuations_enumerates_matches() {
        let r = crate::parser::parse_rule("O(x) :- E(x,y), not F(y), x != y.").unwrap();
        let db = Database::from_instance(&Instance::from_facts([
            fact("E", [1, 2]),
            fact("E", [3, 3]), // killed by x != y
            fact("E", [4, 5]),
            fact("F", [5]), // kills E(4,5)
        ]));
        let vals = body_valuations(&r, &db);
        assert_eq!(vals.len(), 1);
        let m = &vals[0];
        assert_eq!(m[&crate::ast::Var::new("x")], calm_common::v(1));
        assert_eq!(m[&crate::ast::Var::new("y")], calm_common::v(2));
    }

    #[test]
    fn multiple_recursive_atoms_in_one_rule() {
        // Reachability by doubling: D(x,z) :- D(x,y), D(y,z).
        let p = parse_program(
            "D(x,y) :- E(x,y).\n\
             D(x,z) :- D(x,y), D(y,z).",
        )
        .unwrap();
        let input = path(6);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        assert_eq!(db.to_instance().relation_len("D"), 21); // 6+5+..+1
    }
}
