//! Incremental view maintenance with retractions: DRed
//! (delete–rederive) over compiled stratified programs.
//!
//! [`apply_update_compiled`] takes a materialized [`Database`] (the
//! fixpoint of some stratified program over its old EDB), a signed
//! [`UpdateBatch`], and the per-stratum [`CompiledProgram`]s, and
//! maintains the database *in place* — no from-scratch fixpoint. The
//! contract is differential: after any interleaving of batches, the
//! database holds exactly the facts a from-scratch evaluation of the
//! final EDB would produce.
//!
//! # Why DRed and not pure counting
//!
//! The substrate keeps a per-row support count
//! ([`calm_common::storage::Relation::support`]), but our semi-naive
//! engine is *set-semantic*: delta rounds place the delta at one body
//! position at a time while the other positions range over the full
//! store, so a derivation touching two delta tuples is enumerated
//! twice, and re-derivations of already-present facts are filtered by
//! the membership guard before they could be counted. Exact derivation
//! multiplicities are therefore not recoverable from the fixpoint, and
//! counting-only maintenance would either under- or over-delete. The
//! counts act as liveness markers (tombstones), and deletion runs the
//! classic three-phase DRed instead — which is also the only sound
//! choice once stratified negation is involved:
//!
//! 1. **Overdelete**: every derivation over the *old* view that
//!    touched a removed tuple (positive atom) or a newly added tuple
//!    (negative atom) has its head tombstoned, transitively within the
//!    stratum (in-stratum recursion is purely positive — stratified
//!    negation only looks down).
//! 2. **Rederive**: each overdeleted tuple is kept deleted only if no
//!    rule re-derives it from the surviving facts (head-bound backward
//!    check, iterated to fixpoint so revived tuples can support each
//!    other).
//! 3. **Insert**: new derivations from added tuples (positive atoms)
//!    and removed tuples (negative atoms) are propagated semi-naively
//!    with explicit deltas.
//!
//! Strata are processed in order; each stratum's net changes join the
//! signed change sets consumed by the strata above it. The *old* view
//! of a relation is reconstructed from the current store plus the
//! change sets — `old(r) = (live(r) ∖ added[r]) ∪ removed[r]` — so
//! sealed sorted batches stay immutable and nothing is snapshotted.
//!
//! Maintenance is sequential; the from-scratch fixpoint is
//! byte-identical at any `eval_threads`, so the differential oracle
//! holds at any thread count.

use super::compile::CompiledRule;
use super::database::Database;
use super::seminaive::{slot_sym, undo, unify, CompiledProgram};
use calm_common::storage::{RelId, Storage, Sym, SymTuple};
use calm_common::update::UpdateBatch;
use calm_obs::Obs;
use std::collections::{HashMap, HashSet};

/// Per-relation signed change sets, carried across strata: the net
/// additions (or removals) relative to the pre-update database.
type ChangeSet = HashMap<RelId, HashSet<SymTuple>>;

/// Counters for one update-batch application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// EDB facts actually inserted (absent before).
    pub edb_inserted: usize,
    /// EDB facts actually deleted (present before).
    pub edb_deleted: usize,
    /// Derived tuples overdeleted (tombstoned) by retraction
    /// propagation, *including* those later rederived.
    pub retractions: usize,
    /// Overdeleted tuples with a surviving alternative derivation,
    /// resurrected by the rederive pass.
    pub rederivations: usize,
    /// Derived tuples newly inserted by insertion propagation.
    pub insertions: usize,
    /// Body valuations enumerated across all phases (work measure).
    pub derivations: usize,
}

impl UpdateStats {
    /// Accumulate another application's counters.
    pub fn merge(&mut self, other: &UpdateStats) {
        self.edb_inserted += other.edb_inserted;
        self.edb_deleted += other.edb_deleted;
        self.retractions += other.retractions;
        self.rederivations += other.rederivations;
        self.insertions += other.insertions;
        self.derivations += other.derivations;
    }
}

/// A readable snapshot of the database the join loop evaluates over.
enum View<'a> {
    /// The current (post-change) contents: live rows only.
    New(&'a Storage),
    /// The pre-update contents, reconstructed from the current store
    /// and the signed change sets: `old(r) = (live(r) ∖ added[r]) ∪
    /// removed[r]`.
    Old {
        storage: &'a Storage,
        added: &'a ChangeSet,
        removed: &'a ChangeSet,
    },
}

impl View<'_> {
    fn contains(&self, r: RelId, t: &[Sym]) -> bool {
        match self {
            View::New(storage) => storage.contains(r, t),
            View::Old {
                storage,
                added,
                removed,
            } => {
                if removed.get(&r).is_some_and(|s| s.contains(t)) {
                    return true;
                }
                if added.get(&r).is_some_and(|s| s.contains(t)) {
                    return false;
                }
                storage.contains(r, t)
            }
        }
    }

    /// Visit every row of `r` in this view; `f` returns `false` to stop
    /// early. Returns `false` when stopped.
    fn for_each_row(&self, r: RelId, f: &mut dyn FnMut(&[Sym]) -> bool) -> bool {
        match self {
            View::New(storage) => {
                if let Some(rel) = storage.relation(r) {
                    for row in rel.live_rows() {
                        if !f(row) {
                            return false;
                        }
                    }
                }
                true
            }
            View::Old {
                storage,
                added,
                removed,
            } => {
                let add = added.get(&r);
                if let Some(rel) = storage.relation(r) {
                    for row in rel.live_rows() {
                        if add.is_some_and(|s| s.contains(row)) {
                            continue;
                        }
                        if !f(row) {
                            return false;
                        }
                    }
                }
                if let Some(rm) = removed.get(&r) {
                    for row in rm {
                        if !f(row) {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }
}

/// Enumerate body valuations of `rule` over `view`, positive atom
/// `delta_at` (if any) drawing its candidate rows from `delta_rows`
/// instead of the view. Negative atoms and inequalities are checked at
/// the body end against `view`. `sink` receives each full binding and
/// returns `false` to stop the enumeration; `join` returns `false`
/// when stopped.
#[allow(clippy::too_many_arguments)]
fn join(
    rule: &CompiledRule,
    idx: usize,
    view: &View<'_>,
    delta_at: Option<usize>,
    delta_rows: &[SymTuple],
    binding: &mut Vec<Option<Sym>>,
    stats: &mut UpdateStats,
    sink: &mut dyn FnMut(&[Option<Sym>], &mut UpdateStats) -> bool,
) -> bool {
    if idx == rule.pos.len() {
        for (l, r) in &rule.ineq {
            if slot_sym(l, binding) == slot_sym(r, binding) {
                return true;
            }
        }
        for atom in &rule.neg {
            let row: SymTuple = atom.slots.iter().map(|s| slot_sym(s, binding)).collect();
            if view.contains(atom.relation, &row) {
                return true;
            }
        }
        stats.derivations += 1;
        return sink(binding, stats);
    }
    let atom = &rule.pos[idx];
    if delta_at == Some(idx) {
        for row in delta_rows {
            if row.len() != atom.slots.len() {
                continue;
            }
            if let Some(newly) = unify(atom, row, binding) {
                let keep = join(
                    rule,
                    idx + 1,
                    view,
                    delta_at,
                    delta_rows,
                    binding,
                    stats,
                    sink,
                );
                undo(binding, &newly);
                if !keep {
                    return false;
                }
            }
        }
        return true;
    }
    let mut keep = true;
    view.for_each_row(atom.relation, &mut |row| {
        if row.len() != atom.slots.len() {
            return true;
        }
        if let Some(newly) = unify(atom, row, binding) {
            keep = join(
                rule,
                idx + 1,
                view,
                delta_at,
                delta_rows,
                binding,
                stats,
                sink,
            );
            undo(binding, &newly);
        }
        keep
    });
    keep
}

/// Whether `t` (a tuple of relation `rel`) has at least one derivation
/// over `view` through the stratum's rules — the head-bound backward
/// check of the rederive pass (early exit on the first derivation).
fn derivable(
    rules: &[CompiledRule],
    rel: RelId,
    t: &[Sym],
    view: &View<'_>,
    stats: &mut UpdateStats,
) -> bool {
    for rule in rules {
        if rule.head.relation != rel || rule.head.slots.len() != t.len() {
            continue;
        }
        let mut binding = vec![None; rule.nvars];
        if unify(&rule.head, t, &mut binding).is_none() {
            continue;
        }
        let mut found = false;
        join(
            rule,
            0,
            view,
            None,
            &[],
            &mut binding,
            stats,
            &mut |_, _| {
                found = true;
                false
            },
        );
        if found {
            return true;
        }
    }
    false
}

/// Record a net insertion of `t` into the change sets: a revival of a
/// tuple removed earlier in this update cancels the removal, anything
/// else is a net addition.
fn record_insert(added: &mut ChangeSet, removed: &mut ChangeSet, r: RelId, t: &SymTuple) {
    if removed.get_mut(&r).is_some_and(|s| s.remove(t)) {
        return;
    }
    added.entry(r).or_default().insert(t.clone());
}

/// Record a net removal of `t`: retracting a tuple added earlier in
/// this update cancels the addition, anything else is a net removal.
fn record_retract(added: &mut ChangeSet, removed: &mut ChangeSet, r: RelId, t: &SymTuple) {
    if added.get_mut(&r).is_some_and(|s| s.remove(t)) {
        return;
    }
    removed.entry(r).or_default().insert(t.clone());
}

/// Maintain one stratum given the net changes below it (EDB and lower
/// strata), extending `added`/`removed` with the stratum's own net
/// changes.
fn maintain_stratum(
    cp: &CompiledProgram,
    db: &mut Database,
    added: &mut ChangeSet,
    removed: &mut ChangeSet,
    stats: &mut UpdateStats,
) {
    let rules = cp.rules();

    // --- Phase 1: overdelete over the old view. ---
    // Seeds: old-view derivations touching a removed tuple at a
    // positive atom, or a newly added tuple at a negative atom. Then
    // propagate within the stratum (in-stratum recursion is purely
    // positive) until no new head is tombstone-scheduled.
    let mut dset: HashSet<(RelId, SymTuple)> = HashSet::new();
    let mut frontier: Vec<(RelId, SymTuple)> = Vec::new();
    {
        let storage = db.storage();
        let view = View::Old {
            storage,
            added: &*added,
            removed: &*removed,
        };
        let schedule = |rel: RelId,
                        head: SymTuple,
                        dset: &mut HashSet<(RelId, SymTuple)>,
                        frontier: &mut Vec<(RelId, SymTuple)>| {
            if storage.contains(rel, &head) {
                let key = (rel, head);
                if !dset.contains(&key) {
                    dset.insert(key.clone());
                    frontier.push(key);
                }
            }
        };
        for rule in rules {
            for (i, atom) in rule.pos.iter().enumerate() {
                let Some(rm) = removed.get(&atom.relation) else {
                    continue;
                };
                if rm.is_empty() {
                    continue;
                }
                let delta: Vec<SymTuple> = rm.iter().cloned().collect();
                let mut binding = vec![None; rule.nvars];
                join(
                    rule,
                    0,
                    &view,
                    Some(i),
                    &delta,
                    &mut binding,
                    stats,
                    &mut |b, _| {
                        let head: SymTuple =
                            rule.head.slots.iter().map(|s| slot_sym(s, b)).collect();
                        schedule(rule.head.relation, head, &mut dset, &mut frontier);
                        true
                    },
                );
            }
            for natom in &rule.neg {
                let Some(ad) = added.get(&natom.relation) else {
                    continue;
                };
                for t in ad {
                    if t.len() != natom.slots.len() {
                        continue;
                    }
                    let mut binding = vec![None; rule.nvars];
                    if unify(natom, t, &mut binding).is_none() {
                        continue;
                    }
                    join(
                        rule,
                        0,
                        &view,
                        None,
                        &[],
                        &mut binding,
                        stats,
                        &mut |b, _| {
                            let head: SymTuple =
                                rule.head.slots.iter().map(|s| slot_sym(s, b)).collect();
                            schedule(rule.head.relation, head, &mut dset, &mut frontier);
                            true
                        },
                    );
                }
            }
        }
        // In-stratum transitive overdeletion.
        while !frontier.is_empty() {
            let mut by_rel: HashMap<RelId, Vec<SymTuple>> = HashMap::new();
            for (r, t) in frontier.drain(..) {
                by_rel.entry(r).or_default().push(t);
            }
            let mut next: Vec<(RelId, SymTuple)> = Vec::new();
            for rule in rules {
                for (i, atom) in rule.pos.iter().enumerate() {
                    let Some(delta) = by_rel.get(&atom.relation) else {
                        continue;
                    };
                    let mut binding = vec![None; rule.nvars];
                    join(
                        rule,
                        0,
                        &view,
                        Some(i),
                        delta,
                        &mut binding,
                        stats,
                        &mut |b, _| {
                            let head: SymTuple =
                                rule.head.slots.iter().map(|s| slot_sym(s, b)).collect();
                            schedule(rule.head.relation, head, &mut dset, &mut next);
                            true
                        },
                    );
                }
            }
            frontier = next;
        }
    }
    // Apply the overdeletion: tombstone every scheduled tuple.
    let mut dead: Vec<(RelId, SymTuple)> = Vec::new();
    for (r, t) in dset {
        if db.storage_mut().retract(r, &t) {
            stats.retractions += 1;
            record_retract(added, removed, r, &t);
            dead.push((r, t));
        }
    }

    // --- Phase 2: rederive (semi-naive). ---
    // A tuple stays deleted only if no rule derives it from the
    // surviving facts. One head-bound backward scan over the
    // post-retraction view seeds the revivals; after that the view only
    // grows by revived tuples, so any further revival must consume a
    // revived tuple at some positive atom (in-stratum recursion is
    // purely positive) — propagate forward with delta joins into the
    // still-deleted set instead of rescanning the whole overdeletion
    // every round, which is quadratic in the overdeleted set on dense
    // recursive views.
    let mut dead_set: HashSet<(RelId, SymTuple)> = dead.iter().cloned().collect();
    let mut revive: Vec<(RelId, SymTuple)> = Vec::new();
    {
        let storage = db.storage();
        let view = View::New(storage);
        for (r, t) in &dead {
            if derivable(rules, *r, t, &view, stats) {
                revive.push((*r, t.clone()));
            }
        }
    }
    while !revive.is_empty() {
        let mut by_rel: HashMap<RelId, Vec<SymTuple>> = HashMap::new();
        for (r, t) in revive.drain(..) {
            // Two rules can schedule the same head in one round.
            if !dead_set.remove(&(r, t.clone())) {
                continue;
            }
            db.storage_mut().insert(r, t.clone());
            stats.rederivations += 1;
            record_insert(added, removed, r, &t);
            by_rel.entry(r).or_default().push(t);
        }
        let storage = db.storage();
        let view = View::New(storage);
        let mut next: Vec<(RelId, SymTuple)> = Vec::new();
        for rule in rules {
            for (i, atom) in rule.pos.iter().enumerate() {
                let Some(delta) = by_rel.get(&atom.relation) else {
                    continue;
                };
                let mut binding = vec![None; rule.nvars];
                join(
                    rule,
                    0,
                    &view,
                    Some(i),
                    delta,
                    &mut binding,
                    stats,
                    &mut |b, _| {
                        let head: SymTuple =
                            rule.head.slots.iter().map(|s| slot_sym(s, b)).collect();
                        let key = (rule.head.relation, head);
                        if dead_set.contains(&key) {
                            next.push(key);
                        }
                        true
                    },
                );
            }
        }
        revive = next;
    }

    // --- Phase 3: insert propagation over the new view. ---
    // Seeds: derivations touching an added tuple at a positive atom or
    // a removed tuple at a negative atom, evaluated over the current
    // store. Then explicit-delta semi-naive propagation within the
    // stratum.
    let mut pending: Vec<(RelId, SymTuple)> = Vec::new();
    let mut pending_set: HashSet<(RelId, SymTuple)> = HashSet::new();
    {
        let storage = db.storage();
        let view = View::New(storage);
        let schedule = |rel: RelId,
                        head: SymTuple,
                        pending: &mut Vec<(RelId, SymTuple)>,
                        pending_set: &mut HashSet<(RelId, SymTuple)>| {
            if !storage.contains(rel, &head) {
                let key = (rel, head);
                if !pending_set.contains(&key) {
                    pending_set.insert(key.clone());
                    pending.push(key);
                }
            }
        };
        for rule in rules {
            for (i, atom) in rule.pos.iter().enumerate() {
                let Some(ad) = added.get(&atom.relation) else {
                    continue;
                };
                if ad.is_empty() {
                    continue;
                }
                let delta: Vec<SymTuple> = ad.iter().cloned().collect();
                let mut binding = vec![None; rule.nvars];
                join(
                    rule,
                    0,
                    &view,
                    Some(i),
                    &delta,
                    &mut binding,
                    stats,
                    &mut |b, _| {
                        let head: SymTuple =
                            rule.head.slots.iter().map(|s| slot_sym(s, b)).collect();
                        schedule(rule.head.relation, head, &mut pending, &mut pending_set);
                        true
                    },
                );
            }
            for natom in &rule.neg {
                let Some(rm) = removed.get(&natom.relation) else {
                    continue;
                };
                for t in rm {
                    if t.len() != natom.slots.len() {
                        continue;
                    }
                    let mut binding = vec![None; rule.nvars];
                    if unify(natom, t, &mut binding).is_none() {
                        continue;
                    }
                    join(
                        rule,
                        0,
                        &view,
                        None,
                        &[],
                        &mut binding,
                        stats,
                        &mut |b, _| {
                            let head: SymTuple =
                                rule.head.slots.iter().map(|s| slot_sym(s, b)).collect();
                            schedule(rule.head.relation, head, &mut pending, &mut pending_set);
                            true
                        },
                    );
                }
            }
        }
    }
    while !pending.is_empty() {
        let mut by_rel: HashMap<RelId, Vec<SymTuple>> = HashMap::new();
        for (r, t) in pending.drain(..) {
            if db.storage_mut().insert(r, t.clone()) {
                stats.insertions += 1;
                record_insert(added, removed, r, &t);
                by_rel.entry(r).or_default().push(t);
            }
        }
        pending_set.clear();
        let storage = db.storage();
        let view = View::New(storage);
        let mut next: Vec<(RelId, SymTuple)> = Vec::new();
        for rule in rules {
            for (i, atom) in rule.pos.iter().enumerate() {
                let Some(delta) = by_rel.get(&atom.relation) else {
                    continue;
                };
                let mut binding = vec![None; rule.nvars];
                join(
                    rule,
                    0,
                    &view,
                    Some(i),
                    delta,
                    &mut binding,
                    stats,
                    &mut |b, _| {
                        let head: SymTuple =
                            rule.head.slots.iter().map(|s| slot_sym(s, b)).collect();
                        if !storage.contains(rule.head.relation, &head) {
                            let key = (rule.head.relation, head);
                            if !pending_set.contains(&key) {
                                pending_set.insert(key.clone());
                                next.push(key);
                            }
                        }
                        true
                    },
                );
            }
        }
        pending = next;
    }
}

/// Apply a signed [`UpdateBatch`] to a materialized stratified
/// database, maintaining every stratum incrementally (see the module
/// docs). `db` must be the fixpoint of `strata` over its current EDB,
/// compacted (no tombstones), and the batch must only touch EDB
/// relations — the query-level wrappers
/// ([`crate::query::IncrementalEvaluation`]) enforce both.
///
/// Reports `eval.retractions` and `eval.rederivations` counters (plus
/// insertion and work counters) to `obs`.
pub fn apply_update_compiled(
    strata: &[CompiledProgram],
    db: &mut Database,
    batch: &UpdateBatch,
    obs: &Obs,
) -> UpdateStats {
    assert!(
        !db.storage().any_dead(),
        "incremental maintenance requires a compacted database"
    );
    let mut stats = UpdateStats::default();
    // One watermark move up front: the storage-level signed deltas
    // (`added_rows`/`removed_rows`) then capture exactly this batch's
    // net EDB change.
    db.storage_mut().mark_deltas();
    let (ins, del) = db.apply_update_batch(batch);
    stats.edb_inserted = ins;
    stats.edb_deleted = del;

    let mut added: ChangeSet = HashMap::new();
    let mut removed: ChangeSet = HashMap::new();
    {
        let storage = db.storage();
        for r in storage.rel_ids() {
            let Some(rel) = storage.relation(r) else {
                continue;
            };
            let a: HashSet<SymTuple> = rel.added_rows().cloned().collect();
            if !a.is_empty() {
                added.insert(r, a);
            }
            let rm: HashSet<SymTuple> = rel.removed_rows().cloned().collect();
            if !rm.is_empty() {
                removed.insert(r, rm);
            }
        }
    }

    for cp in strata {
        maintain_stratum(cp, db, &mut added, &mut removed, &mut stats);
    }

    // Tombstones served their purpose (old-view reconstruction and
    // in-place revival); the fixpoint engines require a compacted
    // store, so physically drop them at the batch boundary.
    db.storage_mut().compact_retractions();
    if obs.enabled() {
        obs.counter("eval", "retractions", stats.retractions as u64);
        obs.counter("eval", "rederivations", stats.rederivations as u64);
        obs.counter("eval", "update_insertions", stats.insertions as u64);
        obs.counter("eval", "update_derivations", stats.derivations as u64);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::seminaive::{fixpoint_seminaive_compiled, EvalOptions};
    use crate::stratify::stratify;
    use calm_common::fact::fact;
    use calm_common::instance::Instance;
    use calm_common::storage::SharedSymbols;

    fn compile_strata(src: &str, symbols: &SharedSymbols) -> Vec<CompiledProgram> {
        let p = crate::parser::parse_program(src).unwrap();
        let strat = stratify(&p).unwrap();
        let mut table = symbols.write();
        strat
            .strata
            .iter()
            .map(|s| CompiledProgram::new(s, &mut table, EvalOptions::default()))
            .collect()
    }

    fn materialize(
        strata: &[CompiledProgram],
        input: &Instance,
        symbols: SharedSymbols,
    ) -> Database {
        let mut db = Database::from_instance_with(input, symbols);
        for cp in strata {
            fixpoint_seminaive_compiled(cp, &mut db);
        }
        db
    }

    /// From-scratch reference: evaluate the final EDB with the same
    /// compiled strata over a fresh database sharing the symbol table.
    fn from_scratch(
        strata: &[CompiledProgram],
        edb: &Instance,
        symbols: SharedSymbols,
    ) -> Database {
        materialize(strata, edb, symbols)
    }

    fn check_differential(src: &str, initial: Instance, batches: &[UpdateBatch]) {
        let symbols = SharedSymbols::new();
        let strata = compile_strata(src, &symbols);
        let mut db = materialize(&strata, &initial, symbols.clone());
        let mut edb = initial;
        for (k, batch) in batches.iter().enumerate() {
            apply_update_compiled(&strata, &mut db, batch, &Obs::noop());
            batch.apply_to_instance(&mut edb);
            let reference = from_scratch(&strata, &edb, symbols.clone());
            assert!(
                db.same_facts(&reference),
                "diverged after batch {k}:\nincremental: {:?}\nreference: {:?}",
                db.to_instance(),
                reference.to_instance()
            );
            assert_eq!(db.to_instance(), reference.to_instance(), "batch {k}");
            assert!(!db.storage().any_dead(), "tombstones leaked past batch {k}");
        }
    }

    const TC: &str = "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).";

    #[test]
    fn tc_delete_edge_retracts_downstream_paths() {
        // Path 1→2→3→4; deleting 2→3 splits the closure.
        let initial =
            Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3]), fact("E", [3, 4])]);
        check_differential(
            TC,
            initial,
            &[
                UpdateBatch::deleting([fact("E", [2, 3])]),
                UpdateBatch::inserting([fact("E", [2, 3])]),
                UpdateBatch::deleting([fact("E", [1, 2]), fact("E", [3, 4])]),
            ],
        );
    }

    #[test]
    fn tc_rederivation_keeps_alternate_paths() {
        // Two parallel routes 1→2→4 and 1→3→4: deleting one leaves
        // T(1,4) derivable through the other (rederive must fire).
        let initial = Instance::from_facts([
            fact("E", [1, 2]),
            fact("E", [2, 4]),
            fact("E", [1, 3]),
            fact("E", [3, 4]),
        ]);
        let symbols = SharedSymbols::new();
        let strata = compile_strata(TC, &symbols);
        let mut db = materialize(&strata, &initial, symbols.clone());
        let stats = apply_update_compiled(
            &strata,
            &mut db,
            &UpdateBatch::deleting([fact("E", [2, 4])]),
            &Obs::noop(),
        );
        assert!(stats.rederivations > 0, "alternate path must rederive");
        assert!(db.contains_values("T", &[calm_common::v(1), calm_common::v(4)]));
        assert!(!db.contains_values("T", &[calm_common::v(2), calm_common::v(4)]));
    }

    #[test]
    fn cyclic_support_does_not_self_rederive() {
        // Cycle 1→2→1: every T tuple transitively supports itself;
        // deleting E(1,2) must delete the whole closure, not keep it
        // alive through circular support (the trap counting falls into).
        let initial = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 1])]);
        check_differential(TC, initial, &[UpdateBatch::deleting([fact("E", [1, 2])])]);
    }

    #[test]
    fn stratified_negation_flips_both_ways() {
        // Removing an E tuple can *create* O tuples; adding one can
        // delete them — both negation directions in one program.
        let src = "R(x,y) :- E(x,y).\nR(x,z) :- R(x,y), E(y,z).\nO(x) :- V(x), not R(x,x).";
        let initial = Instance::from_facts([
            fact("V", [1]),
            fact("V", [2]),
            fact("E", [1, 2]),
            fact("E", [2, 1]),
        ]);
        check_differential(
            src,
            initial,
            &[
                // Break the cycle: R(1,1)/R(2,2) vanish, O(1)/O(2) appear.
                UpdateBatch::deleting([fact("E", [2, 1])]),
                // Restore it: O tuples must retract again.
                UpdateBatch::inserting([fact("E", [2, 1])]),
                // Mixed batch.
                UpdateBatch::deleting([fact("E", [1, 2])])
                    .with_insert(fact("V", [3]))
                    .with_insert(fact("E", [3, 3])),
            ],
        );
    }

    #[test]
    fn empty_and_noop_batches_change_nothing() {
        let initial = Instance::from_facts([fact("E", [1, 2])]);
        let symbols = SharedSymbols::new();
        let strata = compile_strata(TC, &symbols);
        let mut db = materialize(&strata, &initial, symbols.clone());
        let before = db.to_instance();
        let stats = apply_update_compiled(&strata, &mut db, &UpdateBatch::new(), &Obs::noop());
        assert_eq!(stats, UpdateStats::default());
        // Deleting an absent fact and re-inserting a present one: no-ops.
        let noop = UpdateBatch::deleting([fact("E", [9, 9])]).with_insert(fact("E", [1, 2]));
        let stats = apply_update_compiled(&strata, &mut db, &noop, &Obs::noop());
        assert_eq!(stats.edb_inserted, 0);
        assert_eq!(stats.edb_deleted, 0);
        assert_eq!(db.to_instance(), before);
    }

    #[test]
    fn delete_then_reinsert_in_one_batch_is_noop() {
        let initial = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
        check_differential(
            TC,
            initial,
            &[UpdateBatch::deleting([fact("E", [2, 3])]).with_insert(fact("E", [2, 3]))],
        );
    }

    #[test]
    fn multi_stratum_chain_propagates_removals_upward() {
        // Three strata: closure → gap detection (negation) → projection.
        let src = "T(x,y) :- E(x,y).\n\
                   T(x,z) :- T(x,y), E(y,z).\n\
                   G(x,y) :- V(x), V(y), not T(x,y), x != y.\n\
                   H(x) :- G(x,y).";
        let initial = Instance::from_facts([
            fact("V", [1]),
            fact("V", [2]),
            fact("V", [3]),
            fact("E", [1, 2]),
            fact("E", [2, 3]),
        ]);
        check_differential(
            src,
            initial,
            &[
                UpdateBatch::deleting([fact("E", [1, 2])]),
                UpdateBatch::inserting([fact("E", [1, 3])]),
                UpdateBatch::deleting([fact("V", [3])]).with_insert(fact("E", [1, 2])),
            ],
        );
    }

    #[test]
    fn supports_update_stats_merge() {
        let mut a = UpdateStats {
            edb_inserted: 1,
            edb_deleted: 2,
            retractions: 3,
            rederivations: 4,
            insertions: 5,
            derivations: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.retractions, 6);
        assert_eq!(a.derivations, 12);
    }

    #[test]
    #[should_panic(expected = "compacted database")]
    fn rejects_uncompacted_databases() {
        let symbols = SharedSymbols::new();
        let strata = compile_strata(TC, &symbols);
        let mut db = materialize(
            &strata,
            &Instance::from_facts([fact("E", [1, 2])]),
            symbols.clone(),
        );
        // Leave a tombstone behind by hand.
        let e = symbols.read().lookup_rel("E").unwrap();
        let row: Vec<_> = {
            let t = symbols.read();
            [calm_common::v(1), calm_common::v(2)]
                .iter()
                .map(|v| t.lookup_sym(v).unwrap())
                .collect()
        };
        db.storage_mut().retract(e, &row);
        apply_update_compiled(&strata, &mut db, &UpdateBatch::new(), &Obs::noop());
    }
}
