//! Rule compilation: variables are numbered into dense slots and every
//! relation name / constant is interned, so that rule matching works over
//! a flat `Vec<Option<Sym>>` binding with `Copy` u32 comparisons instead
//! of a name-keyed map of cloned values.

use crate::ast::{Rule, Term, Var};
use calm_common::storage::{RelId, Sym, SymbolTable};
use std::collections::BTreeMap;

/// A compiled term: either an interned constant or a variable slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// A constant (interned) that must match exactly.
    Const(Sym),
    /// A variable slot (index into the binding vector).
    Var(usize),
}

/// How the join loop enumerates an atom's candidate rows, chosen at
/// compile time from the atom's probe position (Storage v2 planner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// The probe position is the leading column: binary-search the
    /// relation's sorted immutable batches (lexicographic row order
    /// makes leading-column groups contiguous). No hash index is built
    /// or maintained for the relation's leading column.
    Merge,
    /// The probe position is a non-leading column: probe the
    /// incrementally maintained per-column hash index.
    Hash,
    /// No position is bound when the atom is reached: scan all rows.
    Scan,
}

impl std::fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JoinStrategy::Merge => "merge",
            JoinStrategy::Hash => "hash",
            JoinStrategy::Scan => "scan",
        })
    }
}

/// A compiled atom.
#[derive(Debug, Clone)]
pub struct CompiledAtom {
    /// Interned relation to scan.
    pub relation: RelId,
    /// Per-position slots.
    pub slots: Vec<Slot>,
    /// The first position guaranteed bound when this atom is evaluated in
    /// body order (a constant, or a variable introduced by an earlier
    /// atom). Used for merge/hash probes; `None` means full scan.
    pub probe: Option<usize>,
    /// How candidate rows are enumerated when indexes are enabled:
    /// derived from `probe` (leading column ⇒ merge join over sorted
    /// batches, other column ⇒ hash probe, unbound ⇒ scan).
    pub strategy: JoinStrategy,
}

/// A rule compiled for evaluation (against the symbol table it was
/// compiled with).
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// Number of variable slots.
    pub nvars: usize,
    /// Positive body atoms, in evaluation order.
    pub pos: Vec<CompiledAtom>,
    /// Negative body atoms (checked after the positive join).
    pub neg: Vec<CompiledAtom>,
    /// Inequalities (checked after the positive join).
    pub ineq: Vec<(Slot, Slot)>,
    /// The head template. `Slot::Var` entries are guaranteed bound after
    /// the positive join (rule safety).
    pub head: CompiledAtom,
    /// For each positive atom index: whether its relation is an idb
    /// predicate of the current stratum (used for semi-naive delta
    /// placement).
    pub recursive_pos: Vec<bool>,
}

/// Compile a rule with greedy join ordering: positive atoms are reordered
/// so that each atom shares as many variables as possible with the atoms
/// before it (and constants count as bound). This turns Cartesian-product
/// scans into index-supported joins wherever the rule's shape allows.
/// Reordering never changes semantics — the positive body is a
/// conjunction.
pub fn compile_rule_ordered(
    rule: &Rule,
    table: &mut SymbolTable,
    is_current_idb: impl Fn(&str) -> bool,
) -> CompiledRule {
    let mut ordered = rule.clone();
    ordered.pos = order_atoms(&rule.pos);
    compile_rule(&ordered, table, is_current_idb)
}

/// Component-aware atom ordering.
///
/// The body's positive atoms are first grouped into connected components
/// of the "shares a variable" graph (each ground atom is its own
/// component), then each component is ordered greedily and the
/// components are concatenated, larger components first (ties: smallest
/// original index). Keeping each component contiguous is what matters:
/// the plain greedy picker used to choose its *first* atom by
/// fewest-new-variables, which could start with a tiny unrelated
/// component (e.g. `S(u)` in `O(x) :- S(u), A(x,y), B(y,z)`) and then
/// re-evaluate the whole `A ⋈ B` join once per `S` row — a Cartesian
/// prefix that is quadratically worse in index probes. Ordering the
/// join-bearing components first performs each join's probe work once.
/// Reordering never changes semantics — the positive body is a
/// conjunction, and components share no variables.
fn order_atoms(pos: &[crate::ast::Atom]) -> Vec<crate::ast::Atom> {
    use std::collections::BTreeSet;
    let n = pos.len();
    let vars: Vec<BTreeSet<&Var>> = pos.iter().map(|a| a.variables().collect()).collect();
    // Flood-fill connected components over "atoms share a variable".
    const UNASSIGNED: usize = usize::MAX;
    let mut comp = vec![UNASSIGNED; n];
    let mut ncomp = 0;
    for start in 0..n {
        if comp[start] != UNASSIGNED {
            continue;
        }
        comp[start] = ncomp;
        let mut stack = vec![start];
        while let Some(j) = stack.pop() {
            for k in 0..n {
                if comp[k] == UNASSIGNED && !vars[j].is_disjoint(&vars[k]) {
                    comp[k] = ncomp;
                    stack.push(k);
                }
            }
        }
        ncomp += 1;
    }
    let mut groups: Vec<Vec<(usize, &crate::ast::Atom)>> = vec![Vec::new(); ncomp];
    for (i, atom) in pos.iter().enumerate() {
        groups[comp[i]].push((i, atom));
    }
    // Largest component first; ties by smallest original atom index.
    // Components are independent conjuncts, so the later ones re-run per
    // binding of the earlier ones — front-load the probe-heavy joins.
    groups.sort_by_key(|g| (usize::MAX - g.len(), g[0].0));
    let mut out = Vec::with_capacity(n);
    for group in groups {
        greedy_order(group, &mut out);
    }
    out
}

/// Greedy ordering within one connected component: repeatedly pick the
/// unplaced atom with the most already-bound variables (ties: most
/// constants, then fewest new variables, then original position for
/// determinism).
fn greedy_order<'a>(
    mut remaining: Vec<(usize, &'a crate::ast::Atom)>,
    out: &mut Vec<crate::ast::Atom>,
) {
    use std::collections::BTreeSet;
    let mut bound: BTreeSet<&'a Var> = BTreeSet::new();
    while !remaining.is_empty() {
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, (orig, atom))| {
                let bound_vars = atom.variables().filter(|v| bound.contains(v)).count();
                let consts = atom
                    .terms
                    .iter()
                    .filter(|t| matches!(t, Term::Const(_)))
                    .count();
                let new_vars = atom.variables().filter(|v| !bound.contains(v)).count();
                // Max bound vars, then max constants, then min new vars,
                // then min original index (stable).
                (
                    bound_vars,
                    consts,
                    usize::MAX - new_vars,
                    usize::MAX - *orig,
                )
            })
            .expect("nonempty");
        let (_, atom) = remaining.remove(best_idx);
        bound.extend(atom.variables());
        out.push(atom.clone());
    }
}

/// Compile a rule in the body order given, interning relation names and
/// constants into `table`. `is_current_idb` flags which relations belong
/// to the stratum being evaluated (for semi-naive).
pub fn compile_rule(
    rule: &Rule,
    table: &mut SymbolTable,
    is_current_idb: impl Fn(&str) -> bool,
) -> CompiledRule {
    let mut slots: BTreeMap<Var, usize> = BTreeMap::new();
    let slot_of = |v: &Var, slots: &mut BTreeMap<Var, usize>| -> usize {
        if let Some(&i) = slots.get(v) {
            i
        } else {
            let i = slots.len();
            slots.insert(v.clone(), i);
            i
        }
    };
    let compile_term =
        |t: &Term, slots: &mut BTreeMap<Var, usize>, table: &mut SymbolTable| -> Slot {
            match t {
                Term::Var(v) => Slot::Var(slot_of(v, slots)),
                Term::Const(c) => Slot::Const(table.sym(c)),
                Term::Invention => {
                    panic!("invention symbol must be rewritten (Skolemized) before compilation")
                }
            }
        };
    // Positive atoms first so that head/neg/ineq slots refer to already
    // numbered variables (safety guarantees every variable occurs in pos).
    // While compiling, track which slots are bound by earlier atoms to
    // derive each atom's probe position.
    let mut bound_slots: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let pos: Vec<CompiledAtom> = rule
        .pos
        .iter()
        .map(|a| {
            let compiled_slots: Vec<Slot> = a
                .terms
                .iter()
                .map(|t| compile_term(t, &mut slots, table))
                .collect();
            let probe = compiled_slots.iter().position(|s| match s {
                Slot::Const(_) => true,
                Slot::Var(i) => bound_slots.contains(i),
            });
            for s in &compiled_slots {
                if let Slot::Var(i) = s {
                    bound_slots.insert(*i);
                }
            }
            CompiledAtom {
                relation: table.rel(&a.relation),
                slots: compiled_slots,
                probe,
                strategy: strategy_for(probe),
            }
        })
        .collect();
    let neg: Vec<CompiledAtom> = rule
        .neg
        .iter()
        .map(|a| CompiledAtom {
            relation: table.rel(&a.relation),
            slots: a
                .terms
                .iter()
                .map(|t| compile_term(t, &mut slots, table))
                .collect(),
            probe: None,
            strategy: JoinStrategy::Scan,
        })
        .collect();
    let ineq: Vec<(Slot, Slot)> = rule
        .ineq
        .iter()
        .map(|(l, r)| {
            (
                compile_term(l, &mut slots, table),
                compile_term(r, &mut slots, table),
            )
        })
        .collect();
    let head = CompiledAtom {
        relation: table.rel(&rule.head.relation),
        slots: rule
            .head
            .terms
            .iter()
            .map(|t| compile_term(t, &mut slots, table))
            .collect(),
        probe: None,
        strategy: JoinStrategy::Scan,
    };
    let recursive_pos = rule
        .pos
        .iter()
        .map(|a| is_current_idb(&a.relation))
        .collect();
    CompiledRule {
        nvars: slots.len(),
        pos,
        neg,
        ineq,
        head,
        recursive_pos,
    }
}

/// The join strategy implied by a probe position: the leading column is
/// contiguous under sorted-batch (lexicographic) row order, so it is
/// merge-joinable without any hash index; any other bound position
/// falls back to the per-column hash index; no bound position scans.
fn strategy_for(probe: Option<usize>) -> JoinStrategy {
    match probe {
        Some(0) => JoinStrategy::Merge,
        Some(_) => JoinStrategy::Hash,
        None => JoinStrategy::Scan,
    }
}

impl CompiledRule {
    /// Whether the rule has at least one positive atom over the current
    /// stratum's idb (i.e., participates in the fixpoint recursion).
    pub fn is_recursive(&self) -> bool {
        self.recursive_pos.iter().any(|&b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    #[test]
    fn slots_are_shared_across_atoms() {
        let r = parse_rule("T(x,z) :- T(x,y), E(y,z).").unwrap();
        let mut table = SymbolTable::new();
        let c = compile_rule(&r, &mut table, |rel| rel == "T");
        assert_eq!(c.nvars, 3);
        // T(x,y): slots 0,1. E(y,z): slots 1,2. Head T(x,z): 0,2.
        assert_eq!(c.pos[0].slots, vec![Slot::Var(0), Slot::Var(1)]);
        assert_eq!(c.pos[1].slots, vec![Slot::Var(1), Slot::Var(2)]);
        assert_eq!(c.head.slots, vec![Slot::Var(0), Slot::Var(2)]);
        assert_eq!(c.recursive_pos, vec![true, false]);
        assert!(c.is_recursive());
        // The head and first atom intern to the same relation id.
        assert_eq!(c.head.relation, c.pos[0].relation);
        assert_eq!(table.rel_name(c.pos[1].relation).as_ref(), "E");
    }

    #[test]
    fn ordering_moves_connected_atoms_together() {
        // O(w) :- A(x), B(x, y), C(y, w): already well-ordered; a
        // shuffled version must be restored so each atom binds to the
        // previous ones.
        let r = parse_rule("O(w) :- C(y, w), A(x), B(x, y).").unwrap();
        let mut table = SymbolTable::new();
        let c = compile_rule_ordered(&r, &mut table, |_| false);
        // First atom introduces variables; every later atom must share at
        // least one slot with earlier atoms (no Cartesian step exists for
        // this rule shape).
        let mut seen: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for (i, atom) in c.pos.iter().enumerate() {
            let slots: Vec<usize> = atom
                .slots
                .iter()
                .filter_map(|s| match s {
                    Slot::Var(v) => Some(*v),
                    Slot::Const(_) => None,
                })
                .collect();
            if i > 0 {
                assert!(
                    slots.iter().any(|s| seen.contains(s)),
                    "atom {i} ({}) is a Cartesian step",
                    table.rel_name(atom.relation)
                );
            }
            seen.extend(slots);
        }
    }

    #[test]
    fn ordering_prefers_constant_bound_atoms_first() {
        let r = parse_rule("O(x) :- A(x, y), B(y, 3).").unwrap();
        let mut table = SymbolTable::new();
        let c = compile_rule_ordered(&r, &mut table, |_| false);
        assert_eq!(
            table.rel_name(c.pos[0].relation).as_ref(),
            "B",
            "constant-selective atom first"
        );
    }

    #[test]
    fn ordering_puts_join_components_before_disconnected_singletons() {
        // Two connected components: {A, B} (share y) and {S}. The plain
        // greedy picker used to start with S (fewest new variables),
        // creating a Cartesian prefix; the join-bearing component must
        // come first.
        let r = parse_rule("O(x) :- S(u), A(x, y), B(y, z).").unwrap();
        let mut table = SymbolTable::new();
        let c = compile_rule_ordered(&r, &mut table, |_| false);
        let names: Vec<&str> = c
            .pos
            .iter()
            .map(|a| table.rel_name(a.relation).as_ref())
            .collect();
        assert_eq!(names, ["A", "B", "S"]);
    }

    #[test]
    fn component_ordering_avoids_quadratic_probe_blowup() {
        // n S-facts alongside an A ⋈ B chain. Starting with S re-runs
        // the whole A ⋈ B probe work once per S row — O(n²) index
        // probes; component-aware ordering performs the join once and
        // only repeats the probe-free S scan — O(n) probes. Derivations
        // are order-independent (n² full bindings) and pin that both
        // orders enumerate the same bindings.
        use crate::eval::database::Database;
        use crate::eval::seminaive::fixpoint_seminaive;
        use calm_common::fact::fact;
        use calm_common::instance::Instance;
        let n: i64 = 64;
        let mut facts = Vec::new();
        for i in 0..n {
            facts.push(fact("S", [i]));
            facts.push(fact("A", [i, i]));
            facts.push(fact("B", [i, i]));
        }
        let p = crate::parser::parse_program("O(x) :- S(u), A(x, y), B(y, z).").unwrap();
        let mut db = Database::from_instance(&Instance::from_facts(facts));
        let m = fixpoint_seminaive(&p, &mut db);
        assert_eq!(db.to_instance().relation_len("O"), n as usize);
        assert_eq!(m.derivations, (n * n) as usize);
        let probes = m.index_probes + m.merge_probes;
        assert!(
            probes <= 4 * n as usize,
            "probes not linear: {probes} for n = {n}"
        );
    }

    #[test]
    fn join_strategy_follows_probe_position() {
        // T(x,y) scans (first atom), E(y,z) probes at its leading
        // column (merge), F(z,y) probes y at position 1 (hash).
        let r = parse_rule("O(x) :- T(x,y), E(y,z), F(w,z).").unwrap();
        let mut table = SymbolTable::new();
        let c = compile_rule(&r, &mut table, |_| false);
        assert_eq!(c.pos[0].probe, None);
        assert_eq!(c.pos[0].strategy, JoinStrategy::Scan);
        assert_eq!(c.pos[1].probe, Some(0));
        assert_eq!(c.pos[1].strategy, JoinStrategy::Merge);
        assert_eq!(c.pos[2].probe, Some(1));
        assert_eq!(c.pos[2].strategy, JoinStrategy::Hash);
        // Constants in the leading position also merge.
        let r2 = parse_rule("O(x) :- R(3, x).").unwrap();
        let c2 = compile_rule(&r2, &mut table, |_| false);
        assert_eq!(c2.pos[0].strategy, JoinStrategy::Merge);
    }

    #[test]
    fn ordering_preserves_semantics() {
        use crate::eval::database::Database;
        use crate::eval::seminaive::fixpoint_seminaive;
        use calm_common::fact::fact;
        use calm_common::instance::Instance;
        let src = "O(w) :- C(y, w), A(x), B(x, y).";
        let p = crate::parser::parse_program(src).unwrap();
        let input = Instance::from_facts([
            fact("A", [1]),
            fact("A", [9]),
            fact("B", [1, 2]),
            fact("C", [2, 3]),
            fact("C", [7, 8]),
        ]);
        let mut db = Database::from_instance(&input);
        fixpoint_seminaive(&p, &mut db);
        let out = db.to_instance();
        assert_eq!(out.relation_len("O"), 1);
        assert!(out.contains(&fact("O", [3])));
    }

    #[test]
    fn constants_compile_to_const_slots() {
        let r = parse_rule("O(x) :- R(x, 3).").unwrap();
        let mut table = SymbolTable::new();
        let c = compile_rule(&r, &mut table, |_| false);
        let three = table.lookup_sym(&calm_common::v(3)).unwrap();
        assert_eq!(c.pos[0].slots[1], Slot::Const(three));
        assert!(!c.is_recursive());
    }

    #[test]
    fn neg_and_ineq_compiled() {
        let r = parse_rule("O(x) :- V(x), not W(x), x != 3.").unwrap();
        let mut table = SymbolTable::new();
        let c = compile_rule(&r, &mut table, |_| false);
        assert_eq!(c.neg.len(), 1);
        assert_eq!(c.ineq.len(), 1);
        assert_eq!(c.ineq[0].0, Slot::Var(0));
    }
}
