//! Stratified semantics: evaluate `P1, ..., Pk` in order (Section 2).

use super::database::Database;
use super::seminaive::{fixpoint_naive, fixpoint_seminaive_obs, FixpointStats};
use crate::program::Program;
use crate::stratify::{stratify, NotStratifiable, Stratification};
use calm_common::instance::Instance;
use calm_obs::Obs;

/// Which fixpoint engine to use within each stratum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Semi-naive with join reordering and hash indexes (default).
    #[default]
    SemiNaive,
    /// Semi-naive without reordering or indexes (ablation baseline).
    SemiNaiveBaseline,
    /// Naive re-derivation (benchmark baseline).
    Naive,
}

/// Evaluate a stratifiable Datalog¬ program on an input instance,
/// returning the full derived database as an instance (all relations —
/// restrict with [`Program::output_schema`] for the query answer).
///
/// # Errors
/// Returns [`NotStratifiable`] for programs with a negative cycle.
pub fn eval_program(p: &Program, input: &Instance) -> Result<Instance, NotStratifiable> {
    eval_program_with(p, input, Engine::SemiNaive).map(|(i, _)| i)
}

/// As [`eval_program`], with engine selection and per-stratum statistics.
///
/// # Errors
/// Returns [`NotStratifiable`] for programs with a negative cycle.
pub fn eval_program_with(
    p: &Program,
    input: &Instance,
    engine: Engine,
) -> Result<(Instance, Vec<FixpointStats>), NotStratifiable> {
    let strat = stratify(p)?;
    Ok(eval_stratification(&strat, input, engine))
}

/// Evaluate an existing stratification (avoids recomputing it per call —
/// used by [`crate::query::DatalogQuery`]).
pub fn eval_stratification(
    strat: &Stratification,
    input: &Instance,
    engine: Engine,
) -> (Instance, Vec<FixpointStats>) {
    eval_stratification_shared(
        strat,
        input,
        engine,
        calm_common::storage::SharedSymbols::new(),
    )
}

/// As [`eval_stratification`], interning into an existing shared symbol
/// table. Callers that evaluate the same program many times (e.g. the
/// monotonicity falsifiers via [`crate::query::DatalogQuery`]) reuse one
/// table so rule constants and recurring domain values are interned once.
pub fn eval_stratification_shared(
    strat: &Stratification,
    input: &Instance,
    engine: Engine,
    symbols: calm_common::storage::SharedSymbols,
) -> (Instance, Vec<FixpointStats>) {
    eval_stratification_shared_obs(strat, input, engine, symbols, &Obs::noop())
}

/// As [`eval_stratification_shared`], reporting per-stratum spans (and,
/// through the semi-naive engine, per-iteration/per-rule spans and
/// derivation counters) to `obs`.
pub fn eval_stratification_shared_obs(
    strat: &Stratification,
    input: &Instance,
    engine: Engine,
    symbols: calm_common::storage::SharedSymbols,
    obs: &Obs,
) -> (Instance, Vec<FixpointStats>) {
    eval_stratification_opts(strat, input, engine, symbols, obs, 1)
}

/// As [`eval_stratification_shared_obs`], with `eval_threads`
/// data-parallel workers inside every semi-naive stratum fixpoint
/// (`1` = sequential; the output and per-stratum stats are
/// byte-identical either way). [`Engine::Naive`] ignores the knob.
pub fn eval_stratification_opts(
    strat: &Stratification,
    input: &Instance,
    engine: Engine,
    symbols: calm_common::storage::SharedSymbols,
    obs: &Obs,
    eval_threads: usize,
) -> (Instance, Vec<FixpointStats>) {
    use super::seminaive::{fixpoint_seminaive_with_obs, EvalOptions};
    let mut db = Database::from_instance_with(input, symbols);
    let mut stats = Vec::with_capacity(strat.len());
    for (i, stratum) in strat.strata.iter().enumerate() {
        let _span = obs.span("eval", || format!("stratum#{i}"));
        let s = match engine {
            Engine::SemiNaive => {
                if eval_threads <= 1 {
                    fixpoint_seminaive_obs(stratum, &mut db, obs)
                } else {
                    fixpoint_seminaive_with_obs(
                        stratum,
                        &mut db,
                        EvalOptions::default().with_eval_threads(eval_threads),
                        obs,
                    )
                }
            }
            Engine::SemiNaiveBaseline => super::seminaive::fixpoint_seminaive_with(
                stratum,
                &mut db,
                EvalOptions::BASELINE.with_eval_threads(eval_threads),
            ),
            Engine::Naive => fixpoint_naive(stratum, &mut db),
        };
        stats.push(s);
    }
    (db.to_instance(), stats)
}

/// Render the per-stratum evaluation plan of a program: one line per
/// rule with its atom order and the join strategy chosen for each atom
/// (`merge@p` for leading-column probes over sorted batches, `hash@p`
/// for hash-index probes, `scan` otherwise). The `--dump-plan` surface
/// of `calm eval` / `calm simulate`.
///
/// # Errors
/// Returns [`NotStratifiable`] for programs with a negative cycle.
pub fn plan_report(p: &Program) -> Result<String, NotStratifiable> {
    use super::seminaive::{CompiledProgram, EvalOptions};
    let strat = stratify(p)?;
    let symbols = calm_common::storage::SharedSymbols::new();
    let mut out = String::new();
    for (i, stratum) in strat.strata.iter().enumerate() {
        let cp = CompiledProgram::new(stratum, &mut symbols.write(), EvalOptions::default());
        out.push_str(&format!("stratum {i}:\n"));
        for line in cp.plan_lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    Ok(out)
}

/// Evaluate and project onto the program's output schema — the query
/// answer `P(I)|σ'`.
///
/// ```
/// use calm_datalog::{parse_program, eval_query};
/// use calm_common::{fact, Instance};
///
/// let p = parse_program(
///     "@output T.\n\
///      T(x,y) :- E(x,y).\n\
///      T(x,z) :- T(x,y), E(y,z).",
/// ).unwrap();
/// let input = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
/// let answer = eval_query(&p, &input).unwrap();
/// assert!(answer.contains(&fact("T", [1, 3])));
/// assert_eq!(answer.len(), 3);
/// ```
///
/// # Errors
/// Returns [`NotStratifiable`] for programs with a negative cycle.
pub fn eval_query(p: &Program, input: &Instance) -> Result<Instance, NotStratifiable> {
    Ok(eval_program(p, input)?.restrict(&p.output_schema()))
}

/// As [`eval_query`], reporting spans and counters to `obs`.
///
/// # Errors
/// Returns [`NotStratifiable`] for programs with a negative cycle.
pub fn eval_query_obs(
    p: &Program,
    input: &Instance,
    obs: &Obs,
) -> Result<Instance, NotStratifiable> {
    eval_query_opts(p, input, obs, 1)
}

/// As [`eval_query_obs`], with `eval_threads` data-parallel workers
/// inside every stratum fixpoint (the answer is identical for any
/// thread count).
///
/// # Errors
/// Returns [`NotStratifiable`] for programs with a negative cycle.
pub fn eval_query_opts(
    p: &Program,
    input: &Instance,
    obs: &Obs,
    eval_threads: usize,
) -> Result<Instance, NotStratifiable> {
    let strat = stratify(p)?;
    let (out, _) = eval_stratification_opts(
        &strat,
        input,
        Engine::SemiNaive,
        calm_common::storage::SharedSymbols::new(),
        obs,
        eval_threads,
    );
    Ok(out.restrict(&p.output_schema()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use calm_common::fact::fact;
    use calm_common::generator::path;

    #[test]
    fn complement_of_tc() {
        let p = parse_program(
            "Adom(x) :- E(x,y).\n\
             Adom(y) :- E(x,y).\n\
             T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x,y) :- Adom(x), Adom(y), not T(x,y).",
        )
        .unwrap();
        let input = path(2); // 0 -> 1 -> 2
        let out = eval_query(&p, &input).unwrap();
        // 9 pairs total, TC = {(0,1),(1,2),(0,2)}: complement has 6.
        assert_eq!(out.relation_len("O"), 6);
        assert!(out.contains(&fact("O", [2, 0])));
        assert!(out.contains(&fact("O", [0, 0])));
        assert!(!out.contains(&fact("O", [0, 2])));
        // Output projection dropped T and Adom.
        assert_eq!(out.relation_len("T"), 0);
    }

    #[test]
    fn three_strata_compose() {
        let p = parse_program(
            "A(x) :- V(x), not W(x).\n\
             B(x) :- V(x), not A(x).\n\
             O(x) :- V(x), not B(x).",
        )
        .unwrap();
        let input = calm_common::instance::Instance::from_facts([
            fact("V", [1]),
            fact("V", [2]),
            fact("W", [1]),
        ]);
        let out = eval_query(&p, &input).unwrap();
        // 1: W(1) so not A(1); B(1); so O excludes 1.
        // 2: A(2); not B(2); O(2).
        assert_eq!(out.relation_len("O"), 1);
        assert!(out.contains(&fact("O", [2])));
    }

    #[test]
    fn engines_agree_on_stratified_program() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x) :- T(x,x).",
        )
        .unwrap();
        let input = calm_common::generator::cycle(5);
        let (a, _) = eval_program_with(&p, &input, Engine::SemiNaive).unwrap();
        let (b, _) = eval_program_with(&p, &input, Engine::Naive).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.relation_len("O"), 5);
    }

    #[test]
    fn non_stratifiable_is_error() {
        let p = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
        assert!(eval_program(&p, &calm_common::instance::Instance::new()).is_err());
    }

    #[test]
    fn obs_instrumented_eval_matches_plain_eval() {
        let p = parse_program(
            "@output T.\n\
             T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        let input = path(4);
        let plain = eval_query(&p, &input).unwrap();
        let sink = std::sync::Arc::new(calm_obs::ReportSink::new());
        let obs = Obs::new(sink.clone());
        let traced = eval_query_obs(&p, &input, &obs).unwrap();
        assert_eq!(plain, traced, "instrumentation must not change results");
        assert!(sink.counter_total("eval", "derivations") > 0);
        assert!(sink.counter_total("eval", "iterations") > 0);
        let report = sink.render();
        assert!(report.contains("eval/stratum#0"), "{report}");
        assert!(report.contains("eval.rule/T#0"), "{report}");
    }

    #[test]
    fn merged_stratum_stats_are_consistent_with_the_parts() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x) :- Adom(x), not T(x,x).\n\
             Adom(x) :- E(x,y).\n\
             Adom(y) :- E(x,y).",
        )
        .unwrap();
        let (_, stats) = eval_program_with(&p, &path(4), Engine::SemiNaive).unwrap();
        let mut merged = FixpointStats::default();
        for s in &stats {
            merged.merge(s);
        }
        assert_eq!(
            merged.derivations,
            stats.iter().map(|s| s.derivations).sum::<usize>()
        );
        assert_eq!(
            merged.new_facts,
            stats.iter().map(|s| s.new_facts).sum::<usize>()
        );
        assert_eq!(
            merged.iterations,
            stats.iter().map(|s| s.iterations).sum::<usize>()
        );
    }

    #[test]
    fn plan_report_lists_strategies_per_stratum() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x,y) :- T(x,y), F(z,y), not T(y,x).",
        )
        .unwrap();
        let plan = plan_report(&p).unwrap();
        assert!(plan.contains("stratum 0:"), "{plan}");
        assert!(plan.contains("stratum 1:"), "{plan}");
        // The recursive TC rule merge-joins E on its leading column…
        assert!(plan.contains("E[merge@0]"), "{plan}");
        // …the non-leading probe hashes, and negation is a lookup.
        assert!(plan.contains("F[hash@1]"), "{plan}");
        assert!(plan.contains("not T[lookup]"), "{plan}");
        // The single-atom base rules scan.
        assert!(plan.contains("E[scan]"), "{plan}");
    }

    #[test]
    fn stats_reported_per_stratum() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x) :- Adom(x), not T(x,x).\n\
             Adom(x) :- E(x,y).\n\
             Adom(y) :- E(x,y).",
        )
        .unwrap();
        let (_, stats) = eval_program_with(&p, &path(4), Engine::SemiNaive).unwrap();
        assert_eq!(stats.len(), 2);
        assert!(stats[0].new_facts > 0);
    }
}
