//! The engine's internal relation store, backed by the shared
//! evaluation substrate ([`calm_common::storage`]).
//!
//! A [`Database`] couples a [`Storage`] (interned, indexed, delta-tracked
//! rows) with the [`SharedSymbols`] table its rows are interned against.
//! Unlike [`Instance`] (which is ordered for determinism), row storage is
//! hash-based for speed; results are converted back to instances at the
//! evaluation edges only.

use calm_common::instance::Instance;
use calm_common::schema::Schema;
use calm_common::storage::{
    load_instance, store_to_instance, store_to_instance_restricted, RelId, SharedSymbols, Storage,
    Sym, SymTuple,
};
use calm_common::value::Value;

/// A mutable store of relations used during evaluation.
#[derive(Debug, Clone, Default)]
pub struct Database {
    symbols: SharedSymbols,
    storage: Storage,
}

impl Database {
    /// An empty database over a fresh symbol table.
    pub fn new() -> Self {
        Database::default()
    }

    /// An empty database over an existing (shared) symbol table.
    pub fn with_symbols(symbols: SharedSymbols) -> Self {
        Database {
            symbols,
            storage: Storage::new(),
        }
    }

    /// Load an instance into a fresh database.
    pub fn from_instance(i: &Instance) -> Self {
        Database::from_instance_with(i, SharedSymbols::new())
    }

    /// Load an instance into a fresh database over an existing table.
    pub fn from_instance_with(i: &Instance, symbols: SharedSymbols) -> Self {
        let mut db = Database::with_symbols(symbols);
        db.load(i);
        db
    }

    /// Intern an instance's facts into this database.
    pub fn load(&mut self, i: &Instance) {
        load_instance(i, &self.symbols, &mut self.storage);
    }

    /// Convert back to a deterministic instance.
    pub fn to_instance(&self) -> Instance {
        store_to_instance(&self.storage, &self.symbols)
    }

    /// Convert only the relations of `schema` back to an instance —
    /// equivalent to `self.to_instance().restrict(schema)` without
    /// uninterning the rows that restriction would drop.
    pub fn to_instance_restricted(&self, schema: &Schema) -> Instance {
        store_to_instance_restricted(&self.storage, &self.symbols, schema)
    }

    /// The symbol table shared by this database.
    pub fn symbols(&self) -> &SharedSymbols {
        &self.symbols
    }

    /// The underlying storage.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable access to the underlying storage.
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Insert an interned row; returns `true` if new.
    pub fn insert(&mut self, relation: RelId, row: SymTuple) -> bool {
        self.storage.insert(relation, row)
    }

    /// Interned membership test.
    pub fn contains(&self, relation: RelId, row: &[Sym]) -> bool {
        self.storage.contains(relation, row)
    }

    /// Insert a tuple by relation name, interning it; returns `true` if
    /// new. Edge/test convenience — hot paths insert interned rows.
    pub fn insert_values(&mut self, relation: &str, tuple: Vec<Value>) -> bool {
        let mut table = self.symbols.write();
        let r = table.rel(relation);
        let row: SymTuple = tuple.iter().map(|v| table.sym(v)).collect();
        drop(table);
        self.storage.insert(r, row)
    }

    /// Membership test by relation name. Edge/test convenience.
    pub fn contains_values(&self, relation: &str, tuple: &[Value]) -> bool {
        let table = self.symbols.read();
        let Some(r) = table.lookup_rel(relation) else {
            return false;
        };
        let mut row = SymTuple::with_capacity(tuple.len());
        for v in tuple {
            match table.lookup_sym(v) {
                Some(s) => row.push(s),
                None => return false,
            }
        }
        drop(table);
        self.storage.contains(r, &row)
    }

    /// Bulk-insert all facts of another database over the *same* symbol
    /// table; returns the number of genuinely new rows.
    pub fn absorb(&mut self, other: &Database) -> usize {
        assert!(
            self.symbols.same_table(&other.symbols),
            "absorb requires databases sharing one symbol table"
        );
        let mut added = 0;
        for r in other.storage.rel_ids() {
            let Some(rel) = other.storage.relation(r) else {
                continue;
            };
            for row in rel.rows() {
                if self.storage.insert(r, row.clone()) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Whether two databases over the same symbol table hold the same
    /// facts (no [`Instance`] round-trip).
    pub fn same_facts(&self, other: &Database) -> bool {
        assert!(
            self.symbols.same_table(&other.symbols),
            "same_facts requires databases sharing one symbol table"
        );
        self.storage.same_facts(&other.storage)
    }

    /// Total number of tuples — O(1).
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Whether the database holds no tuples — O(1).
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Remove all facts, keeping allocations and indexes warm.
    pub fn clear(&mut self) {
        self.storage.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::value::v;

    #[test]
    fn round_trips_instances() {
        let i = Instance::from_facts([fact("E", [1, 2]), fact("V", [7])]);
        let db = Database::from_instance(&i);
        assert_eq!(db.len(), 2);
        assert_eq!(db.to_instance(), i);
        assert!(db.contains_values("E", &[v(1), v(2)]));
        assert!(!db.contains_values("E", &[v(2), v(1)]));
        assert!(!db.contains_values("Missing", &[v(1)]));
    }

    #[test]
    fn insert_reports_novelty() {
        let mut db = Database::new();
        assert!(db.insert_values("E", vec![v(1), v(2)]));
        assert!(!db.insert_values("E", vec![v(1), v(2)]));
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn absorb_counts_new() {
        let symbols = SharedSymbols::new();
        let mut a = Database::from_instance_with(
            &Instance::from_facts([fact("E", [1, 2])]),
            symbols.clone(),
        );
        let b = Database::from_instance_with(
            &Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]),
            symbols,
        );
        assert_eq!(a.absorb(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn same_facts_across_shared_tables() {
        let symbols = SharedSymbols::new();
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
        let a = Database::from_instance_with(&i, symbols.clone());
        let mut b = Database::with_symbols(symbols);
        assert!(!a.same_facts(&b));
        b.insert_values("E", vec![v(2), v(3)]);
        b.insert_values("E", vec![v(1), v(2)]);
        assert!(a.same_facts(&b));
    }

    #[test]
    #[should_panic(expected = "sharing one symbol table")]
    fn absorb_rejects_foreign_tables() {
        let mut a = Database::from_instance(&Instance::from_facts([fact("E", [1, 2])]));
        let b = Database::from_instance(&Instance::from_facts([fact("E", [1, 2])]));
        a.absorb(&b);
    }
}
