//! The engine's internal relation store, backed by the shared
//! evaluation substrate ([`calm_common::storage`]).
//!
//! A [`Database`] couples a [`Storage`] (interned, indexed, delta-tracked
//! rows) with the [`SharedSymbols`] table its rows are interned against.
//! Unlike [`Instance`] (which is ordered for determinism), row storage is
//! hash-based for speed; results are converted back to instances at the
//! evaluation edges only.

use calm_common::instance::Instance;
use calm_common::schema::Schema;
use calm_common::storage::{
    load_instance, store_to_instance, store_to_instance_restricted, RelId, SharedSymbols, Storage,
    Sym, SymTuple,
};
use calm_common::update::UpdateBatch;
use calm_common::value::Value;
use std::collections::{HashMap, HashSet};

/// A mutable store of relations used during evaluation.
#[derive(Debug, Clone, Default)]
pub struct Database {
    symbols: SharedSymbols,
    storage: Storage,
}

impl Database {
    /// An empty database over a fresh symbol table.
    pub fn new() -> Self {
        Database::default()
    }

    /// An empty database over an existing (shared) symbol table.
    pub fn with_symbols(symbols: SharedSymbols) -> Self {
        Database {
            symbols,
            storage: Storage::new(),
        }
    }

    /// Load an instance into a fresh database.
    pub fn from_instance(i: &Instance) -> Self {
        Database::from_instance_with(i, SharedSymbols::new())
    }

    /// Load an instance into a fresh database over an existing table.
    pub fn from_instance_with(i: &Instance, symbols: SharedSymbols) -> Self {
        let mut db = Database::with_symbols(symbols);
        db.load(i);
        db
    }

    /// Intern an instance's facts into this database.
    pub fn load(&mut self, i: &Instance) {
        load_instance(i, &self.symbols, &mut self.storage);
    }

    /// Convert back to a deterministic instance.
    pub fn to_instance(&self) -> Instance {
        store_to_instance(&self.storage, &self.symbols)
    }

    /// Convert only the relations of `schema` back to an instance —
    /// equivalent to `self.to_instance().restrict(schema)` without
    /// uninterning the rows that restriction would drop.
    pub fn to_instance_restricted(&self, schema: &Schema) -> Instance {
        store_to_instance_restricted(&self.storage, &self.symbols, schema)
    }

    /// The symbol table shared by this database.
    pub fn symbols(&self) -> &SharedSymbols {
        &self.symbols
    }

    /// The underlying storage.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable access to the underlying storage.
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Insert an interned row; returns `true` if new.
    pub fn insert(&mut self, relation: RelId, row: SymTuple) -> bool {
        self.storage.insert(relation, row)
    }

    /// Retract an interned row (tombstone it; see
    /// [`calm_common::storage::Relation::retract`]); returns `true` if
    /// the row was present and live.
    pub fn retract(&mut self, relation: RelId, row: &[Sym]) -> bool {
        self.storage.retract(relation, row)
    }

    /// Interned membership test.
    pub fn contains(&self, relation: RelId, row: &[Sym]) -> bool {
        self.storage.contains(relation, row)
    }

    /// Retract a tuple by relation name; returns `true` if the fact was
    /// present and live. A never-interned relation or value means the
    /// fact cannot be present — a no-op, not an interning.
    pub fn retract_values(&mut self, relation: &str, tuple: &[Value]) -> bool {
        let row = {
            let table = self.symbols.read();
            let Some(r) = table.lookup_rel(relation) else {
                return false;
            };
            let mut row = SymTuple::with_capacity(tuple.len());
            for v in tuple {
                match table.lookup_sym(v) {
                    Some(s) => row.push(s),
                    None => return false,
                }
            }
            (r, row)
        };
        self.storage.retract(row.0, &row.1)
    }

    /// Apply a raw [`UpdateBatch`] to this database's facts: deletions
    /// first (tombstones), then insertions (interning as needed) —
    /// matching [`UpdateBatch::apply_to_instance`]. Returns
    /// `(inserted, deleted)` counts of facts that actually changed.
    /// This is the *EDB half* only — no rule maintenance; the
    /// incremental engine layers retraction propagation on top.
    pub fn apply_update_batch(&mut self, batch: &UpdateBatch) -> (usize, usize) {
        let mut deleted = 0;
        for f in &batch.delete {
            if self.retract_values(f.relation().as_ref(), f.args()) {
                deleted += 1;
            }
        }
        let mut inserted = 0;
        for f in &batch.insert {
            if self.insert_values(f.relation().as_ref(), f.args().to_vec()) {
                inserted += 1;
            }
        }
        (inserted, deleted)
    }

    /// Make this database's facts exactly equal to `i`: retract every
    /// live row absent from `i`, insert every fact of `i` not yet
    /// present, then compact the tombstones. Unlike
    /// [`Database::load`] (which is additive and silently keeps rows a
    /// shrunk instance no longer holds), this is the correct reload
    /// path for a persistent scratch database whose source instance
    /// may have had facts removed.
    pub fn sync_with_instance(&mut self, i: &Instance) {
        let mut want: HashMap<RelId, HashSet<SymTuple>> = HashMap::new();
        {
            let mut table = self.symbols.write();
            for name in i.relation_names() {
                let r = table.rel(name);
                let rows = want.entry(r).or_default();
                for t in i.tuples(name) {
                    rows.insert(t.iter().map(|v| table.sym(v)).collect());
                }
            }
        }
        let empty = HashSet::new();
        let rel_ids: Vec<RelId> = self.storage.rel_ids().collect();
        for r in rel_ids {
            let target = want.get(&r).unwrap_or(&empty);
            let stale: Vec<SymTuple> = self
                .storage
                .relation(r)
                .map(|rel| {
                    rel.live_rows()
                        .filter(|row| !target.contains(*row))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
            for row in stale {
                self.storage.retract(r, &row);
            }
        }
        for (r, rows) in want {
            for row in rows {
                self.storage.insert(r, row);
            }
        }
        self.storage.compact_retractions();
    }

    /// Insert a tuple by relation name, interning it; returns `true` if
    /// new. Edge/test convenience — hot paths insert interned rows.
    pub fn insert_values(&mut self, relation: &str, tuple: Vec<Value>) -> bool {
        let mut table = self.symbols.write();
        let r = table.rel(relation);
        let row: SymTuple = tuple.iter().map(|v| table.sym(v)).collect();
        drop(table);
        self.storage.insert(r, row)
    }

    /// Membership test by relation name. Edge/test convenience.
    pub fn contains_values(&self, relation: &str, tuple: &[Value]) -> bool {
        let table = self.symbols.read();
        let Some(r) = table.lookup_rel(relation) else {
            return false;
        };
        let mut row = SymTuple::with_capacity(tuple.len());
        for v in tuple {
            match table.lookup_sym(v) {
                Some(s) => row.push(s),
                None => return false,
            }
        }
        drop(table);
        self.storage.contains(r, &row)
    }

    /// Bulk-insert all facts of another database over the *same* symbol
    /// table; returns the number of genuinely new rows.
    pub fn absorb(&mut self, other: &Database) -> usize {
        assert!(
            self.symbols.same_table(&other.symbols),
            "absorb requires databases sharing one symbol table"
        );
        let mut added = 0;
        for r in other.storage.rel_ids() {
            let Some(rel) = other.storage.relation(r) else {
                continue;
            };
            for row in rel.live_rows() {
                if self.storage.insert(r, row.clone()) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Whether two databases over the same symbol table hold the same
    /// facts (no [`Instance`] round-trip).
    pub fn same_facts(&self, other: &Database) -> bool {
        assert!(
            self.symbols.same_table(&other.symbols),
            "same_facts requires databases sharing one symbol table"
        );
        self.storage.same_facts(&other.storage)
    }

    /// Total number of tuples — O(1).
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Whether the database holds no tuples — O(1).
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Remove all facts, keeping allocations and indexes warm.
    pub fn clear(&mut self) {
        self.storage.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::value::v;

    #[test]
    fn round_trips_instances() {
        let i = Instance::from_facts([fact("E", [1, 2]), fact("V", [7])]);
        let db = Database::from_instance(&i);
        assert_eq!(db.len(), 2);
        assert_eq!(db.to_instance(), i);
        assert!(db.contains_values("E", &[v(1), v(2)]));
        assert!(!db.contains_values("E", &[v(2), v(1)]));
        assert!(!db.contains_values("Missing", &[v(1)]));
    }

    #[test]
    fn insert_reports_novelty() {
        let mut db = Database::new();
        assert!(db.insert_values("E", vec![v(1), v(2)]));
        assert!(!db.insert_values("E", vec![v(1), v(2)]));
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn absorb_counts_new() {
        let symbols = SharedSymbols::new();
        let mut a = Database::from_instance_with(
            &Instance::from_facts([fact("E", [1, 2])]),
            symbols.clone(),
        );
        let b = Database::from_instance_with(
            &Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]),
            symbols,
        );
        assert_eq!(a.absorb(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn same_facts_across_shared_tables() {
        let symbols = SharedSymbols::new();
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
        let a = Database::from_instance_with(&i, symbols.clone());
        let mut b = Database::with_symbols(symbols);
        assert!(!a.same_facts(&b));
        b.insert_values("E", vec![v(2), v(3)]);
        b.insert_values("E", vec![v(1), v(2)]);
        assert!(a.same_facts(&b));
    }

    #[test]
    fn retract_values_and_update_batches() {
        let mut db = Database::from_instance(&Instance::from_facts([
            fact("E", [1, 2]),
            fact("E", [2, 3]),
        ]));
        // Retracting unknown relations/values is a no-op, not interning.
        assert!(!db.retract_values("Missing", &[v(1)]));
        assert!(!db.retract_values("E", &[v(1), v(99)]));
        assert!(db.retract_values("E", &[v(2), v(3)]));
        assert!(!db.retract_values("E", &[v(2), v(3)]), "already gone");
        assert_eq!(db.to_instance(), Instance::from_facts([fact("E", [1, 2])]));
        let batch = calm_common::UpdateBatch::deleting([fact("E", [1, 2])])
            .with_insert(fact("E", [5, 6]))
            .with_insert(fact("E", [5, 6])); // duplicate: one insert
        let (ins, del) = db.apply_update_batch(&batch);
        assert_eq!((ins, del), (1, 1));
        assert_eq!(db.to_instance(), Instance::from_facts([fact("E", [5, 6])]));
    }

    #[test]
    fn sync_with_instance_drops_stale_rows_load_keeps() {
        // Regression shape for the Instance::remove / Storage mismatch:
        // reloading a shrunk instance via the additive `load` keeps the
        // removed fact; `sync_with_instance` does not.
        let mut i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
        let mut stale = Database::from_instance(&i);
        let mut synced = stale.clone();
        i.remove(&fact("E", [2, 3]));
        stale.load(&i);
        assert!(
            stale.contains_values("E", &[v(2), v(3)]),
            "additive load keeps the removed fact (the bug being guarded)"
        );
        synced.sync_with_instance(&i);
        assert!(!synced.contains_values("E", &[v(2), v(3)]));
        assert_eq!(synced.to_instance(), i);
        // Tombstones were compacted away: storage is physically clean.
        assert!(!synced.storage().any_dead());
        // Growing again also works through sync.
        i.insert(fact("E", [7, 8]));
        synced.sync_with_instance(&i);
        assert_eq!(synced.to_instance(), i);
    }

    #[test]
    #[should_panic(expected = "sharing one symbol table")]
    fn absorb_rejects_foreign_tables() {
        let mut a = Database::from_instance(&Instance::from_facts([fact("E", [1, 2])]));
        let b = Database::from_instance(&Instance::from_facts([fact("E", [1, 2])]));
        a.absorb(&b);
    }
}
