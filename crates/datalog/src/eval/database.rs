//! The engine's internal relation store.

use calm_common::fact::RelName;
use calm_common::instance::{Instance, Tuple};
use std::collections::{HashMap, HashSet};

/// A mutable store of relations used during evaluation. Unlike
/// [`Instance`] (which is ordered for determinism), the database uses hash
/// sets for speed; results are converted back to instances at the end.
#[derive(Debug, Clone, Default)]
pub struct Database {
    rels: HashMap<RelName, HashSet<Tuple>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Load an instance into a fresh database.
    pub fn from_instance(i: &Instance) -> Self {
        let mut db = Database::new();
        for name in i.relation_names() {
            let set: HashSet<Tuple> = i.tuples(name).cloned().collect();
            db.rels.insert(name.clone(), set);
        }
        db
    }

    /// Convert back to a deterministic instance.
    pub fn to_instance(&self) -> Instance {
        let mut out = Instance::new();
        for (name, tuples) in &self.rels {
            for t in tuples {
                out.insert_tuple(name, t.clone());
            }
        }
        out
    }

    /// The tuples of a relation (empty slice semantics if absent).
    pub fn tuples(&self, relation: &RelName) -> Option<&HashSet<Tuple>> {
        self.rels.get(relation)
    }

    /// Membership test.
    pub fn contains(&self, relation: &RelName, tuple: &[calm_common::value::Value]) -> bool {
        self.rels
            .get(relation)
            .is_some_and(|set| set.contains(tuple))
    }

    /// Insert a tuple; returns `true` if new.
    pub fn insert(&mut self, relation: &RelName, tuple: Tuple) -> bool {
        if let Some(set) = self.rels.get_mut(relation) {
            set.insert(tuple)
        } else {
            self.rels
                .entry(relation.clone())
                .or_default()
                .insert(tuple)
        }
    }

    /// Bulk-insert all facts of another database; returns the number of
    /// genuinely new tuples.
    pub fn absorb(&mut self, other: &Database) -> usize {
        let mut added = 0;
        for (name, tuples) in &other.rels {
            for t in tuples {
                if self.insert(name, t.clone()) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.rels.values().map(HashSet::len).sum()
    }

    /// Whether the database holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::{fact, rel};
    use calm_common::value::v;

    #[test]
    fn round_trips_instances() {
        let i = Instance::from_facts([fact("E", [1, 2]), fact("V", [7])]);
        let db = Database::from_instance(&i);
        assert_eq!(db.len(), 2);
        assert_eq!(db.to_instance(), i);
        assert!(db.contains(&rel("E"), &[v(1), v(2)]));
        assert!(!db.contains(&rel("E"), &[v(2), v(1)]));
    }

    #[test]
    fn insert_reports_novelty() {
        let mut db = Database::new();
        assert!(db.insert(&rel("E"), vec![v(1), v(2)]));
        assert!(!db.insert(&rel("E"), vec![v(1), v(2)]));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn absorb_counts_new() {
        let mut a = Database::from_instance(&Instance::from_facts([fact("E", [1, 2])]));
        let b = Database::from_instance(&Instance::from_facts([
            fact("E", [1, 2]),
            fact("E", [2, 3]),
        ]));
        assert_eq!(a.absorb(&b), 1);
        assert_eq!(a.len(), 2);
    }
}
