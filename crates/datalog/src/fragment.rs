//! Fragment analysis (Sections 2 and 5.1).
//!
//! Classifies programs into the fragments of Figure 2:
//! `Datalog` ⊂ `Datalog(≠)` ⊂ `SP-Datalog` ⊂ `semicon-Datalog¬` ⊂
//! `Datalog¬` (stratified), and the connected fragment `con-Datalog¬`.
//!
//! Connectivity (Definition 4): `graph+(ϕ)` has the variables of the
//! positive body atoms as nodes and an edge between two variables that
//! occur together in a positive body atom; `ϕ` is *connected* when
//! `graph+(ϕ)` is connected. A stratified program is **connected** when
//! some stratification makes every stratum a connected SP-Datalog program
//! (equivalently: every rule is connected), and **semi-connected** when
//! some stratification makes every stratum except possibly the last
//! connected.

use crate::ast::{Rule, Var};
use crate::program::Program;
use crate::stratify::is_stratifiable;
use calm_common::fact::RelName;
use std::collections::{BTreeMap, BTreeSet};

/// Whether `graph+(ϕ)` is connected.
///
/// A rule whose positive atoms contain at most one variable (or none) is
/// trivially connected.
pub fn is_rule_connected(rule: &Rule) -> bool {
    let vars: Vec<Var> = rule.positive_variables().into_iter().collect();
    if vars.len() <= 1 {
        return true;
    }
    let index: BTreeMap<&Var, usize> = vars.iter().enumerate().map(|(i, v)| (v, i)).collect();
    // Union-find over variables.
    let mut parent: Vec<usize> = (0..vars.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for atom in &rule.pos {
        let atom_vars: Vec<usize> = atom.variables().map(|v| index[v]).collect();
        for w in atom_vars.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let root = find(&mut parent, 0);
    (1..vars.len()).all(|i| find(&mut parent, i) == root)
}

/// The fragments of Figure 2 that a program can syntactically inhabit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentReport {
    /// Positive, no inequalities (`Datalog`).
    pub datalog: bool,
    /// Positive, inequalities allowed (`Datalog(≠)`).
    pub datalog_neq: bool,
    /// Semi-positive (`SP-Datalog`): negation only on edb relations.
    pub sp_datalog: bool,
    /// Syntactically stratifiable (`Datalog¬` in the paper's usage).
    pub stratifiable: bool,
    /// Connected stratified program (`con-Datalog¬`).
    pub connected: bool,
    /// Semi-connected stratified program (`semicon-Datalog¬`).
    pub semi_connected: bool,
}

/// Classify a program into the fragments of Figure 2.
pub fn classify(p: &Program) -> FragmentReport {
    let positive = p.is_positive();
    let stratifiable = is_stratifiable(p);
    FragmentReport {
        datalog: positive && !p.uses_inequalities(),
        datalog_neq: positive,
        sp_datalog: p.is_semi_positive(),
        stratifiable,
        connected: stratifiable && is_connected_program(p),
        semi_connected: stratifiable && is_semi_connected_program(p),
    }
}

/// `con-Datalog¬`: stratifiable and every rule connected. (When every rule
/// is connected, *any* stratification consists of connected SP-Datalog
/// strata, so the exists-a-stratification condition reduces to a per-rule
/// check.)
pub fn is_connected_program(p: &Program) -> bool {
    is_stratifiable(p) && p.rules().iter().all(is_rule_connected)
}

/// `semicon-Datalog¬`: stratifiable, and some stratification puts every
/// non-connected rule in the last stratum (with that last stratum still a
/// valid semi-positive program).
///
/// The check closes the heads of non-connected rules upward under
/// "appears in the body of": the closure `L` is the least set of idb
/// predicates containing all heads of non-connected rules such that any
/// rule using an `L`-predicate in its body has its head in `L`. The
/// program is semi-connected iff no rule with head in `L` *negates* an
/// `L`-predicate (that would force two strata inside the would-be last
/// stratum).
pub fn is_semi_connected_program(p: &Program) -> bool {
    if !is_stratifiable(p) {
        return false;
    }
    let last = last_stratum_closure(p);
    // Every rule whose head is in `last` may negate only predicates
    // outside `last`.
    p.rules()
        .iter()
        .filter(|r| last.contains(&r.head.relation))
        .all(|r| r.neg.iter().all(|a| !last.contains(&a.relation)))
}

/// The upward closure `L` described at [`is_semi_connected_program`]: the
/// set of idb predicates that must live in the final stratum.
pub fn last_stratum_closure(p: &Program) -> BTreeSet<RelName> {
    let idb = p.idb();
    let mut l: BTreeSet<RelName> = p
        .rules()
        .iter()
        .filter(|r| !is_rule_connected(r))
        .map(|r| r.head.relation.clone())
        .filter(|h| idb.contains(h))
        .collect();
    loop {
        let mut changed = false;
        for r in p.rules() {
            if l.contains(&r.head.relation) {
                continue;
            }
            let uses_l = r
                .pos
                .iter()
                .chain(r.neg.iter())
                .any(|a| l.contains(&a.relation));
            if uses_l {
                l.insert(r.head.relation.clone());
                changed = true;
            }
        }
        if !changed {
            return l;
        }
    }
}

/// A stratification witnessing semi-connectedness: `(connected_prefix,
/// last_stratum)` where the prefix is a connected stratified program and
/// the last stratum is a semi-positive program over the prefix's output.
/// Returns `None` when the program is not semi-connected.
///
/// Used by Theorem 5.3's membership argument
/// (`P = P_s ∘ P_{≤s-1}`).
pub fn semicon_split(p: &Program) -> Option<(Program, Program)> {
    if !is_semi_connected_program(p) {
        return None;
    }
    let last = last_stratum_closure(p);
    let prefix = p.filter_rules(|r| !last.contains(&r.head.relation));
    let suffix = p.filter_rules(|r| last.contains(&r.head.relation));
    Some((prefix, suffix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_rule};

    #[test]
    fn single_atom_rule_is_connected() {
        let r = parse_rule("T(x,y) :- E(x,y).").unwrap();
        assert!(is_rule_connected(&r));
    }

    #[test]
    fn join_rule_connected_via_shared_variable() {
        let r = parse_rule("T(x,z) :- T(x,y), E(y,z).").unwrap();
        assert!(is_rule_connected(&r));
    }

    #[test]
    fn cartesian_product_rule_not_connected() {
        let r = parse_rule("O(x,y) :- V(x), W(y).").unwrap();
        assert!(!is_rule_connected(&r));
    }

    #[test]
    fn negative_atoms_do_not_connect() {
        // graph+ only uses positive atoms: x and y unconnected.
        let r = parse_rule("O(x,y) :- V(x), V(y), not E(x,y).").unwrap();
        assert!(!is_rule_connected(&r));
    }

    #[test]
    fn example_51_p1_is_connected_not_sp() {
        // Example 5.1 of the paper.
        let p1 = parse_program(
            "T(x) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.\n\
             O(x) :- Adom(x), not T(x).\n\
             Adom(x) :- E(x,y).\n\
             Adom(y) :- E(x,y).",
        )
        .unwrap();
        let report = classify(&p1);
        assert!(report.connected, "P1 is in con-Datalog¬");
        assert!(report.semi_connected);
        assert!(!report.sp_datalog, "P1 negates the idb relation T");
        assert!(report.stratifiable);
        assert!(!report.datalog);
    }

    #[test]
    fn example_51_p2_not_semi_connected() {
        // P2: the D rule joins two triangles with *no* shared variable.
        let p2 = parse_program(
            "T(x,y,z) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.\n\
             D(x1) :- T(x1,x2,x3), T(y1,y2,y3), x1 != y1, x1 != y2, x1 != y3, \
                      x2 != y1, x2 != y2, x2 != y3, x3 != y1, x3 != y2, x3 != y3.\n\
             O(x) :- Adom(x), not D(x).\n\
             Adom(x) :- E(x,y).\n\
             Adom(y) :- E(x,y).",
        )
        .unwrap();
        let report = classify(&p2);
        assert!(!report.connected);
        // D's rule is unconnected and O negates D — D is forced into the
        // last stratum together with O, but O negates D: not
        // semi-connected.
        assert!(!report.semi_connected);
    }

    #[test]
    fn unconnected_rule_in_final_stratum_is_semicon() {
        // The unconnected rule's head O is only the output: fine.
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             O(x,y) :- T(x,u), T(y,w).",
        )
        .unwrap();
        let report = classify(&p);
        assert!(!report.connected);
        assert!(report.semi_connected);
    }

    #[test]
    fn sp_datalog_is_semi_connected() {
        // Paper: SP-Datalog ⊂ semicon-Datalog¬ — any SP program can put
        // everything in the last stratum.
        let p = parse_program("O(x,y) :- V(x), W(y), not E(x,y).").unwrap();
        let report = classify(&p);
        assert!(report.sp_datalog);
        assert!(report.semi_connected);
        assert!(!report.connected);
    }

    #[test]
    fn closure_propagates_upwards() {
        // A is unconnected; B uses A positively; C negates B -> all in L,
        // and C's negation of B (in L) breaks semi-connectedness.
        let p = parse_program(
            "A(x,y) :- V(x), W(y).\n\
             B(x) :- A(x,x).\n\
             C(x) :- V(x), not B(x).",
        )
        .unwrap();
        let l = last_stratum_closure(&p);
        assert!(l.contains("A"));
        assert!(l.contains("B"));
        assert!(l.contains("C"));
        assert!(!is_semi_connected_program(&p));
    }

    #[test]
    fn semicon_split_produces_connected_prefix() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x,y) :- T(x,u), T(y,w), not T(x,y).",
        )
        .unwrap();
        let (prefix, suffix) = semicon_split(&p).expect("semi-connected");
        assert!(prefix.rules().iter().all(is_rule_connected));
        assert_eq!(suffix.rules().len(), 1);
        // Suffix negates only prefix predicates: semi-positive over them.
        assert!(suffix.is_semi_positive() || suffix.rules()[0].neg[0].relation.as_ref() == "T");
    }

    #[test]
    fn positive_fragments() {
        let tc = parse_program("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).").unwrap();
        let r = classify(&tc);
        assert!(r.datalog && r.datalog_neq && r.sp_datalog && r.connected && r.semi_connected);
        let with_neq = parse_program("O(x,y) :- E(x,y), x != y.").unwrap();
        let r2 = classify(&with_neq);
        assert!(!r2.datalog && r2.datalog_neq);
    }
}
