//! Syntactic stratification (Section 2, "Stratified semantics").
//!
//! A program `P` is syntactically stratifiable when there is
//! `ρ : sch(P) → {1..|idb(P)|}` such that for every rule with head
//! predicate `T`: `ρ(R) ≤ ρ(T)` for positive idb body atoms `R`, and
//! `ρ(R) < ρ(T)` for negative idb body atoms `R`. We compute the *minimal*
//! such `ρ` by iterating the constraints to a fixpoint, failing when a
//! stratum number would exceed `|idb(P)|` (which happens exactly when a
//! cycle through negation exists).

use crate::program::Program;
use calm_common::fact::RelName;
use std::collections::BTreeMap;
use std::fmt;

/// A stratification of a program: stratum numbers for idb predicates and
/// the induced partition of the program into semi-positive subprograms
/// `P1, ..., Pk`.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Stratum number (1-based) of each idb predicate.
    pub stratum_of: BTreeMap<RelName, usize>,
    /// The partition `P1, ..., Pk` as programs (each stratum a program whose
    /// rules have head predicates with that stratum number).
    pub strata: Vec<Program>,
}

impl Stratification {
    /// Number of strata `k`.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Whether the stratification has no strata (the empty program).
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// Verify the defining property: every stratum is a semi-positive
    /// program relative to the strata below it — positive idb
    /// dependencies stay at or below the head's stratum, negative ones
    /// strictly below. Used as an internal consistency check by tests.
    pub fn verify(&self) -> bool {
        for (level, part) in self.strata.iter().enumerate() {
            let level = level + 1;
            for rule in part.rules() {
                if self.stratum_of.get(&rule.head.relation) != Some(&level) {
                    return false;
                }
                for a in &rule.pos {
                    if let Some(&s) = self.stratum_of.get(&a.relation) {
                        if s > level {
                            return false;
                        }
                    }
                }
                for a in &rule.neg {
                    if let Some(&s) = self.stratum_of.get(&a.relation) {
                        if s >= level {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

/// The error raised for non-stratifiable programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotStratifiable {
    /// A predicate involved in a negative cycle.
    pub witness: String,
}

impl fmt::Display for NotStratifiable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program is not syntactically stratifiable (negative cycle through {})",
            self.witness
        )
    }
}

impl std::error::Error for NotStratifiable {}

/// Compute the minimal syntactic stratification of `P`, or report that none
/// exists.
///
/// # Errors
/// Returns [`NotStratifiable`] when `P` has a cycle through negation.
pub fn stratify(p: &Program) -> Result<Stratification, NotStratifiable> {
    let idb = p.idb();
    let n = idb.len();
    let mut stratum: BTreeMap<RelName, usize> = idb.names().map(|r| (r.clone(), 1usize)).collect();
    if n == 0 {
        return Ok(Stratification {
            stratum_of: stratum,
            strata: Vec::new(),
        });
    }
    // Iterate constraints to fixpoint. Any predicate pushed above n
    // witnesses a negative cycle.
    loop {
        let mut changed = false;
        for rule in p.rules() {
            let head = rule.head.relation.clone();
            let head_stratum = stratum[&head];
            let mut required = head_stratum;
            for a in &rule.pos {
                if let Some(&s) = stratum.get(&a.relation) {
                    required = required.max(s);
                }
            }
            for a in &rule.neg {
                if let Some(&s) = stratum.get(&a.relation) {
                    required = required.max(s + 1);
                }
            }
            if required > head_stratum {
                if required > n {
                    return Err(NotStratifiable {
                        witness: head.to_string(),
                    });
                }
                stratum.insert(head, required);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Renumber to consecutive 1..k.
    let mut used: Vec<usize> = stratum.values().copied().collect();
    used.sort_unstable();
    used.dedup();
    let renumber: BTreeMap<usize, usize> =
        used.iter().enumerate().map(|(i, &s)| (s, i + 1)).collect();
    for s in stratum.values_mut() {
        *s = renumber[s];
    }
    let k = used.len();
    let strata = (1..=k)
        .map(|level| p.filter_rules(|rule| stratum[&rule.head.relation] == level))
        .collect();
    Ok(Stratification {
        stratum_of: stratum,
        strata,
    })
}

/// Whether `P` is syntactically stratifiable.
pub fn is_stratifiable(p: &Program) -> bool {
    stratify(p).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn positive_program_single_stratum() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.stratum_of.get("T" as &str).copied(), Some(1));
    }

    #[test]
    fn qtc_has_two_strata() {
        let p = parse_program(
            "Adom(x) :- E(x,y).\n\
             Adom(y) :- E(x,y).\n\
             T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x,y) :- Adom(x), Adom(y), not T(x,y).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.stratum_of["T"], 1);
        assert_eq!(s.stratum_of["Adom"], 1);
        assert_eq!(s.stratum_of["O"], 2);
        // Each stratum is semi-positive w.r.t. lower strata: stratum 2's
        // rules only negate stratum-1 predicates.
        assert_eq!(s.strata[0].rules().len(), 4);
        assert_eq!(s.strata[1].rules().len(), 1);
    }

    #[test]
    fn win_move_not_stratifiable() {
        let p = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
        let e = stratify(&p).unwrap_err();
        assert_eq!(e.witness, "win");
        assert!(!is_stratifiable(&p));
    }

    #[test]
    fn three_level_chain() {
        let p = parse_program(
            "A(x) :- V(x).\n\
             B(x) :- V(x), not A(x).\n\
             C(x) :- V(x), not B(x).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.stratum_of["A"] < s.stratum_of["B"]);
        assert!(s.stratum_of["B"] < s.stratum_of["C"]);
    }

    #[test]
    fn positive_recursion_through_two_preds_ok() {
        let p = parse_program(
            "A(x) :- B(x).\n\
             B(x) :- A(x).\n\
             A(x) :- V(x).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn negative_cycle_of_length_two() {
        let p = parse_program(
            "A(x) :- V(x), not B(x).\n\
             B(x) :- V(x), not A(x).",
        )
        .unwrap();
        assert!(!is_stratifiable(&p));
    }

    #[test]
    fn mixed_positive_negative_on_same_pred_ok() {
        // Negation on a predicate that is also used positively at a higher
        // stratum is fine as long as no cycle passes through the negation.
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             S(x) :- T(x,x).\n\
             O(x) :- S(x), not T(x,x).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of["T"], 1);
        assert!(s.stratum_of["O"] >= 2);
    }

    #[test]
    fn verify_accepts_real_stratifications() {
        for src in [
            "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
            "A(x) :- V(x).\nB(x) :- V(x), not A(x).\nC(x) :- V(x), not B(x).",
            "Adom(x) :- E(x,y).\nAdom(y) :- E(x,y).\nT(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\nO(x,y) :- Adom(x), Adom(y), not T(x,y).",
        ] {
            let p = parse_program(src).unwrap();
            assert!(stratify(&p).unwrap().verify(), "on:\n{src}");
        }
    }

    #[test]
    fn empty_program_stratifies_trivially() {
        let p = crate::program::Program::new(vec![]).unwrap();
        let s = stratify(&p).unwrap();
        assert!(s.is_empty());
    }
}
