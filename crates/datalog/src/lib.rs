//! # calm-datalog
//!
//! Datalog with stratified negation, exactly as defined in Section 2 of
//! *"Weaker Forms of Monotonicity for Declarative Networking"* (PODS 2014):
//! rules `(head, pos, neg, ineq)`, semi-positive and stratified semantics,
//! plus the fragment analysis of Section 5.1 (connected and semi-connected
//! stratified Datalog¬) and the well-founded semantics (alternating
//! fixpoint and the doubled-program construction) used for win-move.
//!
//! Entry points:
//! * [`parser::parse_program`] — text syntax → [`program::Program`];
//! * [`eval::eval_query`] — stratified evaluation projected onto the
//!   output schema;
//! * [`query::DatalogQuery`] — a program packaged as a
//!   [`calm_common::query::Query`];
//! * [`fragment::classify`] — Figure 2 fragment membership;
//! * [`wellfounded::well_founded_model`] — the three-valued WFS.

#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod fragment;
pub mod nullary;
pub mod parser;
pub mod program;
pub mod query;
pub mod stratify;
pub mod wellfounded;

pub use ast::{Atom, Rule, Term, Var};
pub use eval::{apply_update_compiled, UpdateStats};
pub use eval::{
    eval_program, eval_query, eval_query_obs, eval_query_opts, plan_report, Engine, JoinStrategy,
};
pub use fragment::{classify, is_rule_connected, FragmentReport};
pub use parser::{parse_facts, parse_program, parse_rule, parse_updates};
pub use program::{Program, ProgramError};
pub use query::{DatalogQuery, IncrementalEvaluation};
pub use stratify::{is_stratifiable, stratify, Stratification};
pub use wellfounded::{
    well_founded_model, well_founded_model_obs, well_founded_model_opts, WellFoundedModel,
    WellFoundedQuery, WellFoundedSession,
};
