//! [`DatalogQuery`]: a stratified Datalog¬ program packaged as a
//! [`calm_common::query::Query`].

use crate::eval::database::Database;
use crate::eval::incremental::{apply_update_compiled, UpdateStats};
use crate::eval::seminaive::{fixpoint_seminaive_compiled, CompiledProgram, EvalOptions};
use crate::eval::stratified::{eval_stratification_shared, Engine};
use crate::program::Program;
use crate::stratify::{stratify, NotStratifiable, Stratification};
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;
use calm_common::storage::SharedSymbols;
use calm_common::update::UpdateBatch;
use calm_obs::Obs;

/// A query computed by a stratified Datalog¬ program (Section 2,
/// "Computing Queries"): `Q(I) = P(I)|σ'` where `σ'` is the program's
/// output schema and the input schema is `edb(P)`.
///
/// The query carries its own [`SharedSymbols`] table and per-stratum
/// [`CompiledProgram`]s, so repeated evaluations (the monotonicity
/// falsifiers run thousands per query, the transducer strategies one per
/// transition) intern rule constants once and never recompile.
pub struct DatalogQuery {
    name: String,
    program: Program,
    stratification: Stratification,
    input_schema: Schema,
    output_schema: Schema,
    engine: Engine,
    symbols: SharedSymbols,
    /// Data-parallel workers inside every stratum fixpoint (1 =
    /// sequential; the answer is byte-identical either way).
    eval_threads: usize,
    /// One compiled program per stratum; `None` for [`Engine::Naive`],
    /// which falls back to the uncompiled ablation path.
    compiled: Option<Vec<CompiledProgram>>,
}

fn precompile(
    strat: &Stratification,
    symbols: &SharedSymbols,
    engine: Engine,
) -> Option<Vec<CompiledProgram>> {
    let options = match engine {
        Engine::SemiNaive => EvalOptions::default(),
        Engine::SemiNaiveBaseline => EvalOptions::BASELINE,
        Engine::Naive => return None,
    };
    let mut table = symbols.write();
    Some(
        strat
            .strata
            .iter()
            .map(|stratum| CompiledProgram::new(stratum, &mut table, options))
            .collect(),
    )
}

impl DatalogQuery {
    /// Package a program as a query.
    ///
    /// # Errors
    /// Returns [`NotStratifiable`] if the program has no syntactic
    /// stratification (evaluate such programs with
    /// [`crate::wellfounded`] instead).
    pub fn new(name: impl Into<String>, program: Program) -> Result<Self, NotStratifiable> {
        let stratification = stratify(&program)?;
        let input_schema = program.edb();
        let output_schema = program.output_schema();
        let symbols = SharedSymbols::new();
        let compiled = precompile(&stratification, &symbols, Engine::SemiNaive);
        Ok(DatalogQuery {
            name: name.into(),
            program,
            stratification,
            input_schema,
            output_schema,
            engine: Engine::SemiNaive,
            symbols,
            eval_threads: 1,
            compiled,
        })
    }

    /// Parse source text and package it as a query.
    ///
    /// # Errors
    /// Returns an error string for syntax, well-formedness or
    /// stratification failures.
    pub fn parse(name: impl Into<String>, src: &str) -> Result<Self, String> {
        let p = crate::parser::parse_program(src).map_err(|e| e.to_string())?;
        DatalogQuery::new(name, p).map_err(|e| e.to_string())
    }

    /// Use the given evaluation engine (default: semi-naive).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self.compiled = precompile(&self.stratification, &self.symbols, engine);
        self.apply_eval_threads();
        self
    }

    /// Run every stratum fixpoint with `n` data-parallel eval threads
    /// (default 1 = sequential; the answer is byte-identical either
    /// way). [`Engine::Naive`] ignores the knob.
    #[must_use]
    pub fn with_eval_threads(mut self, n: usize) -> Self {
        self.eval_threads = n.max(1);
        self.apply_eval_threads();
        self
    }

    /// The configured data-parallel worker count.
    pub fn eval_threads(&self) -> usize {
        self.eval_threads
    }

    fn apply_eval_threads(&mut self) {
        if let Some(strata) = &mut self.compiled {
            for cp in strata {
                cp.set_eval_threads(self.eval_threads);
            }
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The stratification (computed once at construction).
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// Open a maintained evaluation over `input`: materialize the
    /// fixpoint once, then fold signed [`UpdateBatch`]es into it with
    /// [`IncrementalEvaluation::apply`] instead of re-running the
    /// fixpoint per change. The session reuses the query's cached
    /// [`CompiledProgram`]s and shared symbol table ([`Engine::Naive`]
    /// queries compile on demand — maintenance always runs compiled).
    pub fn open(&self, input: &Instance) -> IncrementalEvaluation<'_> {
        let restricted = input.restrict(&self.input_schema);
        let owned = if self.compiled.is_none() {
            precompile(&self.stratification, &self.symbols, Engine::SemiNaive)
        } else {
            None
        };
        let mut db = Database::from_instance_with(&restricted, self.symbols.clone());
        for cp in owned.as_deref().or(self.compiled.as_deref()).unwrap() {
            fixpoint_seminaive_compiled(cp, &mut db);
        }
        IncrementalEvaluation {
            query: self,
            owned,
            db,
            stats: UpdateStats::default(),
        }
    }
}

/// A maintained evaluation of one [`DatalogQuery`] over a mutating
/// input: the materialized database is updated in place by DRed
/// maintenance ([`crate::eval::incremental`]) as signed batches
/// arrive, and [`output`](IncrementalEvaluation::output) is always
/// byte-identical to `query.eval(current_edb)`.
pub struct IncrementalEvaluation<'q> {
    query: &'q DatalogQuery,
    /// Compiled strata owned by the session when the query itself has
    /// no cached compilation (the naive-engine ablation).
    owned: Option<Vec<CompiledProgram>>,
    db: Database,
    stats: UpdateStats,
}

impl IncrementalEvaluation<'_> {
    /// Fold one signed batch into the materialized database. Facts
    /// outside the query's input schema are ignored, mirroring the
    /// input restriction of [`Query::eval`]. Returns this batch's
    /// maintenance counters.
    pub fn apply(&mut self, batch: &UpdateBatch) -> UpdateStats {
        self.apply_obs(batch, &Obs::noop())
    }

    /// As [`apply`](Self::apply), reporting `eval.retractions` /
    /// `eval.rederivations` counters to `obs`.
    pub fn apply_obs(&mut self, batch: &UpdateBatch, obs: &Obs) -> UpdateStats {
        let schema = &self.query.input_schema;
        let keep = |f: &&Fact| schema.arity(f.relation()) == Some(f.arity());
        let restricted = UpdateBatch {
            insert: batch.insert.iter().filter(keep).cloned().collect(),
            delete: batch.delete.iter().filter(keep).cloned().collect(),
        };
        let strata: &[CompiledProgram] = match &self.owned {
            Some(v) => v,
            None => self
                .query
                .compiled
                .as_deref()
                .expect("query lost its compilation while a session was open"),
        };
        let stats = apply_update_compiled(strata, &mut self.db, &restricted, obs);
        self.stats.merge(&stats);
        stats
    }

    /// The query answer for the current input — the materialized
    /// database restricted to the output schema.
    pub fn output(&self) -> Instance {
        self.db.to_instance_restricted(&self.query.output_schema)
    }

    /// The full materialized database (all IDB relations, not just the
    /// output schema).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Cumulative counters over every applied batch.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }
}

impl Query for DatalogQuery {
    fn input_schema(&self) -> &Schema {
        &self.input_schema
    }

    fn output_schema(&self) -> &Schema {
        &self.output_schema
    }

    fn eval(&self, input: &Instance) -> Instance {
        let restricted = input.restrict(&self.input_schema);
        match &self.compiled {
            Some(strata) => {
                let mut db = Database::from_instance_with(&restricted, self.symbols.clone());
                for cp in strata {
                    fixpoint_seminaive_compiled(cp, &mut db);
                }
                // Unintern only the output relations — everything else
                // would be dropped by the restriction anyway.
                db.to_instance_restricted(&self.output_schema)
            }
            None => {
                let (full, _) = eval_stratification_shared(
                    &self.stratification,
                    &restricted,
                    self.engine,
                    self.symbols.clone(),
                );
                full.restrict(&self.output_schema)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::generator::path;

    #[test]
    fn tc_as_query() {
        let q = DatalogQuery::parse(
            "tc",
            "@output T.\n\
             T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        assert_eq!(q.name(), "tc");
        assert_eq!(q.input_schema().arity("E"), Some(2));
        assert_eq!(q.output_schema().arity("T"), Some(2));
        let out = q.eval(&path(3));
        assert_eq!(out.relation_len("T"), 6);
    }

    #[test]
    fn input_outside_schema_ignored() {
        let q = DatalogQuery::parse("copy", "@output O.\nO(x,y) :- E(x,y).").unwrap();
        let mut input = path(1);
        input.insert(fact("Noise", [99]));
        let out = q.eval(&input);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&fact("O", [0, 1])));
    }

    #[test]
    fn non_stratifiable_rejected() {
        let err = DatalogQuery::parse("wm", "win(x) :- move(x,y), not win(y).");
        assert!(err.is_err());
    }

    #[test]
    fn incremental_session_tracks_eval() {
        let q = DatalogQuery::parse(
            "tc",
            "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        let mut edb = path(4);
        let mut session = q.open(&edb);
        assert_eq!(session.output(), q.eval(&edb));
        let batches = [
            calm_common::UpdateBatch::deleting([fact("E", [1, 2])]),
            calm_common::UpdateBatch::inserting([fact("E", [1, 2]), fact("E", [4, 0])]),
            // Out-of-schema facts are ignored, as in eval().
            calm_common::UpdateBatch::inserting([fact("Noise", [7])])
                .with_delete(fact("E", [2, 3])),
        ];
        for b in &batches {
            session.apply(b);
            b.apply_to_instance(&mut edb);
            assert_eq!(session.output(), q.eval(&edb));
        }
        assert!(session.stats().retractions > 0);
        assert!(session.database().storage().rel_ids().count() > 0);
    }

    #[test]
    fn incremental_session_compiles_for_naive_engine() {
        let q = DatalogQuery::parse("tc", "@output T.\nT(x,y) :- E(x,y).")
            .unwrap()
            .with_engine(crate::eval::stratified::Engine::Naive);
        let mut session = q.open(&path(2));
        session.apply(&calm_common::UpdateBatch::deleting([fact("E", [0, 1])]));
        assert_eq!(session.output().relation_len("T"), 1);
    }

    #[test]
    fn genericity_spot_check() {
        // Permuting the domain commutes with evaluation.
        let q = DatalogQuery::parse(
            "tc",
            "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        let i = path(3);
        let pi = |v: &calm_common::value::Value| match v {
            calm_common::value::Value::Int(k) => calm_common::v(k * 7 + 1),
            other => other.clone(),
        };
        let permuted = i.map_values(pi);
        assert_eq!(q.eval(&i).map_values(pi), q.eval(&permuted));
    }
}
