//! [`DatalogQuery`]: a stratified Datalog¬ program packaged as a
//! [`calm_common::query::Query`].

use crate::eval::database::Database;
use crate::eval::seminaive::{fixpoint_seminaive_compiled, CompiledProgram, EvalOptions};
use crate::eval::stratified::{eval_stratification_shared, Engine};
use crate::program::Program;
use crate::stratify::{stratify, NotStratifiable, Stratification};
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;
use calm_common::storage::SharedSymbols;

/// A query computed by a stratified Datalog¬ program (Section 2,
/// "Computing Queries"): `Q(I) = P(I)|σ'` where `σ'` is the program's
/// output schema and the input schema is `edb(P)`.
///
/// The query carries its own [`SharedSymbols`] table and per-stratum
/// [`CompiledProgram`]s, so repeated evaluations (the monotonicity
/// falsifiers run thousands per query, the transducer strategies one per
/// transition) intern rule constants once and never recompile.
pub struct DatalogQuery {
    name: String,
    program: Program,
    stratification: Stratification,
    input_schema: Schema,
    output_schema: Schema,
    engine: Engine,
    symbols: SharedSymbols,
    /// Data-parallel workers inside every stratum fixpoint (1 =
    /// sequential; the answer is byte-identical either way).
    eval_threads: usize,
    /// One compiled program per stratum; `None` for [`Engine::Naive`],
    /// which falls back to the uncompiled ablation path.
    compiled: Option<Vec<CompiledProgram>>,
}

fn precompile(
    strat: &Stratification,
    symbols: &SharedSymbols,
    engine: Engine,
) -> Option<Vec<CompiledProgram>> {
    let options = match engine {
        Engine::SemiNaive => EvalOptions::default(),
        Engine::SemiNaiveBaseline => EvalOptions::BASELINE,
        Engine::Naive => return None,
    };
    let mut table = symbols.write();
    Some(
        strat
            .strata
            .iter()
            .map(|stratum| CompiledProgram::new(stratum, &mut table, options))
            .collect(),
    )
}

impl DatalogQuery {
    /// Package a program as a query.
    ///
    /// # Errors
    /// Returns [`NotStratifiable`] if the program has no syntactic
    /// stratification (evaluate such programs with
    /// [`crate::wellfounded`] instead).
    pub fn new(name: impl Into<String>, program: Program) -> Result<Self, NotStratifiable> {
        let stratification = stratify(&program)?;
        let input_schema = program.edb();
        let output_schema = program.output_schema();
        let symbols = SharedSymbols::new();
        let compiled = precompile(&stratification, &symbols, Engine::SemiNaive);
        Ok(DatalogQuery {
            name: name.into(),
            program,
            stratification,
            input_schema,
            output_schema,
            engine: Engine::SemiNaive,
            symbols,
            eval_threads: 1,
            compiled,
        })
    }

    /// Parse source text and package it as a query.
    ///
    /// # Errors
    /// Returns an error string for syntax, well-formedness or
    /// stratification failures.
    pub fn parse(name: impl Into<String>, src: &str) -> Result<Self, String> {
        let p = crate::parser::parse_program(src).map_err(|e| e.to_string())?;
        DatalogQuery::new(name, p).map_err(|e| e.to_string())
    }

    /// Use the given evaluation engine (default: semi-naive).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self.compiled = precompile(&self.stratification, &self.symbols, engine);
        self.apply_eval_threads();
        self
    }

    /// Run every stratum fixpoint with `n` data-parallel eval threads
    /// (default 1 = sequential; the answer is byte-identical either
    /// way). [`Engine::Naive`] ignores the knob.
    #[must_use]
    pub fn with_eval_threads(mut self, n: usize) -> Self {
        self.eval_threads = n.max(1);
        self.apply_eval_threads();
        self
    }

    /// The configured data-parallel worker count.
    pub fn eval_threads(&self) -> usize {
        self.eval_threads
    }

    fn apply_eval_threads(&mut self) {
        if let Some(strata) = &mut self.compiled {
            for cp in strata {
                cp.set_eval_threads(self.eval_threads);
            }
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The stratification (computed once at construction).
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }
}

impl Query for DatalogQuery {
    fn input_schema(&self) -> &Schema {
        &self.input_schema
    }

    fn output_schema(&self) -> &Schema {
        &self.output_schema
    }

    fn eval(&self, input: &Instance) -> Instance {
        let restricted = input.restrict(&self.input_schema);
        match &self.compiled {
            Some(strata) => {
                let mut db = Database::from_instance_with(&restricted, self.symbols.clone());
                for cp in strata {
                    fixpoint_seminaive_compiled(cp, &mut db);
                }
                // Unintern only the output relations — everything else
                // would be dropped by the restriction anyway.
                db.to_instance_restricted(&self.output_schema)
            }
            None => {
                let (full, _) = eval_stratification_shared(
                    &self.stratification,
                    &restricted,
                    self.engine,
                    self.symbols.clone(),
                );
                full.restrict(&self.output_schema)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::generator::path;

    #[test]
    fn tc_as_query() {
        let q = DatalogQuery::parse(
            "tc",
            "@output T.\n\
             T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        assert_eq!(q.name(), "tc");
        assert_eq!(q.input_schema().arity("E"), Some(2));
        assert_eq!(q.output_schema().arity("T"), Some(2));
        let out = q.eval(&path(3));
        assert_eq!(out.relation_len("T"), 6);
    }

    #[test]
    fn input_outside_schema_ignored() {
        let q = DatalogQuery::parse("copy", "@output O.\nO(x,y) :- E(x,y).").unwrap();
        let mut input = path(1);
        input.insert(fact("Noise", [99]));
        let out = q.eval(&input);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&fact("O", [0, 1])));
    }

    #[test]
    fn non_stratifiable_rejected() {
        let err = DatalogQuery::parse("wm", "win(x) :- move(x,y), not win(y).");
        assert!(err.is_err());
    }

    #[test]
    fn genericity_spot_check() {
        // Permuting the domain commutes with evaluation.
        let q = DatalogQuery::parse(
            "tc",
            "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        let i = path(3);
        let pi = |v: &calm_common::value::Value| match v {
            calm_common::value::Value::Int(k) => calm_common::v(k * 7 + 1),
            other => other.clone(),
        };
        let permuted = i.map_values(pi);
        assert_eq!(q.eval(&i).map_values(pi), q.eval(&permuted));
    }
}
