//! Abstract syntax for Datalog with negation (Section 2 of the paper).
//!
//! A rule `ϕ` is a quadruple `(head_ϕ, pos_ϕ, neg_ϕ, ineq_ϕ)`. We extend the
//! paper's pure-variable atoms with constants in atom positions (a standard
//! programming convenience; constants can always be compiled away with fresh
//! unary relations) and with the ILOG¬ invention symbol `*` as a term, which
//! plain-Datalog validation rejects (only `calm-ilog` evaluates it).

use calm_common::fact::RelName;
use calm_common::value::Value;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A variable from **var** (disjoint from **dom**).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Create a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term in an atom position: a variable, a constant, or (in ILOG¬ heads
/// only) the invention symbol `*`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant domain value.
    Const(Value),
    /// The ILOG¬ invention symbol `*` (head atoms of invention relations).
    Invention,
}

impl Term {
    /// Shorthand: a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Var::new(name))
    }

    /// Shorthand: a constant term.
    pub fn cst(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => match c {
                Value::Str(s) => write!(f, "\"{s}\""),
                other => write!(f, "{other}"),
            },
            Term::Invention => write!(f, "*"),
        }
    }
}

/// An atom `R(t1, ..., tk)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The predicate (relation name).
    pub relation: RelName,
    /// The terms in each position.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(relation: impl AsRef<str>, terms: Vec<Term>) -> Self {
        Atom {
            relation: calm_common::fact::rel(relation),
            terms,
        }
    }

    /// Construct an atom whose arguments are all variables, by name.
    pub fn vars(relation: impl AsRef<str>, vars: &[&str]) -> Self {
        Atom::new(relation, vars.iter().map(Term::var).collect())
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterate the variables occurring in this atom.
    pub fn variables(&self) -> impl Iterator<Item = &Var> {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// Whether the atom contains the invention symbol.
    pub fn has_invention(&self) -> bool {
        self.terms.iter().any(|t| matches!(t, Term::Invention))
    }

    /// Whether the invention symbol appears exactly once, in the first
    /// position (the ILOG¬ well-formedness condition for invention atoms).
    pub fn is_invention_atom(&self) -> bool {
        matches!(self.terms.first(), Some(Term::Invention))
            && self.terms[1..]
                .iter()
                .all(|t| !matches!(t, Term::Invention))
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A rule `head ← pos, ¬neg, ineq`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// Positive body atoms (must be non-empty for a valid rule).
    pub pos: Vec<Atom>,
    /// Negative body atoms.
    pub neg: Vec<Atom>,
    /// Inequalities `t ≠ u`.
    pub ineq: Vec<(Term, Term)>,
}

impl Rule {
    /// Construct a positive rule with no inequalities.
    pub fn positive(head: Atom, pos: Vec<Atom>) -> Self {
        Rule {
            head,
            pos,
            neg: Vec::new(),
            ineq: Vec::new(),
        }
    }

    /// All variables of the rule (`vars(ϕ)`), in deterministic order.
    pub fn variables(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        out.extend(self.head.variables().cloned());
        for a in self.pos.iter().chain(self.neg.iter()) {
            out.extend(a.variables().cloned());
        }
        for (l, r) in &self.ineq {
            if let Some(v) = l.as_var() {
                out.insert(v.clone());
            }
            if let Some(v) = r.as_var() {
                out.insert(v.clone());
            }
        }
        out
    }

    /// Variables occurring in positive body atoms.
    pub fn positive_variables(&self) -> BTreeSet<Var> {
        self.pos
            .iter()
            .flat_map(|a| a.variables().cloned())
            .collect()
    }

    /// Whether the rule is positive (`neg_ϕ = ∅`).
    pub fn is_positive(&self) -> bool {
        self.neg.is_empty()
    }

    /// All atoms: head, positive and negative body.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> {
        std::iter::once(&self.head)
            .chain(self.pos.iter())
            .chain(self.neg.iter())
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, ", ")
            }
        };
        for a in &self.pos {
            sep(f)?;
            write!(f, "{a}")?;
        }
        for a in &self.neg {
            sep(f)?;
            write!(f, "not {a}")?;
        }
        for (l, r) in &self.ineq {
            sep(f)?;
            write!(f, "{l} != {r}")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_rule() -> Rule {
        // T(x,z) :- T(x,y), E(y,z).
        Rule::positive(
            Atom::vars("T", &["x", "z"]),
            vec![Atom::vars("T", &["x", "y"]), Atom::vars("E", &["y", "z"])],
        )
    }

    #[test]
    fn variables_collects_all() {
        let r = tc_rule();
        let vars: Vec<String> = r.variables().iter().map(|v| v.name().to_string()).collect();
        assert_eq!(vars, vec!["x", "y", "z"]);
        assert_eq!(r.positive_variables().len(), 3);
    }

    #[test]
    fn display_round_trippable_shape() {
        let r = Rule {
            head: Atom::vars("O", &["x", "y"]),
            pos: vec![Atom::vars("E", &["x", "y"])],
            neg: vec![Atom::vars("T", &["y"])],
            ineq: vec![(Term::var("x"), Term::var("y"))],
        };
        assert_eq!(r.to_string(), "O(x,y) :- E(x,y), not T(y), x != y.");
    }

    #[test]
    fn invention_atom_shape() {
        let inv = Atom::new("R", vec![Term::Invention, Term::var("x")]);
        assert!(inv.has_invention());
        assert!(inv.is_invention_atom());
        let bad = Atom::new("R", vec![Term::var("x"), Term::Invention]);
        assert!(!bad.is_invention_atom());
        let plain = Atom::vars("R", &["x"]);
        assert!(!plain.has_invention());
    }

    #[test]
    fn constants_display_quoted() {
        let a = Atom::new("R", vec![Term::cst(3), Term::cst("abc")]);
        assert_eq!(a.to_string(), "R(3,\"abc\")");
    }
}
