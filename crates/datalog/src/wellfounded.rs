//! The well-founded semantics for (possibly non-stratifiable) Datalog¬,
//! via the alternating fixpoint, plus the "doubled program" construction
//! the paper invokes for connected Datalog under WFS (Section 7).
//!
//! The alternating fixpoint computes two approximations of the
//! three-valued well-founded model:
//!
//! * an increasing sequence of *underestimates* `U` (facts certainly
//!   true), and
//! * a decreasing sequence of *overestimates* `V` (facts possibly true),
//!
//! where each step applies `Γ(K)` — the minimal model of the program with
//! every negative literal `¬R(t̄)` frozen to "`t̄ ∉ K`". True facts are the
//! limit of `U`, undefined facts are `V \ U`.

use crate::ast::{Atom, Rule};
use crate::eval::database::Database;
use crate::eval::seminaive::{
    fixpoint_seminaive_frozen_compiled, fixpoint_seminaive_frozen_compiled_obs, CompiledProgram,
    EvalOptions,
};
use crate::program::Program;
use calm_common::fact::{rel, Fact, RelName};
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;
use calm_common::storage::SharedSymbols;
use calm_common::update::UpdateBatch;
use calm_obs::Obs;
use std::collections::BTreeSet;

/// The three-valued well-founded model of a program on an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WellFoundedModel {
    /// Facts true in the well-founded model (including the input).
    pub true_facts: Instance,
    /// Facts possibly true (true ∪ undefined), including the input.
    pub possible_facts: Instance,
    /// Number of `Γ` applications performed.
    pub gamma_applications: usize,
}

impl WellFoundedModel {
    /// The undefined facts: possible but not true.
    pub fn undefined(&self) -> Instance {
        self.possible_facts.difference(&self.true_facts)
    }

    /// Whether the model is total (two-valued): nothing undefined.
    pub fn is_total(&self) -> bool {
        self.true_facts == self.possible_facts
    }

    /// Truth value of a fact: `Some(true)` = true, `Some(false)` = false,
    /// `None` = undefined.
    pub fn truth(&self, f: &Fact) -> Option<bool> {
        if self.true_facts.contains(f) {
            Some(true)
        } else if self.possible_facts.contains(f) {
            None
        } else {
            Some(false)
        }
    }
}

/// One application of `Γ(K)`: the minimal model of the compiled program
/// over `input` with negation frozen against `k`. The result shares `k`'s
/// symbol table (which the program was compiled against).
fn gamma(cp: &CompiledProgram, input: &Instance, k: &Database, obs: &Obs) -> Database {
    let mut db = Database::from_instance_with(input, k.symbols().clone());
    fixpoint_seminaive_frozen_compiled_obs(cp, &mut db, k, obs);
    db
}

/// Compute the well-founded model of `p` on `input` by the alternating
/// fixpoint. Works for every Datalog¬ program (stratifiable or not); on
/// stratifiable programs the result is total and equals the stratified
/// semantics.
///
/// ```
/// use calm_datalog::{parse_program, well_founded_model};
/// use calm_common::{fact, Instance};
///
/// let win_move = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
/// // 1 -> 2 -> 3 plus the drawn 2-cycle {8, 9}.
/// let game = Instance::from_facts([
///     fact("move", [1, 2]), fact("move", [2, 3]),
///     fact("move", [8, 9]), fact("move", [9, 8]),
/// ]);
/// let model = well_founded_model(&win_move, &game);
/// assert_eq!(model.truth(&fact("win", [2])), Some(true));  // won
/// assert_eq!(model.truth(&fact("win", [3])), Some(false)); // lost (sink)
/// assert_eq!(model.truth(&fact("win", [8])), None);        // drawn
/// ```
pub fn well_founded_model(p: &Program, input: &Instance) -> WellFoundedModel {
    well_founded_model_obs(p, input, &Obs::noop())
}

/// As [`well_founded_model`], reporting one span per `Γ` application
/// (labelled over/under by alternation side) plus a final
/// `gamma_applications` counter to `obs`.
pub fn well_founded_model_obs(p: &Program, input: &Instance, obs: &Obs) -> WellFoundedModel {
    well_founded_model_opts(p, input, EvalOptions::default(), obs)
}

/// As [`well_founded_model_obs`], with explicit [`EvalOptions`] — the
/// entry point for data-parallel `Γ` applications
/// (`options.eval_threads` > 1); the model is identical for any thread
/// count.
pub fn well_founded_model_opts(
    p: &Program,
    input: &Instance,
    options: EvalOptions,
    obs: &Obs,
) -> WellFoundedModel {
    // U0 = input only (all negations succeed except on given edb facts).
    // Every approximation shares one symbol table, so the stability check
    // compares interned rows directly — no Instance round-trip per round.
    let mut gamma_applications = 0;
    let mut u = Database::from_instance(input);
    // Compile once; every Γ application below reuses the interned rules.
    let cp = {
        let symbols = u.symbols().clone();
        let mut table = symbols.write();
        CompiledProgram::new(p, &mut table, options)
    };
    loop {
        // V = Γ(U): overestimate.
        let v = {
            let _span = obs.span("wfs", || format!("gamma#{gamma_applications}(over)"));
            gamma(&cp, input, &u, obs)
        };
        gamma_applications += 1;
        // U' = Γ(V): next underestimate.
        let u_next = {
            let _span = obs.span("wfs", || format!("gamma#{gamma_applications}(under)"));
            gamma(&cp, input, &v, obs)
        };
        gamma_applications += 1;
        if u_next.same_facts(&u) {
            obs.counter("wfs", "gamma_applications", gamma_applications as u64);
            return WellFoundedModel {
                true_facts: u_next.to_instance(),
                possible_facts: v.to_instance(),
                gamma_applications,
            };
        }
        u = u_next;
    }
}

/// The *doubled program* construction: two semi-positive-style programs
/// over a schema where every idb predicate `R` has a primed companion
/// `R__p`. Alternating their evaluation reproduces the alternating
/// fixpoint as a pure program transformation — this is the "well-known
/// doubled program approach" the paper uses to place connected Datalog
/// under WFS inside `Mdisjoint` (Section 7).
#[derive(Debug, Clone)]
pub struct DoubledProgram {
    /// Derives unprimed (true-side) facts; its negative literals mention
    /// only primed predicates.
    pub true_side: Program,
    /// Derives primed (possible-side) facts; its negative literals mention
    /// only unprimed predicates.
    pub possible_side: Program,
    /// The idb predicates that were doubled.
    pub doubled: BTreeSet<RelName>,
}

/// The primed companion name of a relation.
pub fn primed(r: &str) -> RelName {
    rel(format!("{r}__p"))
}

/// Build the doubled program of `p`.
pub fn doubled_program(p: &Program) -> DoubledProgram {
    let idb = p.idb();
    let doubled: BTreeSet<RelName> = idb.names().cloned().collect();
    let prime_atom = |a: &Atom| -> Atom {
        if doubled.contains(&a.relation) {
            Atom {
                relation: primed(&a.relation),
                terms: a.terms.clone(),
            }
        } else {
            a.clone()
        }
    };
    let mut true_rules = Vec::new();
    let mut possible_rules = Vec::new();
    for r in p.rules() {
        // True side: positive atoms unprimed, negated idb atoms primed
        // (checked against the possible-side overestimate).
        true_rules.push(Rule {
            head: r.head.clone(),
            pos: r.pos.clone(),
            neg: r.neg.iter().map(&prime_atom).collect(),
            ineq: r.ineq.clone(),
        });
        // Possible side: head and positive idb atoms primed, negated idb
        // atoms unprimed (checked against the true-side underestimate).
        possible_rules.push(Rule {
            head: prime_atom(&r.head),
            pos: r.pos.iter().map(&prime_atom).collect(),
            neg: r.neg.clone(),
            ineq: r.ineq.clone(),
        });
    }
    DoubledProgram {
        true_side: Program::new(true_rules).expect("doubling preserves well-formedness"),
        possible_side: Program::new(possible_rules).expect("doubling preserves well-formedness"),
        doubled,
    }
}

impl DoubledProgram {
    /// Evaluate the doubled program by alternating the two sides until
    /// both stabilize; returns the same model as [`well_founded_model`].
    pub fn eval(&self, input: &Instance) -> WellFoundedModel {
        use calm_common::storage::SharedSymbols;
        let symbols = SharedSymbols::new();
        // Both sides compile once against the shared table; the
        // alternation below only re-runs the fixpoints.
        let (possible_cp, true_cp) = {
            let mut table = symbols.write();
            (
                CompiledProgram::new(&self.possible_side, &mut table, EvalOptions::default()),
                CompiledProgram::new(&self.true_side, &mut table, EvalOptions::default()),
            )
        };
        let mut gamma_applications = 0;
        // The input is interned once, in both forms the two sides read:
        // the possible side takes primed idb positives (edb stays
        // unprimed, so both forms are loaded), the true side unprimed.
        let mut base_over =
            Database::from_instance_with(&prime_instance(input, &self.doubled), symbols.clone());
        base_over.load(input);
        let base_under = Database::from_instance_with(input, symbols.clone());
        // Under-approximation state: unprimed facts (initially empty).
        let mut under = Database::with_symbols(symbols);
        loop {
            // Possible side: freeze negation on input ∪ `under`.
            let mut frozen_under = base_under.clone();
            frozen_under.absorb(&under);
            let mut over_db = base_over.clone();
            fixpoint_seminaive_frozen_compiled(&possible_cp, &mut over_db, &frozen_under);
            gamma_applications += 1;

            // True side: freeze negation on the primed overestimate —
            // `over_db` holds exactly the primed idb facts plus the input,
            // so it serves as the frozen database directly.
            let mut under_db = base_under.clone();
            fixpoint_seminaive_frozen_compiled(&true_cp, &mut under_db, &over_db);
            gamma_applications += 1;

            if under_db.same_facts(&under) {
                let over = unprime_instance(&over_db.to_instance(), &self.doubled);
                return WellFoundedModel {
                    true_facts: under_db.to_instance(),
                    possible_facts: over.union(input),
                    gamma_applications,
                };
            }
            under = under_db;
        }
    }
}

fn prime_instance(i: &Instance, doubled: &BTreeSet<RelName>) -> Instance {
    let mut out = Instance::new();
    for f in i.facts() {
        if doubled.contains(f.relation()) {
            out.insert(Fact::from_rel(primed(f.relation()), f.args().to_vec()));
        } else {
            out.insert(f);
        }
    }
    out
}

fn unprime_instance(i: &Instance, doubled: &BTreeSet<RelName>) -> Instance {
    let mut out = Instance::new();
    for f in i.facts() {
        let name = f.relation().as_ref();
        if let Some(base) = name.strip_suffix("__p") {
            if doubled.contains(base) {
                out.insert(Fact::new(base, f.args().to_vec()));
                continue;
            }
        }
        out.insert(f);
    }
    out
}

/// A query evaluated under the well-founded semantics: the answer is the
/// set of *true* facts over the program's output schema (the convention
/// used for win-move in the paper and in Zinn et al.).
pub struct WellFoundedQuery {
    name: String,
    program: Program,
    input_schema: Schema,
    output_schema: Schema,
    eval_threads: usize,
}

impl WellFoundedQuery {
    /// Package a (possibly non-stratifiable) program as a WFS query.
    pub fn new(name: impl Into<String>, program: Program) -> Self {
        let input_schema = program.edb();
        let output_schema = program.output_schema();
        WellFoundedQuery {
            name: name.into(),
            program,
            input_schema,
            output_schema,
            eval_threads: 1,
        }
    }

    /// Run every `Γ` application with `n` data-parallel eval threads
    /// (default 1 = sequential; the model is identical either way).
    #[must_use]
    pub fn with_eval_threads(mut self, n: usize) -> Self {
        self.eval_threads = n.max(1);
        self
    }

    /// Parse source text into a WFS query.
    ///
    /// # Errors
    /// Returns the parse/validation error message.
    pub fn parse(name: impl Into<String>, src: &str) -> Result<Self, String> {
        let p = crate::parser::parse_program(src).map_err(|e| e.to_string())?;
        Ok(WellFoundedQuery::new(name, p))
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The full three-valued model on an input.
    pub fn model(&self, input: &Instance) -> WellFoundedModel {
        well_founded_model_opts(
            &self.program,
            &input.restrict(&self.input_schema),
            EvalOptions::default().with_eval_threads(self.eval_threads),
            &Obs::noop(),
        )
    }

    /// Open a maintained evaluation over `input`: the doubled program
    /// is constructed and compiled once, the EDB interned once, and
    /// signed [`UpdateBatch`]es are folded in with
    /// [`WellFoundedSession::apply`].
    ///
    /// Unlike [`crate::DatalogQuery::open`], maintenance here is
    /// batch-level re-alternation rather than DRed: the alternating
    /// fixpoint is non-monotone end to end (each Γ application flips
    /// the sign of every idb fact's role), so delete–rederive does not
    /// compose across Γ applications. What the session caches is the
    /// doubled-program construction, its compilation against a shared
    /// symbol table, and the interned EDB — the per-batch cost is the
    /// alternation itself, not parsing, doubling, compiling or
    /// re-interning.
    pub fn open(&self, input: &Instance) -> WellFoundedSession<'_> {
        let doubled = doubled_program(&self.program);
        let symbols = SharedSymbols::new();
        let (mut possible_cp, mut true_cp) = {
            let mut table = symbols.write();
            (
                CompiledProgram::new(&doubled.possible_side, &mut table, EvalOptions::default()),
                CompiledProgram::new(&doubled.true_side, &mut table, EvalOptions::default()),
            )
        };
        possible_cp.set_eval_threads(self.eval_threads);
        true_cp.set_eval_threads(self.eval_threads);
        let edb = input.restrict(&self.input_schema);
        let base = Database::from_instance_with(&edb, symbols.clone());
        let mut session = WellFoundedSession {
            query: self,
            doubled,
            symbols,
            possible_cp,
            true_cp,
            base,
            edb,
            model: WellFoundedModel {
                true_facts: Instance::new(),
                possible_facts: Instance::new(),
                gamma_applications: 0,
            },
        };
        session.model = session.alternate();
        session
    }
}

/// A maintained well-founded evaluation (see
/// [`WellFoundedQuery::open`]): the current EDB stays interned in a
/// [`Database`] updated in place by signed batches (tombstone retract,
/// revive-on-reinsert, compaction at the batch boundary), and each
/// [`apply`](WellFoundedSession::apply) re-runs the alternating
/// fixpoint with the cached doubled compilation.
pub struct WellFoundedSession<'q> {
    query: &'q WellFoundedQuery,
    doubled: DoubledProgram,
    symbols: SharedSymbols,
    possible_cp: CompiledProgram,
    true_cp: CompiledProgram,
    /// The current EDB, interned (input restricted to the input schema).
    base: Database,
    /// Value-level mirror of `base`, for the possible-facts union.
    edb: Instance,
    model: WellFoundedModel,
}

impl WellFoundedSession<'_> {
    /// Fold one signed batch into the EDB and recompute the model.
    /// Facts outside the query's input schema are ignored, mirroring
    /// [`WellFoundedQuery::model`]'s input restriction. Returns
    /// `(inserted, deleted)` EDB fact counts.
    pub fn apply(&mut self, batch: &UpdateBatch) -> (usize, usize) {
        let schema = &self.query.input_schema;
        let keep = |f: &&Fact| schema.arity(f.relation()) == Some(f.arity());
        let restricted = UpdateBatch {
            insert: batch.insert.iter().filter(keep).cloned().collect(),
            delete: batch.delete.iter().filter(keep).cloned().collect(),
        };
        let (ins, del) = self.base.apply_update_batch(&restricted);
        self.base.storage_mut().compact_retractions();
        restricted.apply_to_instance(&mut self.edb);
        self.model = self.alternate();
        (ins, del)
    }

    /// The current three-valued model.
    pub fn model(&self) -> &WellFoundedModel {
        &self.model
    }

    /// The current query answer: true facts over the output schema.
    pub fn output(&self) -> Instance {
        self.model.true_facts.restrict(&self.query.output_schema)
    }

    /// The current (restricted) EDB.
    pub fn edb(&self) -> &Instance {
        &self.edb
    }

    /// The alternating fixpoint over the maintained EDB — the same loop
    /// as [`DoubledProgram::eval`], minus the per-call interning and
    /// priming (the session EDB is restricted to `edb(P)`, which the
    /// doubling never primes).
    fn alternate(&self) -> WellFoundedModel {
        let mut gamma_applications = 0;
        let mut under = Database::with_symbols(self.symbols.clone());
        loop {
            let mut frozen_under = self.base.clone();
            frozen_under.absorb(&under);
            let mut over_db = self.base.clone();
            fixpoint_seminaive_frozen_compiled(&self.possible_cp, &mut over_db, &frozen_under);
            gamma_applications += 1;

            let mut under_db = self.base.clone();
            fixpoint_seminaive_frozen_compiled(&self.true_cp, &mut under_db, &over_db);
            gamma_applications += 1;

            if under_db.same_facts(&under) {
                let over = unprime_instance(&over_db.to_instance(), &self.doubled.doubled);
                return WellFoundedModel {
                    true_facts: under_db.to_instance(),
                    possible_facts: over.union(&self.edb),
                    gamma_applications,
                };
            }
            under = under_db;
        }
    }
}

impl Query for WellFoundedQuery {
    fn input_schema(&self) -> &Schema {
        &self.input_schema
    }

    fn output_schema(&self) -> &Schema {
        &self.output_schema
    }

    fn eval(&self, input: &Instance) -> Instance {
        self.model(input).true_facts.restrict(&self.output_schema)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use calm_common::fact::fact;
    use calm_common::generator::{chain_game, cycle_game, cycle_with_escape};

    fn win_move() -> Program {
        parse_program("win(x) :- move(x,y), not win(y).").unwrap()
    }

    #[test]
    fn chain_alternates_win_lose() {
        // 0 -> 1 -> 2 -> 3: 3 lost, 2 won, 1 lost, 0 won.
        let m = well_founded_model(&win_move(), &chain_game(0, 3));
        assert!(m.is_total());
        assert_eq!(m.truth(&fact("win", [0])), Some(true));
        assert_eq!(m.truth(&fact("win", [1])), Some(false));
        assert_eq!(m.truth(&fact("win", [2])), Some(true));
        assert_eq!(m.truth(&fact("win", [3])), Some(false));
    }

    #[test]
    fn even_cycle_all_drawn() {
        let m = well_founded_model(&win_move(), &cycle_game(0, 4));
        assert!(!m.is_total());
        for k in 0..4 {
            assert_eq!(m.truth(&fact("win", [k])), None, "position {k} drawn");
        }
    }

    #[test]
    fn cycle_with_escape_is_determined() {
        // a=10, b=11, c=12: c lost, b won (b->c), a lost (only move to won b).
        let m = well_founded_model(&win_move(), &cycle_with_escape(10));
        assert!(m.is_total());
        assert_eq!(m.truth(&fact("win", [10])), Some(false));
        assert_eq!(m.truth(&fact("win", [11])), Some(true));
        assert_eq!(m.truth(&fact("win", [12])), Some(false));
    }

    #[test]
    fn wfs_agrees_with_stratified_semantics_on_stratifiable_program() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x) :- Adom(x), not T(x,x).\n\
             Adom(x) :- E(x,y).\n\
             Adom(y) :- E(x,y).",
        )
        .unwrap();
        let input = calm_common::generator::path(3);
        let wfs = well_founded_model(&p, &input);
        assert!(wfs.is_total());
        let strat = crate::eval::eval_program(&p, &input).unwrap();
        assert_eq!(wfs.true_facts, strat);
    }

    #[test]
    fn doubled_program_matches_alternating_fixpoint() {
        let p = win_move();
        let d = doubled_program(&p);
        for input in [
            chain_game(0, 4),
            cycle_game(0, 3),
            cycle_game(0, 4),
            cycle_with_escape(0),
        ] {
            let direct = well_founded_model(&p, &input);
            let via_doubled = d.eval(&input);
            assert_eq!(
                direct.true_facts.restrict(&p.output_schema()),
                via_doubled.true_facts.restrict(&p.output_schema()),
                "true facts must agree on {input:?}"
            );
            assert_eq!(
                direct.undefined().restrict(&p.output_schema()),
                via_doubled.undefined().restrict(&p.output_schema()),
                "undefined facts must agree on {input:?}"
            );
        }
    }

    #[test]
    fn doubled_program_structure() {
        let d = doubled_program(&win_move());
        // True side negates only the primed predicate.
        assert_eq!(d.true_side.rules()[0].neg[0].relation.as_ref(), "win__p");
        // Possible side derives primed and negates unprimed.
        assert_eq!(d.possible_side.rules()[0].head.relation.as_ref(), "win__p");
        assert_eq!(d.possible_side.rules()[0].neg[0].relation.as_ref(), "win");
    }

    #[test]
    fn wfs_query_outputs_true_wins() {
        let q = WellFoundedQuery::parse("win-move", "win(x) :- move(x,y), not win(y).").unwrap();
        let out = q.eval(&chain_game(0, 2));
        // 0 -> 1 -> 2: win(1) only (2 lost; 0's move goes to won 1 => 0 lost).
        assert_eq!(out, Instance::from_facts([fact("win", [1])]));
        assert_eq!(q.name(), "win-move");
    }

    #[test]
    fn odd_cycle_drawn() {
        let m = well_founded_model(&win_move(), &cycle_game(0, 3));
        assert_eq!(m.undefined().relation_len("win"), 3);
    }

    #[test]
    fn empty_game_empty_model() {
        let m = well_founded_model(&win_move(), &Instance::new());
        assert!(m.is_total());
        assert!(m.true_facts.is_empty());
    }

    #[test]
    fn session_tracks_model_across_updates() {
        let q = WellFoundedQuery::parse("win-move", "win(x) :- move(x,y), not win(y).").unwrap();
        let mut edb = chain_game(0, 3);
        let mut session = q.open(&edb);
        assert_eq!(session.model().true_facts, q.model(&edb).true_facts);
        let batches = [
            // Close the chain into an even cycle: everything drawn.
            UpdateBatch::inserting([fact("move", [3, 0])]),
            // Break it again and shorten the chain.
            UpdateBatch::deleting([fact("move", [3, 0]), fact("move", [2, 3])]),
            // Mixed batch with an out-of-schema fact (ignored).
            UpdateBatch::inserting([fact("win", [9]), fact("move", [2, 0])]),
        ];
        for (k, b) in batches.iter().enumerate() {
            session.apply(b);
            b.apply_to_instance(&mut edb);
            let expect = q.model(&edb.restrict(q.input_schema()));
            assert_eq!(session.model().true_facts, expect.true_facts, "batch {k}");
            assert_eq!(
                session.model().possible_facts,
                expect.possible_facts,
                "batch {k}"
            );
            assert_eq!(session.output(), q.eval(&edb), "batch {k}");
        }
        // The out-of-schema win(9) never entered the session EDB.
        assert!(!session.edb().contains(&fact("win", [9])));
    }
}
