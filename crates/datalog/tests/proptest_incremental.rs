//! The differential suite for incremental maintenance: on random
//! stratified programs and random signed batch sequences, folding the
//! batches into a maintained evaluation must land on exactly the
//! database a from-scratch evaluation of the final EDB produces —
//! after every batch, at eval-threads 1 and 4 — and the same holds for
//! random win–move games under the well-founded semantics.
//!
//! Deterministic seeded loops over the in-repo
//! [`calm_common::rng::Rng`]: every case is reproducible from the seed
//! printed in the assert message.

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::rng::Rng;
use calm_common::update::UpdateBatch;
use calm_datalog::ast::{Atom, Rule, Term};
use calm_datalog::program::Program;
use calm_datalog::{DatalogQuery, WellFoundedQuery};

const CASES: u64 = 48;

/// Random positive rule over edb {E(2), V(1)} with idb T(2), S(1) —
/// the same generator family as `proptest_engine.rs`.
fn rand_rule(r: &mut Rng) -> Rule {
    const VARS: [&str; 4] = ["x", "y", "z", "w"];
    let mut body = Vec::new();
    for _ in 0..r.gen_range(1..4usize) {
        if r.gen_bool(0.5) {
            let rel = *r.choose(&["E", "T"]).unwrap();
            let a = *r.choose(&VARS).unwrap();
            let b = *r.choose(&VARS).unwrap();
            body.push(Atom::new(rel, vec![Term::var(a), Term::var(b)]));
        } else {
            let rel = *r.choose(&["V", "S"]).unwrap();
            let a = *r.choose(&VARS).unwrap();
            body.push(Atom::new(rel, vec![Term::var(a)]));
        }
    }
    let mut body_vars: Vec<_> = body.iter().flat_map(|a| a.variables().cloned()).collect();
    body_vars.sort();
    body_vars.dedup();
    let head_rel = *r.choose(&["T", "S"]).unwrap();
    let arity = if head_rel == "T" { 2 } else { 1 };
    let head_terms: Vec<Term> = (0..arity)
        .map(|i| Term::Var(body_vars[i % body_vars.len()].clone()))
        .collect();
    Rule {
        head: Atom::new(head_rel, head_terms),
        pos: body,
        neg: vec![],
        ineq: vec![],
    }
}

/// Random stratified program: a positive layer plus 1..3 rules
/// `O(v) :- guard, not Idb(..)` over it.
fn rand_stratified_rules(r: &mut Rng) -> Vec<Rule> {
    let mut rules: Vec<Rule> = (0..r.gen_range(1..4usize)).map(|_| rand_rule(r)).collect();
    for _ in 0..r.gen_range(1..3usize) {
        let guard = if r.gen_bool(0.5) {
            Atom::new(
                *r.choose(&["E", "T"]).unwrap(),
                vec![Term::var("x"), Term::var("y")],
            )
        } else {
            Atom::new(*r.choose(&["V", "S"]).unwrap(), vec![Term::var("x")])
        };
        let guard_vars: Vec<_> = guard.variables().cloned().collect();
        let neg_rel = *r.choose(&["T", "S"]).unwrap();
        let neg_arity = if neg_rel == "T" { 2 } else { 1 };
        let neg_terms: Vec<Term> = (0..neg_arity)
            .map(|i| Term::Var(guard_vars[i % guard_vars.len()].clone()))
            .collect();
        rules.push(Rule {
            head: Atom::new("O", vec![Term::Var(guard_vars[0].clone())]),
            pos: vec![guard],
            neg: vec![Atom::new(neg_rel, neg_terms)],
            ineq: vec![],
        });
    }
    rules
}

fn small_instance(r: &mut Rng) -> Instance {
    let mut i = Instance::new();
    for _ in 0..r.gen_range(0..8usize) {
        i.insert(fact("E", [r.gen_range(0..4i64), r.gen_range(0..4i64)]));
    }
    for _ in 0..r.gen_range(0..4usize) {
        i.insert(fact("V", [r.gen_range(0..4i64)]));
    }
    i
}

/// A random signed batch over the same domain: deletions are biased
/// toward facts actually present (so retraction paths really fire),
/// insertions are fresh-or-duplicate uniformly.
fn rand_batch(r: &mut Rng, current: &Instance) -> UpdateBatch {
    let mut b = UpdateBatch::new();
    let present: Vec<_> = current.facts().collect();
    for _ in 0..r.gen_range(0..3usize) {
        if !present.is_empty() && r.gen_bool(0.7) {
            b.delete
                .push(present[r.gen_range(0..present.len())].clone());
        } else if r.gen_bool(0.5) {
            b.delete
                .push(fact("E", [r.gen_range(0..4i64), r.gen_range(0..4i64)]));
        } else {
            b.delete.push(fact("V", [r.gen_range(0..4i64)]));
        }
    }
    for _ in 0..r.gen_range(0..3usize) {
        if r.gen_bool(0.6) {
            b.insert
                .push(fact("E", [r.gen_range(0..4i64), r.gen_range(0..4i64)]));
        } else {
            b.insert.push(fact("V", [r.gen_range(0..4i64)]));
        }
    }
    b
}

/// The core differential oracle: random stratified programs × random
/// insert/delete batch sequences. After every batch the maintained
/// session must match a from-scratch evaluation of the updated EDB —
/// at eval-threads 1 and 4 (the from-scratch fixpoint is byte-identical
/// at any thread count, so agreement at both pins the maintained state
/// against the whole family).
#[test]
fn incremental_matches_from_scratch_on_random_programs() {
    let mut retractions = 0usize;
    let mut rederivations = 0usize;
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let rules = rand_stratified_rules(&mut r);
        let Ok(p) = Program::new(rules) else {
            continue;
        };
        let mut edb = small_instance(&mut r);
        for threads in [1usize, 4] {
            let q = DatalogQuery::new(format!("case{seed}"), p.clone())
                .unwrap()
                .with_eval_threads(threads);
            let mut session = q.open(&edb);
            let mut local_edb = edb.clone();
            for k in 0..r.gen_range(1..5usize) {
                let batch = rand_batch(&mut r, &local_edb);
                let stats = session.apply(&batch);
                retractions += stats.retractions;
                rederivations += stats.rederivations;
                batch.apply_to_instance(&mut local_edb);
                assert_eq!(
                    session.output(),
                    q.eval(&local_edb),
                    "seed {seed} threads {threads} batch {k}: diverged\n{p}\nEDB: {local_edb:?}"
                );
                assert!(
                    !session.database().storage().any_dead(),
                    "seed {seed} threads {threads} batch {k}: tombstones leaked"
                );
            }
        }
        // Keep the RNG stream per-seed deterministic regardless of the
        // thread loop by re-deriving edb mutations only inside it.
        let _ = &mut edb;
    }
    assert!(
        retractions > 0,
        "no random case exercised the retraction path"
    );
    assert!(
        rederivations > 0,
        "no random case exercised the rederive path"
    );
}

/// Well-founded differential: random win–move games × random move
/// insert/delete batches. The maintained session (cached doubled
/// compilation, interned EDB) must reproduce the from-scratch
/// three-valued model after every batch.
#[test]
fn wellfounded_session_matches_from_scratch_on_random_games() {
    let q = WellFoundedQuery::parse("win-move", "win(x) :- move(x,y), not win(y).").unwrap();
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed ^ 0x5eed);
        let mut edb = Instance::from_facts(
            (0..r.gen_range(0..10usize))
                .map(|_| fact("move", [r.gen_range(0..5i64), r.gen_range(0..5i64)])),
        );
        let mut session = q.open(&edb);
        for k in 0..r.gen_range(1..4usize) {
            let mut batch = UpdateBatch::new();
            let present: Vec<_> = edb.facts().collect();
            for _ in 0..r.gen_range(0..3usize) {
                if !present.is_empty() && r.gen_bool(0.7) {
                    batch
                        .delete
                        .push(present[r.gen_range(0..present.len())].clone());
                } else {
                    batch
                        .delete
                        .push(fact("move", [r.gen_range(0..5i64), r.gen_range(0..5i64)]));
                }
            }
            for _ in 0..r.gen_range(0..3usize) {
                batch
                    .insert
                    .push(fact("move", [r.gen_range(0..5i64), r.gen_range(0..5i64)]));
            }
            session.apply(&batch);
            batch.apply_to_instance(&mut edb);
            let expect = q.model(&edb);
            assert_eq!(
                session.model().true_facts,
                expect.true_facts,
                "seed {seed} batch {k}: true facts diverged"
            );
            assert_eq!(
                session.model().possible_facts,
                expect.possible_facts,
                "seed {seed} batch {k}: possible facts diverged"
            );
        }
    }
}

/// Insert-only batch sequences on *positive* programs must behave
/// exactly like the historical grow-only path: no retractions, no EDB
/// deletions, and the maintained database equals from-scratch (the
/// byte-identity guard for v1 workloads). Restricted to positive
/// programs deliberately — under stratified negation even a pure
/// insert can retract higher-stratum facts through a `not` atom.
#[test]
fn insert_only_sequences_never_tombstone() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed ^ 0xadd);
        let rules: Vec<Rule> = (0..r.gen_range(1..4usize))
            .map(|_| rand_rule(&mut r))
            .collect();
        let Ok(p) = Program::new(rules) else {
            continue;
        };
        let q = DatalogQuery::new(format!("grow{seed}"), p.clone()).unwrap();
        let mut edb = small_instance(&mut r);
        let mut session = q.open(&edb);
        for k in 0..3 {
            let batch = UpdateBatch::inserting(small_instance(&mut r).facts());
            let stats = session.apply(&batch);
            assert_eq!(stats.retractions, 0, "seed {seed} batch {k}");
            assert_eq!(stats.edb_deleted, 0, "seed {seed} batch {k}");
            batch.apply_to_instance(&mut edb);
            assert_eq!(
                session.output(),
                q.eval(&edb),
                "seed {seed} batch {k}: diverged\n{p}"
            );
        }
    }
}
