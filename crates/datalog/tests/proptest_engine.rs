//! Property tests for the Datalog crate: parser round-trips, engine
//! equivalence across optimization levels, stratification invariants.
//!
//! Deterministic seeded loops over the in-repo [`calm_common::rng::Rng`]:
//! every case is reproducible from the loop seed printed in the assert
//! message.

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::rng::Rng;
use calm_datalog::ast::{Atom, Rule, Term};
use calm_datalog::eval::{eval_program_with, Engine};
use calm_datalog::program::Program;
use calm_datalog::stratify::stratify;
use calm_datalog::{parse_program, parse_rule};

const CASES: u64 = 48;

/// Random positive rule over a fixed schema {E(2), V(1)} with idb T(2),
/// S(1): choose a head and 1..3 body atoms over the head's variables.
fn rand_rule(r: &mut Rng) -> Rule {
    const VARS: [&str; 4] = ["x", "y", "z", "w"];
    let mut body = Vec::new();
    for _ in 0..r.gen_range(1..4usize) {
        if r.gen_bool(0.5) {
            let rel = *r.choose(&["E", "T"]).unwrap();
            let a = *r.choose(&VARS).unwrap();
            let b = *r.choose(&VARS).unwrap();
            body.push(Atom::new(rel, vec![Term::var(a), Term::var(b)]));
        } else {
            let rel = *r.choose(&["V", "S"]).unwrap();
            let a = *r.choose(&VARS).unwrap();
            body.push(Atom::new(rel, vec![Term::var(a)]));
        }
    }
    // Head variables drawn from the body to ensure safety.
    let mut body_vars: Vec<_> = body.iter().flat_map(|a| a.variables().cloned()).collect();
    body_vars.sort();
    body_vars.dedup();
    let head_rel = *r.choose(&["T", "S"]).unwrap();
    let arity = if head_rel == "T" { 2 } else { 1 };
    let head_terms: Vec<Term> = (0..arity)
        .map(|i| Term::Var(body_vars[i % body_vars.len()].clone()))
        .collect();
    Rule {
        head: Atom::new(head_rel, head_terms),
        pos: body,
        neg: vec![],
        ineq: vec![],
    }
}

fn rand_rules(r: &mut Rng, max: usize) -> Vec<Rule> {
    (0..r.gen_range(1..max)).map(|_| rand_rule(r)).collect()
}

fn small_instance(r: &mut Rng) -> Instance {
    let mut i = Instance::new();
    for _ in 0..r.gen_range(0..8usize) {
        i.insert(fact("E", [r.gen_range(0..4i64), r.gen_range(0..4i64)]));
    }
    for _ in 0..r.gen_range(0..4usize) {
        i.insert(fact("V", [r.gen_range(0..4i64)]));
    }
    i
}

#[test]
fn rule_display_reparses_identically() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let rule = rand_rule(&mut r);
        let text = rule.to_string();
        let reparsed = parse_rule(&text).unwrap();
        assert_eq!(rule, reparsed, "seed {seed}: {text}");
    }
}

#[test]
fn program_display_reparses() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        // Head/arity conflicts are impossible by construction.
        if let Ok(p) = Program::new(rand_rules(&mut r, 5)) {
            let text = p.to_string();
            let p2 = parse_program(&text).unwrap();
            assert_eq!(p.rules(), p2.rules(), "seed {seed}: {text}");
        }
    }
}

#[test]
fn engines_agree_on_random_programs() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let rules = rand_rules(&mut r, 5);
        let input = small_instance(&mut r);
        if let Ok(p) = Program::new(rules) {
            let (a, _) = eval_program_with(&p, &input, Engine::SemiNaive).unwrap();
            let (b, _) = eval_program_with(&p, &input, Engine::SemiNaiveBaseline).unwrap();
            let (c, _) = eval_program_with(&p, &input, Engine::Naive).unwrap();
            assert_eq!(a, b, "seed {seed}: optimized vs baseline\n{p}");
            assert_eq!(a, c, "seed {seed}: seminaive vs naive\n{p}");
        }
    }
}

/// Random *stratified* program: a positive layer defining `T`/`S`
/// (as [`rand_rules`]) plus 1..3 second-stratum rules `O(v) :- guard,
/// not Idb(...)` whose negated atom ranges over the first layer's idb.
/// `O` never occurs in a body, so the program is stratifiable by
/// construction.
fn rand_stratified_rules(r: &mut Rng) -> Vec<Rule> {
    let mut rules = rand_rules(r, 4);
    for _ in 0..r.gen_range(1..3usize) {
        let guard = if r.gen_bool(0.5) {
            Atom::new(
                *r.choose(&["E", "T"]).unwrap(),
                vec![Term::var("x"), Term::var("y")],
            )
        } else {
            Atom::new(*r.choose(&["V", "S"]).unwrap(), vec![Term::var("x")])
        };
        let guard_vars: Vec<_> = guard.variables().cloned().collect();
        let neg_rel = *r.choose(&["T", "S"]).unwrap();
        let neg_arity = if neg_rel == "T" { 2 } else { 1 };
        let neg_terms: Vec<Term> = (0..neg_arity)
            .map(|i| Term::Var(guard_vars[i % guard_vars.len()].clone()))
            .collect();
        rules.push(Rule {
            head: Atom::new("O", vec![Term::Var(guard_vars[0].clone())]),
            pos: vec![guard],
            neg: vec![Atom::new(neg_rel, neg_terms)],
            ineq: vec![],
        });
    }
    rules
}

/// Differential test across the three storage paths: the indexed
/// semi-naive engine (incremental per-column indexes maintained on
/// insert), the unindexed baseline, and naive re-derivation must produce
/// identical instances on random stratified programs — and the engine
/// metrics must show the baseline never touching an index while the
/// optimized path probes instead of scanning.
#[test]
fn engines_agree_on_random_stratified_programs() {
    let mut optimized_probes = 0usize;
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let rules = rand_stratified_rules(&mut r);
        let input = small_instance(&mut r);
        if let Ok(p) = Program::new(rules) {
            let (a, sa) = eval_program_with(&p, &input, Engine::SemiNaive).unwrap();
            let (b, sb) = eval_program_with(&p, &input, Engine::SemiNaiveBaseline).unwrap();
            let (c, _) = eval_program_with(&p, &input, Engine::Naive).unwrap();
            assert_eq!(a, b, "seed {seed}: indexed vs baseline\n{p}");
            assert_eq!(a, c, "seed {seed}: semi-naive vs naive\n{p}");
            let baseline_probes: usize = sb.iter().map(|s| s.index_probes).sum();
            assert_eq!(
                baseline_probes, 0,
                "seed {seed}: baseline probed an index\n{p}"
            );
            optimized_probes += sa.iter().map(|s| s.index_probes).sum::<usize>();
        }
    }
    assert!(
        optimized_probes > 0,
        "no random case exercised the incremental indexes"
    );
}

/// The data-parallel differential suite: on random stratified Datalog¬
/// programs the parallel driver must produce a byte-identical answer
/// AND byte-identical per-stratum [`EvalMetrics`] for T ∈ {2, 8} — for
/// both the indexed engine (probe-path units stay whole) and the
/// scan-only baseline (every unit partitionable).
///
/// [`EvalMetrics`]: calm_datalog::eval::EvalMetrics
#[test]
fn parallel_eval_is_byte_identical_to_sequential_on_random_programs() {
    use calm_common::storage::SharedSymbols;
    use calm_datalog::eval::eval_stratification_opts;
    let noop = calm_obs::Obs::noop();
    let mut exercised = 0usize;
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let rules = rand_stratified_rules(&mut r);
        let input = small_instance(&mut r);
        let Ok(p) = Program::new(rules) else {
            continue;
        };
        let strat = stratify(&p).unwrap();
        for engine in [Engine::SemiNaive, Engine::SemiNaiveBaseline] {
            let (seq_out, seq_stats) =
                eval_stratification_opts(&strat, &input, engine, SharedSymbols::new(), &noop, 1);
            for threads in [2, 8] {
                let (par_out, par_stats) = eval_stratification_opts(
                    &strat,
                    &input,
                    engine,
                    SharedSymbols::new(),
                    &noop,
                    threads,
                );
                assert_eq!(
                    seq_out, par_out,
                    "seed {seed} engine {engine:?} T={threads}: output diverged\n{p}"
                );
                assert_eq!(
                    seq_stats, par_stats,
                    "seed {seed} engine {engine:?} T={threads}: metrics diverged\n{p}"
                );
            }
        }
        exercised += 1;
    }
    assert!(exercised > 0, "no random case was evaluated");
}

#[test]
fn evaluation_is_inflationary_and_monotone_for_positive_programs() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let rules = rand_rules(&mut r, 4);
        let input = small_instance(&mut r);
        let extra = small_instance(&mut r);
        if let Ok(p) = Program::new(rules) {
            let out1 = calm_datalog::eval::eval_program(&p, &input).unwrap();
            // Inflationary: the input is contained in the model.
            assert!(input.is_subset(&out1), "seed {seed}\n{p}");
            // Monotone: positive programs only grow with more input.
            let out2 = calm_datalog::eval::eval_program(&p, &input.union(&extra)).unwrap();
            assert!(out1.is_subset(&out2), "seed {seed}\n{p}");
        }
    }
}

#[test]
fn stratification_respects_constraints() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        if let Ok(p) = Program::new(rand_rules(&mut r, 5)) {
            let s = stratify(&p).unwrap();
            for rule in p.rules() {
                let head = s.stratum_of[&rule.head.relation];
                for a in &rule.pos {
                    if let Some(&b) = s.stratum_of.get(&a.relation) {
                        assert!(b <= head, "seed {seed}\n{p}");
                    }
                }
                for a in &rule.neg {
                    if let Some(&b) = s.stratum_of.get(&a.relation) {
                        assert!(b < head, "seed {seed}\n{p}");
                    }
                }
            }
        }
    }
}

#[test]
fn adom_rules_compute_active_domain() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let input = small_instance(&mut r);
        // Adom rules cover the program's edb (here just E); restrict the
        // comparison to the part of the input the program sees.
        let p = parse_program("T(x,y) :- E(x,y).").unwrap().with_adom();
        let visible = input.restrict(&p.edb());
        let out = calm_datalog::eval::eval_program(&p, &visible).unwrap();
        let adom_vals: std::collections::BTreeSet<_> =
            out.tuples("Adom").map(|t| t[0].clone()).collect();
        assert_eq!(adom_vals, visible.adom(), "seed {seed}");
    }
}
