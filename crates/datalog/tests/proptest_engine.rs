//! Property tests for the Datalog crate: parser round-trips, engine
//! equivalence across optimization levels, stratification invariants.

use calm_datalog::ast::{Atom, Rule, Term};
use calm_datalog::eval::{eval_program_with, Engine};
use calm_datalog::program::Program;
use calm_datalog::stratify::stratify;
use calm_datalog::{parse_program, parse_rule};
use calm_common::fact::fact;
use calm_common::instance::Instance;
use proptest::prelude::*;

/// Random positive rules over a fixed schema {E(2), V(1)} with idb T(2),
/// S(1): choose a head and 1..3 body atoms over the head's variables.
fn arb_rule() -> impl Strategy<Value = Rule> {
    let vars = prop::sample::select(vec!["x", "y", "z", "w"]);
    let atom = (prop::sample::select(vec!["E", "T"]), vars.clone(), vars.clone())
        .prop_map(|(r, a, b)| Atom::new(r, vec![Term::var(a), Term::var(b)]));
    let unary = (prop::sample::select(vec!["V", "S"]), vars.clone())
        .prop_map(|(r, a)| Atom::new(r, vec![Term::var(a)]));
    let body_atom = prop_oneof![atom.clone(), unary.clone()];
    (
        prop::sample::select(vec!["T", "S"]),
        prop::collection::vec(body_atom, 1..4),
    )
        .prop_map(|(head_rel, body)| {
            // Head variables drawn from the body to ensure safety.
            let mut body_vars: Vec<_> = body
                .iter()
                .flat_map(|a| a.variables().cloned())
                .collect();
            body_vars.sort();
            body_vars.dedup();
            let arity = if head_rel == "T" { 2 } else { 1 };
            let head_terms: Vec<Term> = (0..arity)
                .map(|i| Term::Var(body_vars[i % body_vars.len()].clone()))
                .collect();
            Rule {
                head: Atom::new(head_rel, head_terms),
                pos: body,
                neg: vec![],
                ineq: vec![],
            }
        })
}

fn small_instance() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec((0..4i64, 0..4i64), 0..8),
        prop::collection::vec(0..4i64, 0..4),
    )
        .prop_map(|(edges, verts)| {
            let mut i = Instance::from_facts(edges.into_iter().map(|(a, b)| fact("E", [a, b])));
            i.extend(verts.into_iter().map(|v| fact("V", [v])));
            i
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rule_display_reparses_identically(rule in arb_rule()) {
        let text = rule.to_string();
        let reparsed = parse_rule(&text).unwrap();
        prop_assert_eq!(rule, reparsed);
    }

    #[test]
    fn program_display_reparses(rules in prop::collection::vec(arb_rule(), 1..5)) {
        // Deduplicate head/arity conflicts are impossible by construction.
        if let Ok(p) = Program::new(rules) {
            let text = p.to_string();
            let p2 = parse_program(&text).unwrap();
            prop_assert_eq!(p.rules(), p2.rules());
        }
    }

    #[test]
    fn engines_agree_on_random_programs(
        rules in prop::collection::vec(arb_rule(), 1..5),
        input in small_instance(),
    ) {
        if let Ok(p) = Program::new(rules) {
            let (a, _) = eval_program_with(&p, &input, Engine::SemiNaive).unwrap();
            let (b, _) = eval_program_with(&p, &input, Engine::SemiNaiveBaseline).unwrap();
            let (c, _) = eval_program_with(&p, &input, Engine::Naive).unwrap();
            prop_assert_eq!(&a, &b, "optimized vs baseline");
            prop_assert_eq!(&a, &c, "seminaive vs naive");
        }
    }

    #[test]
    fn evaluation_is_inflationary_and_monotone_for_positive_programs(
        rules in prop::collection::vec(arb_rule(), 1..4),
        input in small_instance(),
        extra in small_instance(),
    ) {
        if let Ok(p) = Program::new(rules) {
            let out1 = calm_datalog::eval::eval_program(&p, &input).unwrap();
            // Inflationary: the input is contained in the model.
            prop_assert!(input.is_subset(&out1));
            // Monotone: positive programs only grow with more input.
            let out2 = calm_datalog::eval::eval_program(&p, &input.union(&extra)).unwrap();
            prop_assert!(out1.is_subset(&out2));
        }
    }

    #[test]
    fn stratification_respects_constraints(rules in prop::collection::vec(arb_rule(), 1..5)) {
        if let Ok(p) = Program::new(rules) {
            let s = stratify(&p).unwrap();
            for rule in p.rules() {
                let head = s.stratum_of[&rule.head.relation];
                for a in &rule.pos {
                    if let Some(&b) = s.stratum_of.get(&a.relation) {
                        prop_assert!(b <= head);
                    }
                }
                for a in &rule.neg {
                    if let Some(&b) = s.stratum_of.get(&a.relation) {
                        prop_assert!(b < head);
                    }
                }
            }
        }
    }

    #[test]
    fn adom_rules_compute_active_domain(input in small_instance()) {
        // Adom rules cover the program's edb (here just E); restrict the
        // comparison to the part of the input the program sees.
        let p = parse_program("T(x,y) :- E(x,y).").unwrap().with_adom();
        let visible = input.restrict(&p.edb());
        let out = calm_datalog::eval::eval_program(&p, &visible).unwrap();
        let adom_vals: std::collections::BTreeSet<_> =
            out.tuples("Adom").map(|t| t[0].clone()).collect();
        prop_assert_eq!(adom_vals, visible.adom());
    }
}
