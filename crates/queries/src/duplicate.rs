//! `Q^j_duplicate` (Theorem 3.1(7)): over binary relations `R1, ..., Rj`,
//! output `R1` when the global intersection `R1 ∩ ... ∩ Rj` is empty, and
//! the empty set otherwise.
//!
//! The paper uses it to show `M^i_distinct ⊄ M^j_disjoint` for `i < j`:
//! a *domain-disjoint* instance with `j` facts can replicate one fresh
//! tuple across all `j` relations (flipping the answer), while
//! domain-distinct instances of at most `i < j` facts can never populate
//! the full intersection.

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;

/// The parameterized duplicate query.
pub struct DuplicateQuery {
    j: usize,
    name: String,
    input: Schema,
    output: Schema,
}

impl DuplicateQuery {
    /// `Q^j_duplicate` over relations `R1..Rj`, all binary.
    pub fn new(j: usize) -> Self {
        assert!(j >= 1);
        let input = Schema::from_pairs(
            (1..=j)
                .map(|k| (format!("R{k}"), 2usize))
                .collect::<Vec<_>>()
                .iter()
                .map(|(n, a)| (n.as_str(), *a))
                .collect::<Vec<_>>(),
        );
        DuplicateQuery {
            j,
            name: format!("q{j}duplicate"),
            input,
            output: Schema::from_pairs([("O", 2)]),
        }
    }

    /// The parameter `j`.
    pub fn j(&self) -> usize {
        self.j
    }
}

/// Whether some tuple occurs in every one of `R1..Rj`.
pub fn has_global_duplicate(i: &Instance, j: usize) -> bool {
    i.tuples("R1")
        .any(|t| (2..=j).all(|k| i.contains_tuple(&format!("R{k}"), t)))
}

impl Query for DuplicateQuery {
    fn input_schema(&self) -> &Schema {
        &self.input
    }

    fn output_schema(&self) -> &Schema {
        &self.output
    }

    fn eval(&self, input: &Instance) -> Instance {
        let i = input.restrict(&self.input);
        if has_global_duplicate(&i, self.j) {
            Instance::new()
        } else {
            let mut out = Instance::new();
            for t in i.tuples("R1") {
                out.insert(fact("O", [t[0].clone(), t[1].clone()]));
            }
            out
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::domain::{is_domain_disjoint, is_domain_distinct};

    #[test]
    fn outputs_r1_when_intersection_empty() {
        let q = DuplicateQuery::new(3);
        let i = Instance::from_facts([fact("R1", [1, 2]), fact("R2", [1, 3]), fact("R3", [1, 2])]);
        assert!(!has_global_duplicate(&i, 3));
        let out = q.eval(&i);
        assert_eq!(out, Instance::from_facts([fact("O", [1, 2])]));
    }

    #[test]
    fn empty_when_duplicate_exists() {
        let q = DuplicateQuery::new(2);
        let i = Instance::from_facts([fact("R1", [1, 2]), fact("R2", [1, 2])]);
        assert!(has_global_duplicate(&i, 2));
        assert!(q.eval(&i).is_empty());
    }

    #[test]
    fn disjoint_j_facts_flip_the_answer() {
        // Paper: a domain-disjoint J with |J| = j replicates a new tuple.
        let j_param = 3;
        let q = DuplicateQuery::new(j_param);
        let i = Instance::from_facts([fact("R1", [1, 2]), fact("R2", [3, 4])]);
        let j = Instance::from_facts([
            fact("R1", [50, 51]),
            fact("R2", [50, 51]),
            fact("R3", [50, 51]),
        ]);
        assert!(is_domain_disjoint(&j, &i));
        assert_eq!(j.len(), j_param);
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert!(!before.is_empty());
        assert!(after.is_empty(), "Q^j_duplicate ∉ M^j_disjoint");
    }

    #[test]
    fn small_distinct_additions_cannot_flip() {
        // i < j domain-distinct facts cannot replicate a tuple across all
        // j relations: each added fact covers one relation, and distinct
        // facts must contain a fresh value — replicating an *existing*
        // tuple is impossible and a fully fresh tuple needs j facts.
        let q = DuplicateQuery::new(3);
        let i = Instance::from_facts([fact("R1", [1, 2]), fact("R2", [1, 2])]);
        // Two domain-distinct facts (fewer than j = 3).
        let j = Instance::from_facts([fact("R3", [1, 60]), fact("R3", [61, 62])]);
        assert!(is_domain_distinct(&j, &i));
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert!(before.is_subset(&after));
    }
}
