//! The two programs of Example 5.1.
//!
//! * `P1`: outputs the vertices not on any (directed, 3-distinct-vertex)
//!   triangle. All its rules are connected, so `P1 ∈ con-Datalog¬`, yet
//!   `P1 ∉ Mdistinct` (a domain-distinct addition can complete a
//!   triangle and retract output).
//! * `P2`: outputs all vertices unless two vertex-disjoint triangles
//!   exist. Its `D` rule joins two triangles with no shared variable, so
//!   `P2` is **not** semi-connected — and indeed the query is not in
//!   `Mdisjoint`.

use calm_datalog::DatalogQuery;

/// Source of `P1` (con-Datalog¬).
pub const P1_SRC: &str = "@output O.\n\
    T(x) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.\n\
    O(x) :- Adom(x), not T(x).\n\
    Adom(x) :- E(x,y).\n\
    Adom(y) :- E(x,y).";

/// Source of `P2` (stratified but not semicon-Datalog¬).
pub const P2_SRC: &str = "@output O.\n\
    T(x,y,z) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.\n\
    D(x1) :- T(x1,x2,x3), T(y1,y2,y3), x1 != y1, x1 != y2, x1 != y3, \
             x2 != y1, x2 != y2, x2 != y3, x3 != y1, x3 != y2, x3 != y3.\n\
    O(x) :- Adom(x), not D(x).\n\
    Adom(x) :- E(x,y).\n\
    Adom(y) :- E(x,y).";

/// `P1` as a query.
pub fn p1() -> DatalogQuery {
    DatalogQuery::parse("example5.1-P1", P1_SRC).expect("P1 is well-formed")
}

/// `P2` as a query.
pub fn p2() -> DatalogQuery {
    DatalogQuery::parse("example5.1-P2", P2_SRC).expect("P2 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::domain::{is_domain_disjoint, is_domain_distinct};
    use calm_common::fact::fact;
    use calm_common::instance::Instance;
    use calm_common::query::Query;
    use calm_datalog::classify;

    #[test]
    fn p1_fragment_membership() {
        let r = classify(p1().program());
        assert!(r.connected);
        assert!(r.semi_connected);
        assert!(!r.sp_datalog);
    }

    #[test]
    fn p2_fragment_membership() {
        let r = classify(p2().program());
        assert!(!r.connected);
        assert!(!r.semi_connected);
        assert!(r.stratifiable);
    }

    #[test]
    fn paper_counterexample_for_p1() {
        // P1({E(a,b)}) ≠ ∅ while P1({E(a,b)} ∪ {E(b,c), E(c,a)}) = ∅.
        let q = p1();
        let i = Instance::from_facts([fact("E", [1, 2])]);
        let extension = Instance::from_facts([fact("E", [2, 3]), fact("E", [3, 1])]);
        assert!(is_domain_distinct(&extension, &i));
        let before = q.eval(&i);
        let after = q.eval(&i.union(&extension));
        assert!(!before.is_empty());
        assert!(after.is_empty());
        assert!(!before.is_subset(&after), "P1 ∉ Mdistinct");
    }

    #[test]
    fn p1_survives_domain_disjoint_extension() {
        // P1 ∈ con-Datalog¬ ⊆ Mdisjoint (Theorem 5.3): disjoint junk
        // cannot retract output.
        let q = p1();
        let i = Instance::from_facts([fact("E", [1, 2])]);
        let j = calm_common::generator::triangle_from(100);
        assert!(is_domain_disjoint(&j, &i));
        assert!(q.eval(&i).is_subset(&q.eval(&i.union(&j))));
    }

    #[test]
    fn p2_not_domain_disjoint_monotone() {
        // Adding a disjoint triangle to a one-triangle instance kills the
        // output: the expressed query is not in Mdisjoint, which is why
        // P2 cannot be written in semicon-Datalog¬ (Theorem 5.3).
        let q = p2();
        let i = calm_common::generator::triangle_from(0);
        let j = calm_common::generator::triangle_from(100);
        assert!(is_domain_disjoint(&j, &i));
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert!(!before.is_empty());
        assert!(after.is_empty());
    }

    #[test]
    fn p2_semantics_on_shared_triangles() {
        // Two triangles sharing a vertex: not disjoint, so all vertices
        // are output.
        let q = p2();
        let mut i = calm_common::generator::triangle_from(0);
        i.extend(
            Instance::from_facts([fact("E", [0, 10]), fact("E", [10, 11]), fact("E", [11, 0])])
                .facts(),
        );
        let out = q.eval(&i);
        assert_eq!(out.relation_len("O"), 5);
    }
}
