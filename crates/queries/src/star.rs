//! `Q^k_star` (Theorem 3.1(4, 6)): output the edge relation when no star
//! with `k` spokes exists, and the empty relation otherwise.
//!
//! A star with `k` spokes is a centre vertex with at least `k` distinct
//! out-neighbours (the shape the paper's proofs build: a centre "points
//! at" the spokes). Separations:
//!
//! * `Q^{i+1}_star ∉ M^{i+1}_disjoint`: `i+1` *domain-disjoint* edges with
//!   a common (fresh) centre form a brand-new star;
//! * `Q^{i+1}_star ∈ M^i_disjoint`: at most `i` disjoint edges can neither
//!   extend an old star (they avoid the old centre) nor build a new one;
//! * `Q^{j+1}_star ∉ M^1_distinct`: when a `j`-spoke star exists, a single
//!   domain-distinct edge from the old centre to a fresh vertex makes it
//!   `j+1`.

use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;
use calm_common::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// The parameterized star query.
pub struct StarQuery {
    k: usize,
    name: String,
    input: Schema,
    output: Schema,
}

impl StarQuery {
    /// `Q^k_star` for `k >= 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "a star needs at least one spoke");
        StarQuery {
            k,
            name: format!("q{k}star"),
            input: Schema::from_pairs([("E", 2)]),
            output: Schema::from_pairs([("E", 2)]),
        }
    }

    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Whether the graph contains a star with `k` spokes: a vertex with at
/// least `k` distinct out-neighbours other than itself.
pub fn has_star(i: &Instance, k: usize) -> bool {
    let mut out_neighbours: BTreeMap<Value, BTreeSet<Value>> = BTreeMap::new();
    for t in i.tuples("E") {
        if t[0] != t[1] {
            out_neighbours
                .entry(t[0].clone())
                .or_default()
                .insert(t[1].clone());
        }
    }
    out_neighbours.values().any(|n| n.len() >= k)
}

impl Query for StarQuery {
    fn input_schema(&self) -> &Schema {
        &self.input
    }

    fn output_schema(&self) -> &Schema {
        &self.output
    }

    fn eval(&self, input: &Instance) -> Instance {
        let i = input.restrict(&self.input);
        if has_star(&i, self.k) {
            Instance::new()
        } else {
            i
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::domain::{is_domain_disjoint, is_domain_distinct};
    use calm_common::generator::{disjoint_edges, edge, star};

    #[test]
    fn detects_stars() {
        assert!(has_star(&star(3), 3));
        assert!(!has_star(&star(3), 4));
        assert!(!has_star(&disjoint_edges(0, 5), 2));
    }

    #[test]
    fn self_loops_are_not_spokes() {
        let i = Instance::from_facts([edge(0, 0), edge(0, 1)]);
        assert!(has_star(&i, 1));
        assert!(!has_star(&i, 2));
    }

    #[test]
    fn disjoint_edges_with_common_fresh_centre_break_disjoint_monotonicity() {
        // Q^2_star: I has no 2-star; J = {E(10,11), E(10,12)} is domain
        // disjoint from I and is itself a 2-star.
        let i = Instance::from_facts([edge(1, 2)]);
        let j = Instance::from_facts([edge(10, 11), edge(10, 12)]);
        assert!(is_domain_disjoint(&j, &i));
        let q = StarQuery::new(2);
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert_eq!(before, i);
        assert!(after.is_empty());
        assert!(!before.is_subset(&after), "Q^2_star ∉ M^2_disjoint");
    }

    #[test]
    fn single_disjoint_edge_cannot_break_q2star() {
        // With |J| = 1 disjoint edge, no 2-star can appear.
        let i = Instance::from_facts([edge(1, 2)]);
        let j = Instance::from_facts([edge(10, 11)]);
        let q = StarQuery::new(2);
        assert!(q.eval(&i).is_subset(&q.eval(&i.union(&j))));
    }

    #[test]
    fn one_distinct_edge_extends_old_star() {
        // Paper's Q^{j+1}_star ∉ M^1_distinct: extend a j-star through its
        // old centre with one fresh spoke.
        let i = star(2); // centre 0, spokes 1, 2
        let j = Instance::from_facts([edge(0, 99)]);
        assert!(is_domain_distinct(&j, &i));
        let q = StarQuery::new(3);
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert_eq!(before, i);
        assert!(after.is_empty());
    }
}
