//! The `Mdisjoint ⊊ C` witness (Theorem 3.1(1), third part): the query
//! that outputs all triangles *on condition that no two domain-disjoint
//! triangles exist*, and the empty relation otherwise.
//!
//! Adding a domain-disjoint triangle to an instance that already has one
//! retracts all output — so the query is computable but not
//! domain-disjoint-monotone. Its natural Datalog¬ rendition is Example
//! 5.1's `P2`, which is *not* semi-connected (see
//! [`crate::example51`]).

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;
use calm_common::value::Value;

/// The triangles-unless-two-disjoint query.
pub struct TrianglesUnlessTwoDisjoint {
    input: Schema,
    output: Schema,
}

impl Default for TrianglesUnlessTwoDisjoint {
    fn default() -> Self {
        Self::new()
    }
}

impl TrianglesUnlessTwoDisjoint {
    /// Construct the query.
    pub fn new() -> Self {
        TrianglesUnlessTwoDisjoint {
            input: Schema::from_pairs([("E", 2)]),
            output: Schema::from_pairs([("O", 3)]),
        }
    }
}

/// All directed triangles `(x, y, z)` with pairwise-distinct vertices:
/// `E(x,y), E(y,z), E(z,x)`.
pub fn triangles(i: &Instance) -> Vec<(Value, Value, Value)> {
    let edges: Vec<(&Value, &Value)> = i.tuples("E").map(|t| (&t[0], &t[1])).collect();
    let mut out = Vec::new();
    for (x, y) in &edges {
        if x == y {
            continue;
        }
        for (y2, z) in &edges {
            if y2 != y || z == x || z == y {
                continue;
            }
            if i.contains_tuple("E", &[(*z).clone(), (*x).clone()]) {
                out.push(((*x).clone(), (*y).clone(), (*z).clone()));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Whether two *domain-disjoint* triangles exist.
pub fn has_two_disjoint_triangles(i: &Instance) -> bool {
    let ts = triangles(i);
    for (a_idx, a) in ts.iter().enumerate() {
        let set_a = [&a.0, &a.1, &a.2];
        for b in ts.iter().skip(a_idx + 1) {
            let set_b = [&b.0, &b.1, &b.2];
            if set_a.iter().all(|v| !set_b.contains(v)) {
                return true;
            }
        }
    }
    false
}

impl Query for TrianglesUnlessTwoDisjoint {
    fn input_schema(&self) -> &Schema {
        &self.input
    }

    fn output_schema(&self) -> &Schema {
        &self.output
    }

    fn eval(&self, input: &Instance) -> Instance {
        let i = input.restrict(&self.input);
        if has_two_disjoint_triangles(&i) {
            return Instance::new();
        }
        let mut out = Instance::new();
        for (x, y, z) in triangles(&i) {
            out.insert(fact("O", [x, y, z]));
        }
        out
    }

    fn name(&self) -> &str {
        "triangles-unless-two-disjoint"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::domain::is_domain_disjoint;
    use calm_common::generator::{disjoint_triangles, triangle_from};

    #[test]
    fn finds_triangles() {
        let t = triangle_from(0);
        let ts = triangles(&t);
        assert_eq!(ts.len(), 3, "three rotations of the same triangle");
        assert!(!has_two_disjoint_triangles(&t));
    }

    #[test]
    fn detects_two_disjoint_triangles() {
        let i = disjoint_triangles(0, 2);
        assert!(has_two_disjoint_triangles(&i));
        // Two triangles sharing a vertex are not disjoint.
        let mut sharing = triangle_from(0);
        sharing.extend(
            Instance::from_facts([
                calm_common::generator::edge(0, 10),
                calm_common::generator::edge(10, 11),
                calm_common::generator::edge(11, 0),
            ])
            .facts(),
        );
        assert!(!has_two_disjoint_triangles(&sharing));
    }

    #[test]
    fn query_not_domain_disjoint_monotone() {
        let q = TrianglesUnlessTwoDisjoint::new();
        let i = triangle_from(0);
        let j = triangle_from(100);
        assert!(is_domain_disjoint(&j, &i));
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert_eq!(before.len(), 3);
        assert!(after.is_empty(), "disjoint triangle retracts the output");
    }

    #[test]
    fn empty_and_triangle_free_inputs() {
        let q = TrianglesUnlessTwoDisjoint::new();
        assert!(q.eval(&Instance::new()).is_empty());
        assert!(q.eval(&calm_common::generator::path(5)).is_empty());
    }
}
