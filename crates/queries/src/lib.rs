//! # calm-queries
//!
//! The paper's concrete queries, each available as a Datalog¬/WFS program
//! and (where useful) a native Rust oracle:
//!
//! | Query | Paper role |
//! |---|---|
//! | [`tc`] — transitive closure | monotone baseline (`M`) |
//! | [`tc::edges_without_source_loop`] | `SP-Datalog` witness in `Mdistinct \ M` |
//! | [`qtc`] — complement of TC | `Mdisjoint \ Mdistinct` (Thm 3.1(1)) |
//! | [`clique`] — `Q^k_clique` | bounded-distinct separations (Thm 3.1(3,5)) |
//! | [`star`] — `Q^k_star` | bounded-disjoint separations (Thm 3.1(4,6)) |
//! | [`duplicate`] — `Q^j_duplicate` | `M^i_distinct ⊄ M^j_disjoint` (Thm 3.1(7)) |
//! | [`triangles`] | `Mdisjoint ⊊ C` witness (Thm 3.1(1)) |
//! | [`example51`] — `P1`, `P2` | connectivity fragments (Ex 5.1) |
//! | [`winmove`] — win-move under WFS | the `F2` flagship (Thm 4.4, §7) |

#![warn(missing_docs)]

pub mod clique;
pub mod duplicate;
pub mod example51;
pub mod extra;
pub mod qtc;
pub mod star;
pub mod tc;
pub mod triangles;
pub mod winmove;

pub use clique::{has_clique, CliqueQuery};
pub use duplicate::{has_global_duplicate, DuplicateQuery};
pub use extra::{on_cycle, reachable, same_generation, unreachable};
pub use qtc::{qtc_datalog, qtc_native};
pub use star::{has_star, StarQuery};
pub use tc::{tc_datalog, tc_native};
pub use triangles::TrianglesUnlessTwoDisjoint;
pub use winmove::{win_move, win_move_drawn, win_move_native};
