//! `Q_TC` — the complement of transitive closure (Theorem 3.1(1)).
//!
//! `Q_TC(I)` outputs `O(a, b)` for every pair of active-domain vertices
//! with **no** path from `a` to `b`. The paper proves
//! `Q_TC ∈ Mdisjoint \ Mdistinct`:
//!
//! * domain-disjoint additions cannot create a missing path (the new
//!   subgraph cannot touch old vertices), so present outputs survive;
//! * a domain-distinct addition `E(a,c), E(c,b)` with `c` fresh *can*
//!   bridge `a` to `b` and retract `O(a,b)`.
//!
//! The program below is semi-connected stratified Datalog¬ (the last
//! stratum holds the one unconnected-by-negation rule), witnessing
//! Theorem 5.3.

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::query::{FnQuery, Query};
use calm_common::schema::Schema;
use calm_datalog::DatalogQuery;

/// Datalog¬ source for `Q_TC` (semicon-Datalog¬).
pub const QTC_SRC: &str = "@output O.\n\
                           Adom(x) :- E(x,y).\n\
                           Adom(y) :- E(x,y).\n\
                           T(x,y) :- E(x,y).\n\
                           T(x,z) :- T(x,y), E(y,z).\n\
                           O(x,y) :- Adom(x), Adom(y), not T(x,y).";

/// `Q_TC` as a stratified Datalog¬ query.
pub fn qtc_datalog() -> DatalogQuery {
    DatalogQuery::parse("qtc", QTC_SRC).expect("QTC_SRC is well-formed")
}

/// Native `Q_TC` (used as the oracle in monotonicity experiments).
pub fn qtc_native() -> impl Query {
    FnQuery::new(
        "qtc-native",
        Schema::from_pairs([("E", 2)]),
        Schema::from_pairs([("O", 2)]),
        |i: &Instance| {
            let tc = crate::tc::tc_native().eval(i);
            let adom = i.adom();
            let mut out = Instance::new();
            for a in &adom {
                for b in &adom {
                    if !tc.contains(&fact("T", [a.clone(), b.clone()])) {
                        out.insert(fact("O", [a.clone(), b.clone()]));
                    }
                }
            }
            out
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::domain::{is_domain_disjoint, is_domain_distinct};
    use calm_common::generator::{edge, path};

    #[test]
    fn datalog_and_native_agree() {
        for input in [
            path(4),
            calm_common::generator::cycle(3),
            calm_common::generator::disjoint_edges(0, 3),
        ] {
            assert_eq!(qtc_datalog().eval(&input), qtc_native().eval(&input));
        }
    }

    #[test]
    fn qtc_is_in_semicon_datalog() {
        let report = calm_datalog::classify(qtc_datalog().program());
        assert!(report.semi_connected);
        assert!(!report.sp_datalog);
    }

    #[test]
    fn domain_disjoint_addition_preserves_output() {
        // Paper's argument for Q_TC ∈ Mdisjoint on a concrete pair.
        let i = Instance::from_facts([edge(1, 2), edge(3, 4)]);
        let j = Instance::from_facts([edge(10, 11), edge(11, 12)]);
        assert!(is_domain_disjoint(&j, &i));
        let q = qtc_datalog();
        assert!(q.eval(&i).is_subset(&q.eval(&i.union(&j))));
    }

    #[test]
    fn domain_distinct_addition_can_retract() {
        // Paper: adding E(a,c), E(c,b) with fresh c creates the a->b path.
        let i = Instance::from_facts([edge(1, 2), edge(3, 4)]);
        let j = Instance::from_facts([edge(2, 9), edge(9, 3)]); // 9 fresh
        assert!(is_domain_distinct(&j, &i));
        assert!(!is_domain_disjoint(&j, &i));
        let q = qtc_datalog();
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert!(before.contains(&fact("O", [1, 4])));
        assert!(!after.contains(&fact("O", [1, 4])), "path 1->4 now exists");
        assert!(!before.is_subset(&after), "Q_TC ∉ Mdistinct witnessed");
    }
}
