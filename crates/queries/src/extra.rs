//! Additional workload queries beyond the paper's separating examples:
//! classic Datalog benchmarks used by the engine and strategy
//! experiments, each with its Figure-2 position noted.

use calm_datalog::DatalogQuery;

/// Same-generation over `Flat(2)`, `Up(2)`, `Down(2)` — the classic
/// recursive Datalog benchmark. Positive, connected: in every class of
/// Figure 2's left column.
pub const SAME_GENERATION_SRC: &str = "@output SG.\n\
    SG(x,y) :- Flat(x,y).\n\
    SG(x,y) :- Up(x,u), SG(u,w), Down(w,y).";

/// Same-generation as a query.
pub fn same_generation() -> DatalogQuery {
    DatalogQuery::parse("same-generation", SAME_GENERATION_SRC).expect("well-formed")
}

/// Vertices on a directed cycle (`T(x,x)` over the transitive closure).
/// Positive Datalog: monotone and connected.
pub const ON_CYCLE_SRC: &str = "@output O.\n\
    T(x,y) :- E(x,y).\n\
    T(x,z) :- T(x,y), E(y,z).\n\
    O(x) :- T(x,x).";

/// On-cycle as a query.
pub fn on_cycle() -> DatalogQuery {
    DatalogQuery::parse("on-cycle", ON_CYCLE_SRC).expect("well-formed")
}

/// Vertices reachable from a seed set `Src(1)` through `E(2)`. Monotone.
pub const REACHABLE_SRC: &str = "@output R.\n\
    R(x) :- Src(x).\n\
    R(y) :- R(x), E(x,y).";

/// Reachability-from-seeds as a query.
pub fn reachable() -> DatalogQuery {
    DatalogQuery::parse("reachable", REACHABLE_SRC).expect("well-formed")
}

/// Unreachable-from-seeds: the semicon-Datalog¬ complement of
/// [`reachable`] — in `Mdisjoint` but (like `Q_TC`) not in `Mdistinct`.
pub const UNREACHABLE_SRC: &str = "@output U.\n\
    R(x) :- Src(x).\n\
    R(y) :- R(x), E(x,y).\n\
    Adom(x) :- E(x,y).\n\
    Adom(y) :- E(x,y).\n\
    Adom(x) :- Src(x).\n\
    U(x) :- Adom(x), not R(x).";

/// Unreachability as a query.
pub fn unreachable() -> DatalogQuery {
    DatalogQuery::parse("unreachable", UNREACHABLE_SRC).expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::generator::{cycle, path};
    use calm_common::instance::Instance;
    use calm_common::query::Query;
    use calm_datalog::classify;

    #[test]
    fn same_generation_semantics() {
        // Two siblings one level up: 1-Up->2, SG(2,3) via Flat, 3-Down->4
        // implies SG(1,4).
        let input = Instance::from_facts([
            fact("Up", [1, 2]),
            fact("Flat", [2, 3]),
            fact("Down", [3, 4]),
        ]);
        let out = same_generation().eval(&input);
        assert!(out.contains(&fact("SG", [1, 4])));
        assert!(out.contains(&fact("SG", [2, 3])));
        assert_eq!(out.relation_len("SG"), 2);
    }

    #[test]
    fn same_generation_is_connected_positive() {
        let r = classify(same_generation().program());
        assert!(r.datalog && r.connected);
    }

    #[test]
    fn on_cycle_finds_cycle_vertices() {
        let mut input = cycle(3); // 0,1,2 on a cycle
        input.extend(
            path(1)
                .map_values(|v| match v {
                    calm_common::Value::Int(k) => calm_common::v(k + 10),
                    o => o.clone(),
                })
                .facts(),
        ); // 10 -> 11 acyclic
        let out = on_cycle().eval(&input);
        assert_eq!(out.relation_len("O"), 3);
        assert!(out.contains(&fact("O", [0])));
        assert!(!out.contains(&fact("O", [10])));
    }

    #[test]
    fn reachable_and_unreachable_partition_adom() {
        let mut input = path(3); // 0->1->2->3
        input.insert(fact("E", [10, 11]));
        input.insert(fact("Src", [1]));
        let r = reachable().eval(&input);
        let u = unreachable().eval(&input);
        // Reachable from 1: {1,2,3}; unreachable: {0,10,11}.
        assert_eq!(r.relation_len("R"), 3);
        assert_eq!(u.relation_len("U"), 3);
        assert!(u.contains(&fact("U", [0])));
        assert!(u.contains(&fact("U", [10])));
    }

    #[test]
    fn unreachable_is_semicon_not_sp() {
        let rep = classify(unreachable().program());
        assert!(rep.semi_connected);
        assert!(!rep.sp_datalog);
        assert!(rep.stratifiable);
    }

    #[test]
    fn unreachable_not_domain_distinct_monotone() {
        // Adding a bridge through a fresh vertex can make an unreachable
        // vertex reachable.
        let mut i = Instance::new();
        i.insert(fact("Src", [1]));
        i.insert(fact("E", [5, 6]));
        let q = unreachable();
        let before = q.eval(&i);
        assert!(before.contains(&fact("U", [5])));
        let mut j = Instance::new();
        j.insert(fact("E", [1, 99]));
        j.insert(fact("E", [99, 5]));
        assert!(calm_common::is_domain_distinct(&j, &i));
        let after = q.eval(&i.union(&j));
        assert!(!after.contains(&fact("U", [5])));
    }
}
