//! `Q^k_clique` (Theorem 3.1(3)): output the edge relation when no clique
//! of `k` vertices exists (ignoring edge direction), and the empty
//! relation otherwise.
//!
//! The paper uses `Q^{i+2}_clique` to separate `M^{i+1}_distinct` from
//! `M^i_distinct`: turning an existing `(i+1)`-clique into an
//! `(i+2)`-clique with *domain-distinct* facts requires a star of at least
//! `i+1` new edges (one fresh centre pointing at all old clique
//! vertices), so additions of at most `i` domain-distinct facts can never
//! flip the answer.

use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;
use calm_common::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// The parameterized clique query.
pub struct CliqueQuery {
    k: usize,
    name: String,
    input: Schema,
    output: Schema,
}

impl CliqueQuery {
    /// `Q^k_clique` for `k >= 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "cliques need at least two vertices");
        CliqueQuery {
            k,
            name: format!("q{k}clique"),
            input: Schema::from_pairs([("E", 2)]),
            output: Schema::from_pairs([("E", 2)]),
        }
    }

    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Whether the (direction-ignored) graph contains a clique on `k`
/// vertices. Exposed for tests and the experiment harness.
pub fn has_clique(i: &Instance, k: usize) -> bool {
    // Undirected adjacency.
    let mut adj: BTreeMap<Value, BTreeSet<Value>> = BTreeMap::new();
    for t in i.tuples("E") {
        if t[0] != t[1] {
            adj.entry(t[0].clone()).or_default().insert(t[1].clone());
            adj.entry(t[1].clone()).or_default().insert(t[0].clone());
        }
    }
    if k == 1 {
        return !i.adom().is_empty();
    }
    let vertices: Vec<Value> = adj
        .iter()
        .filter(|(_, n)| n.len() + 1 >= k)
        .map(|(v, _)| v.clone())
        .collect();
    let mut chosen: Vec<Value> = Vec::with_capacity(k);
    extend_clique(&adj, &vertices, 0, &mut chosen, k)
}

fn extend_clique(
    adj: &BTreeMap<Value, BTreeSet<Value>>,
    vertices: &[Value],
    start: usize,
    chosen: &mut Vec<Value>,
    k: usize,
) -> bool {
    if chosen.len() == k {
        return true;
    }
    for idx in start..vertices.len() {
        let v = &vertices[idx];
        // v must be adjacent to everything chosen.
        let ok = chosen.iter().all(|c| adj[v].contains(c));
        if !ok {
            continue;
        }
        chosen.push(v.clone());
        if extend_clique(adj, vertices, idx + 1, chosen, k) {
            return true;
        }
        chosen.pop();
    }
    false
}

impl Query for CliqueQuery {
    fn input_schema(&self) -> &Schema {
        &self.input
    }

    fn output_schema(&self) -> &Schema {
        &self.output
    }

    fn eval(&self, input: &Instance) -> Instance {
        let i = input.restrict(&self.input);
        if has_clique(&i, self.k) {
            Instance::new()
        } else {
            i
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::domain::is_domain_distinct;
    use calm_common::fact::fact;
    use calm_common::generator::{clique_from, edge, path, star_from};

    #[test]
    fn detects_cliques_ignoring_direction() {
        // One direction per pair still counts.
        let one_way = Instance::from_facts([edge(1, 2), edge(2, 3), edge(1, 3)]);
        assert!(has_clique(&one_way, 3));
        assert!(!has_clique(&one_way, 4));
        assert!(!has_clique(&path(5), 3));
        assert!(has_clique(&clique_from(0, 5), 5));
    }

    #[test]
    fn self_loops_do_not_make_cliques() {
        let loops = Instance::from_facts([edge(1, 1), edge(2, 2)]);
        assert!(!has_clique(&loops, 2));
    }

    #[test]
    fn outputs_edges_iff_no_clique() {
        let q = CliqueQuery::new(3);
        let p = path(3);
        assert_eq!(q.eval(&p), p);
        let c = clique_from(0, 3);
        assert!(q.eval(&c).is_empty());
    }

    #[test]
    fn paper_separation_argument_k4() {
        // Q^4_clique with i = 2: a 3-clique exists; extending it to a
        // 4-clique domain-distinctly needs a fresh centre with 3 edges.
        let i = clique_from(0, 3);
        let q = CliqueQuery::new(4);
        assert_eq!(q.eval(&i), i, "no 4-clique yet");
        // Any 2 domain-distinct facts cannot create a 4-clique...
        let j_small = Instance::from_facts([edge(10, 0), edge(10, 1)]);
        assert!(is_domain_distinct(&j_small, &i));
        assert_eq!(q.eval(&i.union(&j_small)), i.union(&j_small));
        // ...but a 3-edge star from a fresh centre does.
        let j_star = star_from(10, 0).union(&Instance::from_facts([
            edge(10, 0),
            edge(10, 1),
            edge(10, 2),
        ]));
        assert!(is_domain_distinct(&j_star, &i));
        assert!(q.eval(&i.union(&j_star)).is_empty(), "4-clique created");
    }

    #[test]
    fn ignores_other_relations() {
        let q = CliqueQuery::new(3);
        let mut i = path(2);
        i.insert(fact("X", [1]));
        let out = q.eval(&i);
        assert_eq!(out.relation_len("X"), 0);
        assert_eq!(out.relation_len("E"), 2);
    }
}
