//! Win-move — the flagship non-monotone query of the CALM refinement.
//!
//! `win(x) ← move(x, y), ¬win(y)` under the **well-founded semantics**:
//! the query outputs the positions that are certainly won. Zinn, Green and
//! Ludäscher showed win-move is coordination-free for domain-guided
//! distributions; this paper derives it from `win-move ∈ Mdisjoint` (via
//! the connected doubled program, Section 7) and `F2 = Mdisjoint`
//! (Theorem 4.4). Win-move is *not* in `Mdistinct`.

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::query::{FnQuery, Query};
use calm_common::schema::Schema;
use calm_common::value::Value;
use calm_datalog::WellFoundedQuery;
use std::collections::{BTreeMap, BTreeSet};

/// The win-move program source.
pub const WIN_MOVE_SRC: &str = "win(x) :- move(x,y), not win(y).";

/// Win-move as a well-founded-semantics query (true `win` facts).
pub fn win_move() -> WellFoundedQuery {
    WellFoundedQuery::parse("win-move", WIN_MOVE_SRC).expect("well-formed")
}

/// Native win-move via backward induction (the classical game-solving
/// algorithm): a position is LOST when all moves go to WON positions
/// (vacuously for sinks), WON when some move goes to a LOST position;
/// unresolved positions are drawn. Returns the WON positions — the same
/// answer as the WFS true facts.
pub fn win_move_native() -> impl Query {
    FnQuery::new(
        "win-move-native",
        Schema::from_pairs([("move", 2)]),
        Schema::from_pairs([("win", 1)]),
        |i: &Instance| {
            let mut succ: BTreeMap<Value, BTreeSet<Value>> = BTreeMap::new();
            let mut pred: BTreeMap<Value, BTreeSet<Value>> = BTreeMap::new();
            let mut positions: BTreeSet<Value> = BTreeSet::new();
            for t in i.tuples("move") {
                succ.entry(t[0].clone()).or_default().insert(t[1].clone());
                pred.entry(t[1].clone()).or_default().insert(t[0].clone());
                positions.insert(t[0].clone());
                positions.insert(t[1].clone());
            }
            let mut won: BTreeSet<Value> = BTreeSet::new();
            let mut lost: BTreeSet<Value> = BTreeSet::new();
            // Remaining out-degree towards undetermined positions.
            let mut remaining: BTreeMap<Value, usize> = positions
                .iter()
                .map(|p| (p.clone(), succ.get(p).map_or(0, BTreeSet::len)))
                .collect();
            // Seed: sinks are lost.
            let mut queue: Vec<(Value, bool)> = positions
                .iter()
                .filter(|p| remaining[*p] == 0)
                .map(|p| (p.clone(), false))
                .collect();
            for (p, _) in &queue {
                lost.insert(p.clone());
            }
            while let Some((p, p_won)) = queue.pop() {
                let Some(parents) = pred.get(&p) else {
                    continue;
                };
                for parent in parents {
                    if won.contains(parent) || lost.contains(parent) {
                        continue;
                    }
                    if !p_won {
                        // Parent can move to a lost position: parent won.
                        won.insert(parent.clone());
                        queue.push((parent.clone(), true));
                    } else {
                        // One more of parent's moves leads to a won
                        // position; if all do, parent is lost.
                        let r = remaining.get_mut(parent).expect("known position");
                        *r -= 1;
                        if *r == 0 {
                            lost.insert(parent.clone());
                            queue.push((parent.clone(), false));
                        }
                    }
                }
            }
            Instance::from_facts(won.into_iter().map(|p| fact("win", [p])))
        },
    )
}

/// The *drawn* positions: undefined in the well-founded model (neither
/// won nor lost — play can continue forever). Like win-move itself this
/// query is in `Mdisjoint` (disjoint subgames cannot resolve a draw) but
/// not in `Mdistinct` (a fresh escape edge can determine a drawn cycle).
pub fn win_move_drawn() -> impl Query {
    let program = calm_datalog::parse_program(WIN_MOVE_SRC).expect("well-formed");
    FnQuery::new(
        "win-move-drawn",
        Schema::from_pairs([("move", 2)]),
        Schema::from_pairs([("drawn", 1)]),
        move |i: &Instance| {
            let model = calm_datalog::well_founded_model(&program, i);
            Instance::from_facts(
                model
                    .undefined()
                    .tuples("win")
                    .map(|t| fact("drawn", [t[0].clone()])),
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::domain::{is_domain_disjoint, is_domain_distinct};
    use calm_common::generator::{chain_game, cycle_game, cycle_with_escape, mv, InstanceRng};

    #[test]
    fn wfs_and_native_agree_on_structured_games() {
        let q1 = win_move();
        let q2 = win_move_native();
        for game in [
            chain_game(0, 5),
            cycle_game(0, 3),
            cycle_game(0, 4),
            cycle_with_escape(0),
            Instance::new(),
        ] {
            assert_eq!(q1.eval(&game), q2.eval(&game), "on {game:?}");
        }
    }

    #[test]
    fn wfs_and_native_agree_on_random_games() {
        let q1 = win_move();
        let q2 = win_move_native();
        for seed in 0..10 {
            let game = InstanceRng::seeded(seed).move_graph(12, 3);
            assert_eq!(q1.eval(&game), q2.eval(&game), "seed {seed}");
        }
    }

    #[test]
    fn win_move_not_in_mdistinct() {
        // I: a single move a -> b; a is won (b is a sink).
        // J: one domain-distinct move b -> c; now b is won, a is lost.
        let q = win_move();
        let i = Instance::from_facts([mv(1, 2)]);
        let j = Instance::from_facts([mv(2, 3)]);
        assert!(is_domain_distinct(&j, &i));
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert!(before.contains(&fact("win", [1])));
        assert!(!after.contains(&fact("win", [1])));
        assert!(!before.is_subset(&after), "win-move ∉ Mdistinct");
    }

    #[test]
    fn win_move_survives_disjoint_additions() {
        // win-move ∈ Mdisjoint: disjoint subgames cannot change old
        // positions' status.
        let q = win_move();
        let i = chain_game(0, 4);
        let j = cycle_game(100, 3).union(&chain_game(200, 2));
        assert!(is_domain_disjoint(&j, &i));
        assert!(q.eval(&i).is_subset(&q.eval(&i.union(&j))));
    }

    #[test]
    fn drawn_positions_not_output() {
        let q = win_move();
        let out = q.eval(&cycle_game(0, 4));
        assert!(out.is_empty(), "drawn positions are not won");
    }

    #[test]
    fn drawn_query_identifies_cycles() {
        let q = win_move_drawn();
        let game = chain_game(0, 3).union(&cycle_game(100, 4));
        let out = q.eval(&game);
        assert_eq!(out.relation_len("drawn"), 4);
        assert!(out.contains(&fact("drawn", [100])));
        assert!(!out.contains(&fact("drawn", [0])));
    }

    #[test]
    fn drawn_query_not_in_mdistinct_but_disjoint_safe() {
        let q = win_move_drawn();
        // A 2-cycle is drawn; a fresh escape edge determines it.
        let i = Instance::from_facts([mv(1, 2), mv(2, 1)]);
        let j = Instance::from_facts([mv(2, 3)]);
        assert!(is_domain_distinct(&j, &i));
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert_eq!(before.relation_len("drawn"), 2);
        assert!(after.is_empty(), "escape determines the cycle");
        // Disjoint subgames leave old draws drawn.
        let far = cycle_game(500, 3);
        assert!(is_domain_disjoint(&far, &i));
        assert!(q.eval(&i).is_subset(&q.eval(&i.union(&far))));
    }
}
