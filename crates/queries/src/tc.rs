//! Transitive closure and friends — the monotone baseline queries.

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::query::{FnQuery, Query};
use calm_common::schema::Schema;
use calm_common::value::Value;
use calm_datalog::DatalogQuery;
use std::collections::{BTreeMap, BTreeSet};

/// The Datalog source of the transitive-closure query (positive Datalog —
/// in every class of Figure 2).
pub const TC_SRC: &str = "@output T.\n\
                          T(x,y) :- E(x,y).\n\
                          T(x,z) :- T(x,y), E(y,z).";

/// Transitive closure as a Datalog query (`T(x,y)` = path from `x` to `y`).
pub fn tc_datalog() -> DatalogQuery {
    DatalogQuery::parse("tc", TC_SRC).expect("TC_SRC is well-formed")
}

/// Native transitive closure (same query, no Datalog engine) — used to
/// cross-check the engine and as a fast oracle in big benchmarks.
pub fn tc_native() -> impl Query {
    FnQuery::new(
        "tc-native",
        Schema::from_pairs([("E", 2)]),
        Schema::from_pairs([("T", 2)]),
        |i: &Instance| {
            let mut succ: BTreeMap<Value, BTreeSet<Value>> = BTreeMap::new();
            for t in i.tuples("E") {
                succ.entry(t[0].clone()).or_default().insert(t[1].clone());
            }
            let mut out = Instance::new();
            // BFS from every source.
            for src in succ.keys() {
                let mut seen: BTreeSet<Value> = BTreeSet::new();
                let mut stack: Vec<Value> = vec![src.clone()];
                while let Some(cur) = stack.pop() {
                    if let Some(next) = succ.get(&cur) {
                        for n in next {
                            if seen.insert(n.clone()) {
                                stack.push(n.clone());
                            }
                        }
                    }
                }
                for dst in seen {
                    out.insert(fact("T", [src.clone(), dst]));
                }
            }
            out
        },
    )
}

/// The monotone-but-not-H query `O(x,y) ← E(x,y), x ≠ y` (`Datalog(≠)`,
/// separates `H` from `Hinj = M` in Lemma 3.2).
pub fn edges_neq() -> DatalogQuery {
    DatalogQuery::parse("edges-neq", "@output O.\nO(x,y) :- E(x,y), x != y.").expect("well-formed")
}

/// The SP-Datalog query `O(x,y) ← E(x,y), ¬E(x,x)`: edges whose source has
/// no self-loop. Non-monotone (adding `E(x,x)` retracts output) yet in
/// `SP-Datalog ⊆ Mdistinct` — the canonical `Mdistinct \ M` witness used
/// by experiment E8.
pub fn edges_without_source_loop() -> DatalogQuery {
    DatalogQuery::parse(
        "edges-no-source-loop",
        "@output O.\nO(x,y) :- E(x,y), not E(x,x).",
    )
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::generator::{cycle, path};

    #[test]
    fn datalog_and_native_tc_agree() {
        for input in [path(5), cycle(4), calm_common::generator::grid(3, 3)] {
            assert_eq!(tc_datalog().eval(&input), tc_native().eval(&input));
        }
    }

    #[test]
    fn edges_neq_drops_loops() {
        let i = Instance::from_facts([fact("E", [1, 1]), fact("E", [1, 2])]);
        let out = edges_neq().eval(&i);
        assert_eq!(out, Instance::from_facts([fact("O", [1, 2])]));
    }

    #[test]
    fn source_loop_suppresses_edges() {
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3]), fact("E", [2, 2])]);
        let out = edges_without_source_loop().eval(&i);
        assert!(out.contains(&fact("O", [1, 2])));
        assert!(!out.contains(&fact("O", [2, 3])));
    }

    #[test]
    fn source_loop_query_is_not_monotone() {
        let i = Instance::from_facts([fact("E", [1, 2])]);
        let j = Instance::from_facts([fact("E", [1, 1])]);
        let q = edges_without_source_loop();
        let before = q.eval(&i);
        let after = q.eval(&i.union(&j));
        assert!(!before.is_subset(&after), "output must shrink");
    }
}
