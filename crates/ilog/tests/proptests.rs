//! Property tests for ILOG¬: invention determinism, genericity of
//! invention-free programs, and safety-analysis/runtime agreement.

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_ilog::{eval_ilog, eval_ilog_query, is_weakly_safe, IlogProgram, Limits};
use proptest::prelude::*;

fn edge_instance() -> impl Strategy<Value = Instance> {
    prop::collection::vec((0..5i64, 0..5i64), 0..8)
        .prop_map(|pairs| Instance::from_facts(pairs.into_iter().map(|(a, b)| fact("E", [a, b]))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invention_is_deterministic(i in edge_instance()) {
        let p = IlogProgram::parse("Pair(*, x, y) :- E(x, y).").unwrap();
        let a = eval_ilog(&p, &i, Limits::default()).unwrap();
        let b = eval_ilog(&p, &i, Limits::default()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn one_invented_id_per_context(i in edge_instance()) {
        let p = IlogProgram::parse("Pair(*, x, y) :- E(x, y).").unwrap();
        let out = eval_ilog(&p, &i, Limits::default()).unwrap();
        prop_assert_eq!(out.relation_len("Pair"), i.relation_len("E"));
        let ids: std::collections::BTreeSet<_> =
            out.tuples("Pair").map(|t| t[0].clone()).collect();
        prop_assert_eq!(ids.len(), i.relation_len("E"));
    }

    #[test]
    fn weakly_safe_programs_never_leak(i in edge_instance()) {
        let sources = [
            "@output O.\nPair(*, x, y) :- E(x, y).\nO(x, y) :- Pair(p, x, y).",
            "@output O.\nTok(*, x) :- E(x, y).\nO(x) :- Tok(t, x).",
        ];
        for src in sources {
            let p = IlogProgram::parse(src).unwrap();
            prop_assert!(is_weakly_safe(&p));
            let out = eval_ilog_query(&p, &i, Limits::default()).unwrap();
            for f in out.facts() {
                prop_assert!(!f.has_invented_value());
            }
        }
    }

    #[test]
    fn invention_free_ilog_equals_datalog(i in edge_instance()) {
        let src = "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).";
        let p = IlogProgram::parse(src).unwrap();
        let via_ilog = eval_ilog_query(&p, &i, Limits::default()).unwrap();
        let via_datalog = calm_datalog::eval::eval_query(
            &calm_datalog::parse_program(src).unwrap(),
            &i,
        )
        .unwrap();
        prop_assert_eq!(via_ilog, via_datalog);
    }

    #[test]
    fn genericity_of_invention_outputs(i in edge_instance(), off in 1i64..50) {
        // Weakly safe programs are generic on their (base-value) outputs.
        let p = IlogProgram::parse(
            "@output O.\nPair(*, x, y) :- E(x, y).\nO(y, x) :- Pair(p, x, y).",
        )
        .unwrap();
        let pi = move |val: &calm_common::Value| match val {
            calm_common::Value::Int(k) => calm_common::v(k + off),
            other => other.clone(),
        };
        let out1 = eval_ilog_query(&p, &i, Limits::default()).unwrap().map_values(pi);
        let out2 = eval_ilog_query(&p, &i.map_values(pi), Limits::default()).unwrap();
        prop_assert_eq!(out1, out2);
    }
}
