//! Property tests for ILOG¬: invention determinism, genericity of
//! invention-free programs, and safety-analysis/runtime agreement.
//!
//! Deterministic seeded loops over [`calm_common::rng::Rng`].

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::rng::Rng;
use calm_ilog::{eval_ilog, eval_ilog_query, is_weakly_safe, IlogProgram, Limits};

const CASES: u64 = 48;

fn edge_instance(r: &mut Rng) -> Instance {
    let mut i = Instance::new();
    for _ in 0..r.gen_range(0..8usize) {
        i.insert(fact("E", [r.gen_range(0..5i64), r.gen_range(0..5i64)]));
    }
    i
}

#[test]
fn invention_is_deterministic() {
    for seed in 0..CASES {
        let i = edge_instance(&mut Rng::seed_from_u64(seed));
        let p = IlogProgram::parse("Pair(*, x, y) :- E(x, y).").unwrap();
        let a = eval_ilog(&p, &i, Limits::default()).unwrap();
        let b = eval_ilog(&p, &i, Limits::default()).unwrap();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn one_invented_id_per_context() {
    for seed in 0..CASES {
        let i = edge_instance(&mut Rng::seed_from_u64(seed));
        let p = IlogProgram::parse("Pair(*, x, y) :- E(x, y).").unwrap();
        let out = eval_ilog(&p, &i, Limits::default()).unwrap();
        assert_eq!(out.relation_len("Pair"), i.relation_len("E"), "seed {seed}");
        let ids: std::collections::BTreeSet<_> = out.tuples("Pair").map(|t| t[0].clone()).collect();
        assert_eq!(ids.len(), i.relation_len("E"), "seed {seed}");
    }
}

#[test]
fn weakly_safe_programs_never_leak() {
    for seed in 0..CASES {
        let i = edge_instance(&mut Rng::seed_from_u64(seed));
        let sources = [
            "@output O.\nPair(*, x, y) :- E(x, y).\nO(x, y) :- Pair(p, x, y).",
            "@output O.\nTok(*, x) :- E(x, y).\nO(x) :- Tok(t, x).",
        ];
        for src in sources {
            let p = IlogProgram::parse(src).unwrap();
            assert!(is_weakly_safe(&p), "seed {seed}");
            let out = eval_ilog_query(&p, &i, Limits::default()).unwrap();
            for f in out.facts() {
                assert!(!f.has_invented_value(), "seed {seed}: {f}");
            }
        }
    }
}

#[test]
fn invention_free_ilog_equals_datalog() {
    for seed in 0..CASES {
        let i = edge_instance(&mut Rng::seed_from_u64(seed));
        let src = "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).";
        let p = IlogProgram::parse(src).unwrap();
        let via_ilog = eval_ilog_query(&p, &i, Limits::default()).unwrap();
        let via_datalog =
            calm_datalog::eval::eval_query(&calm_datalog::parse_program(src).unwrap(), &i).unwrap();
        assert_eq!(via_ilog, via_datalog, "seed {seed}");
    }
}

#[test]
fn genericity_of_invention_outputs() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let i = edge_instance(&mut r);
        let off = r.gen_range(1..50i64);
        // Weakly safe programs are generic on their (base-value) outputs.
        let p =
            IlogProgram::parse("@output O.\nPair(*, x, y) :- E(x, y).\nO(y, x) :- Pair(p, x, y).")
                .unwrap();
        let pi = move |val: &calm_common::Value| match val {
            calm_common::Value::Int(k) => calm_common::v(k + off),
            other => other.clone(),
        };
        let out1 = eval_ilog_query(&p, &i, Limits::default())
            .unwrap()
            .map_values(pi);
        let out2 = eval_ilog_query(&p, &i.map_values(pi), Limits::default()).unwrap();
        assert_eq!(out1, out2, "seed {seed}");
    }
}
