//! [`IlogQuery`]: a weakly safe ILOG¬ program packaged as a
//! [`calm_common::query::Query`].

use crate::eval::{eval_ilog_query, Limits};
use crate::program::IlogProgram;
use crate::safety::is_weakly_safe;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::schema::Schema;

/// A query computed by a weakly safe ILOG¬ program. Divergence (possible
/// for non-terminating invention) yields the empty output together with a
/// panic in debug assertions — construct only terminating programs for
/// query use, or call [`crate::eval::eval_ilog_query`] directly to handle
/// divergence.
pub struct IlogQuery {
    name: String,
    program: IlogProgram,
    input_schema: Schema,
    output_schema: Schema,
    limits: Limits,
}

impl IlogQuery {
    /// Package a weakly safe program as a query.
    ///
    /// # Errors
    /// Returns an error message when the program is not weakly safe.
    pub fn new(name: impl Into<String>, program: IlogProgram) -> Result<Self, String> {
        if !is_weakly_safe(&program) {
            return Err("program is not weakly safe".to_string());
        }
        let input_schema = program.program().edb();
        let output_schema = program.program().output_schema();
        Ok(IlogQuery {
            name: name.into(),
            program,
            input_schema,
            output_schema,
            limits: Limits::default(),
        })
    }

    /// Parse and package in one step.
    ///
    /// # Errors
    /// Returns the parse/validation error message.
    pub fn parse(name: impl Into<String>, src: &str) -> Result<Self, String> {
        IlogQuery::new(name, IlogProgram::parse(src)?)
    }

    /// Override the divergence limits.
    #[must_use]
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &IlogProgram {
        &self.program
    }
}

impl Query for IlogQuery {
    fn input_schema(&self) -> &Schema {
        &self.input_schema
    }

    fn output_schema(&self) -> &Schema {
        &self.output_schema
    }

    fn eval(&self, input: &Instance) -> Instance {
        let restricted = input.restrict(&self.input_schema);
        match eval_ilog_query(&self.program, &restricted, self.limits) {
            Ok(out) => out,
            Err(e) => {
                debug_assert!(false, "ILOG query diverged: {e}");
                Instance::new()
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::generator::path;

    #[test]
    fn ilog_query_evaluates() {
        let q = IlogQuery::parse(
            "pairs",
            "@output O.\n\
             Pair(*, x, y) :- E(x, y).\n\
             O(x, y) :- Pair(p, x, y).",
        )
        .unwrap();
        let out = q.eval(&path(2));
        assert_eq!(out.relation_len("O"), 2);
        assert!(out.contains(&fact("O", [0, 1])));
        assert_eq!(q.name(), "pairs");
    }

    #[test]
    fn rejects_unsafe_program() {
        let e = IlogQuery::parse("bad", "@output R.\nR(*, x) :- V(x).");
        assert!(e.is_err());
    }
}
