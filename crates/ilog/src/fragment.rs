//! wILOG¬ fragments (Section 5.2 / Figure 2).
//!
//! * `wILOG(≠)` — weakly safe, negation restricted to inequalities —
//!   captures `M` (Cabibbo);
//! * `SP-wILOG` — weakly safe, negation restricted to edb predicates —
//!   captures `E = Mdistinct` (Cabibbo);
//! * `semicon-wILOG¬` — weakly safe, semi-connected stratified — captures
//!   `Mdisjoint` (Theorem 5.4).

use crate::program::IlogProgram;
use crate::safety::is_weakly_safe;
use calm_datalog::fragment::{is_rule_connected, is_semi_connected_program};

/// The wILOG¬ fragments a program inhabits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IlogFragmentReport {
    /// Weakly safe (prerequisite for all wILOG classes).
    pub weakly_safe: bool,
    /// Positive apart from inequalities (`wILOG(≠)` when weakly safe).
    pub positive_with_neq: bool,
    /// Semi-positive (`SP-wILOG` when weakly safe).
    pub semi_positive: bool,
    /// All rules connected (`con-wILOG¬` when weakly safe).
    pub connected: bool,
    /// Semi-connected (`semicon-wILOG¬` when weakly safe).
    pub semi_connected: bool,
}

impl IlogFragmentReport {
    /// `wILOG(≠)`: captures `M`.
    pub fn is_wilog_neq(&self) -> bool {
        self.weakly_safe && self.positive_with_neq
    }

    /// `SP-wILOG`: captures `E = Mdistinct`.
    pub fn is_sp_wilog(&self) -> bool {
        self.weakly_safe && self.semi_positive
    }

    /// `semicon-wILOG¬`: captures `Mdisjoint` (Theorem 5.4).
    pub fn is_semicon_wilog(&self) -> bool {
        self.weakly_safe && self.semi_connected
    }
}

/// Classify an ILOG¬ program.
pub fn classify_ilog(p: &IlogProgram) -> IlogFragmentReport {
    let prog = p.program();
    IlogFragmentReport {
        weakly_safe: is_weakly_safe(p),
        positive_with_neq: prog.is_positive(),
        semi_positive: prog.is_semi_positive(),
        connected: prog.rules().iter().all(is_rule_connected),
        semi_connected: is_semi_connected_program(prog),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_invention_is_wilog_neq() {
        let p = IlogProgram::parse(
            "@output O.\n\
             Pair(*, x, y) :- E(x, y).\n\
             O(x, y) :- Pair(p, x, y).",
        )
        .unwrap();
        let r = classify_ilog(&p);
        assert!(r.is_wilog_neq());
        assert!(r.is_sp_wilog());
        assert!(r.is_semicon_wilog());
    }

    #[test]
    fn sp_wilog_with_edb_negation() {
        let p = IlogProgram::parse(
            "@output O.\n\
             Tok(*, x) :- V(x), not E(x, x).\n\
             O(x) :- Tok(t, x).",
        )
        .unwrap();
        let r = classify_ilog(&p);
        assert!(!r.is_wilog_neq());
        assert!(r.is_sp_wilog());
    }

    #[test]
    fn semicon_wilog_with_idb_negation() {
        let p = IlogProgram::parse(
            "@output O.\n\
             T(x,y) :- E(x,y).\n\
             T(x,z) :- T(x,y), E(y,z).\n\
             O(x,y) :- Adom(x), Adom(y), not T(x,y).\n\
             Adom(x) :- E(x,y).\n\
             Adom(y) :- E(x,y).",
        )
        .unwrap();
        let r = classify_ilog(&p);
        assert!(!r.is_sp_wilog());
        assert!(r.is_semicon_wilog());
    }

    #[test]
    fn unsafe_program_excluded_from_all() {
        let p = IlogProgram::parse(
            "@output R.\n\
             R(*, x) :- V(x).",
        )
        .unwrap();
        let r = classify_ilog(&p);
        assert!(!r.weakly_safe);
        assert!(!r.is_wilog_neq());
        assert!(!r.is_sp_wilog());
        assert!(!r.is_semicon_wilog());
    }
}
