//! Herbrand-universe evaluation of ILOG¬ programs.
//!
//! Valuations are applied to the Skolemized rules: an invention head
//! `R(*, x1, ..., xk)` derives `R(f_R(v1, ..., vk), v1, ..., vk)` where
//! `f_R(v̄)` is a ground Skolem term ([`calm_common::value::Value::Skolem`]).
//! Strata are evaluated as fixpoints; when the fixpoint keeps inventing
//! deeper and deeper terms (the paper's "relations of infinite size"
//! case), evaluation reports divergence instead of running forever.

use crate::program::{invention_args, IlogProgram};
use calm_common::instance::Instance;
use calm_common::storage::EvalMetrics;
use calm_common::value::Value;
use calm_datalog::ast::Term;
use calm_datalog::eval::database::Database;
use calm_datalog::eval::seminaive::ValuationQuery;
use calm_obs::Obs;
use std::fmt;

/// Evaluation limits: ILOG¬ output is *undefined* when the Herbrand
/// fixpoint is infinite, which we detect by cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum Skolem-term nesting depth before declaring divergence.
    pub max_skolem_depth: usize,
    /// Maximum number of derived facts before declaring divergence.
    pub max_facts: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_skolem_depth: 16,
            max_facts: 1_000_000,
        }
    }
}

/// Divergence report: the program's output is undefined (Section 5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diverged {
    /// Which limit was hit.
    pub reason: String,
}

impl fmt::Display for Diverged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ILOG evaluation diverged: {}", self.reason)
    }
}

impl std::error::Error for Diverged {}

/// Evaluate an ILOG¬ program on an input, returning the full derived
/// instance (including invented values in auxiliary relations).
///
/// # Errors
/// Returns [`Diverged`] when the Herbrand fixpoint exceeds the limits.
pub fn eval_ilog(p: &IlogProgram, input: &Instance, limits: Limits) -> Result<Instance, Diverged> {
    eval_ilog_obs(p, input, limits, &Obs::noop())
}

/// As [`eval_ilog`], reporting per-stratum spans, per-rule valuation
/// spans, a valuation-batch histogram and invention counters to `obs`.
///
/// # Errors
/// Returns [`Diverged`] when the Herbrand fixpoint exceeds the limits.
pub fn eval_ilog_obs(
    p: &IlogProgram,
    input: &Instance,
    limits: Limits,
    obs: &Obs,
) -> Result<Instance, Diverged> {
    let mut db = Database::from_instance(input);
    let mut metrics = EvalMetrics::default();
    for (stratum_idx, stratum) in p.stratification().strata.iter().enumerate() {
        let _stratum_span = obs.span("ilog", || format!("stratum#{stratum_idx}"));
        // Each rule's body is compiled once per stratum; the fixpoint
        // loop below re-enumerates valuations against the grown database
        // without recompiling.
        let compiled: Vec<(&calm_datalog::ast::Rule, ValuationQuery)> = {
            let symbols = db.symbols().clone();
            let mut table = symbols.write();
            stratum
                .rules()
                .iter()
                .map(|rule| (rule, ValuationQuery::new(rule, &mut table)))
                .collect()
        };
        // Fixpoint over the stratum. Negation within a stratum is
        // semi-positive w.r.t. lower strata, so checking against the full
        // (frozen-per-iteration) database is the stratified semantics.
        let mut invented: u64 = 0;
        loop {
            let mut added = false;
            for (rule, query) in &compiled {
                let invention = rule.head.has_invention();
                let tail_terms: &[Term] = if invention {
                    invention_args(&rule.head)
                } else {
                    &rule.head.terms
                };
                let _rule_span =
                    obs.span("ilog.rule", || format!("valuations:{}", rule.head.relation));
                let rows = query.eval(&db, &mut metrics);
                if obs.enabled() {
                    obs.histogram("ilog", "valuations_per_rule", rows.len() as u64);
                }
                for row in rows {
                    let valuation = |var: &calm_datalog::ast::Var| -> Value {
                        let i = query
                            .vars()
                            .iter()
                            .position(|v| v == var)
                            .expect("head variable bound by body (safety)");
                        db.symbols().read().value(row[i]).clone()
                    };
                    let mut args: Vec<Value> = Vec::with_capacity(rule.head.arity());
                    let tail: Vec<Value> = tail_terms
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) => valuation(v),
                            Term::Const(c) => c.clone(),
                            Term::Invention => unreachable!("validated: single leading *"),
                        })
                        .collect();
                    if invention {
                        let skolem =
                            Value::skolem(IlogProgram::functor(&rule.head.relation), tail.clone());
                        if skolem.skolem_depth() > limits.max_skolem_depth {
                            return Err(Diverged {
                                reason: format!(
                                    "Skolem depth exceeded {} in relation {}",
                                    limits.max_skolem_depth, rule.head.relation
                                ),
                            });
                        }
                        args.push(skolem);
                    }
                    args.extend(tail);
                    if db.insert_values(&rule.head.relation, args) {
                        added = true;
                        if invention {
                            invented += 1;
                        }
                    }
                }
            }
            // O(1): the storage keeps a running fact counter.
            if db.len() > limits.max_facts {
                return Err(Diverged {
                    reason: format!("fact count exceeded {}", limits.max_facts),
                });
            }
            if !added {
                break;
            }
        }
        if invented > 0 {
            obs.counter("ilog", "invented_values", invented);
        }
    }
    obs.counter("eval", "derivations", metrics.derivations as u64);
    Ok(db.to_instance())
}

/// Evaluate and project onto the output schema, then verify *safety*: the
/// output of a safe program contains no invented values. Unsafe outputs
/// are reported as divergence-of-contract.
///
/// # Errors
/// Returns [`Diverged`] on divergence or on invented values escaping into
/// the output (an unsafe program).
pub fn eval_ilog_query(
    p: &IlogProgram,
    input: &Instance,
    limits: Limits,
) -> Result<Instance, Diverged> {
    let full = eval_ilog(p, input, limits)?;
    let out = full.restrict(&p.program().output_schema());
    for f in out.facts() {
        if f.has_invented_value() {
            return Err(Diverged {
                reason: format!("unsafe program: invented value in output fact {f}"),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;
    use calm_common::generator::path;

    #[test]
    fn invention_creates_distinct_witnesses() {
        // One invented value per edge.
        let p = IlogProgram::parse("R(*, x, y) :- E(x, y).").unwrap();
        let out = eval_ilog(&p, &path(3), Limits::default()).unwrap();
        assert_eq!(out.relation_len("R"), 3);
        // Invented values are pairwise distinct and distinct from input.
        let invented: std::collections::BTreeSet<_> =
            out.tuples("R").map(|t| t[0].clone()).collect();
        assert_eq!(invented.len(), 3);
        for v in &invented {
            assert!(v.is_invented());
        }
    }

    #[test]
    fn same_arguments_same_invention() {
        // Two rules inventing for the same relation with the same
        // arguments produce the same Skolem value (functional invention).
        let p = IlogProgram::parse(
            "R(*, x) :- E(x, y).\n\
             R(*, x) :- E(y, x).",
        )
        .unwrap();
        let input = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 1])]);
        let out = eval_ilog(&p, &input, Limits::default()).unwrap();
        // Values 1 and 2 each get exactly one invented id.
        assert_eq!(out.relation_len("R"), 2);
    }

    #[test]
    fn recursive_invention_diverges() {
        // Each invented value feeds back into the body: infinite fixpoint.
        let p = IlogProgram::parse(
            "S(x) :- E(x, y).\n\
             R(*, x) :- S(x).\n\
             S(r) :- R(r, x).",
        )
        .unwrap();
        let err = eval_ilog(&p, &path(1), Limits::default()).unwrap_err();
        assert!(err.reason.contains("Skolem depth"));
    }

    #[test]
    fn safe_program_query_output_clean() {
        // Invent ids internally but output only base values.
        let p = IlogProgram::parse(
            "@output O.\n\
             Pair(*, x, y) :- E(x, y).\n\
             O(x, y) :- Pair(p, x, y).",
        )
        .unwrap();
        let out = eval_ilog_query(&p, &path(2), Limits::default()).unwrap();
        assert_eq!(out.relation_len("O"), 2);
    }

    #[test]
    fn unsafe_output_detected() {
        let p = IlogProgram::parse(
            "@output R.\n\
             R(*, x, y) :- E(x, y).",
        )
        .unwrap();
        let err = eval_ilog_query(&p, &path(1), Limits::default()).unwrap_err();
        assert!(err.reason.contains("unsafe"));
    }

    #[test]
    fn stratified_negation_with_invention() {
        // Invent a token per vertex that has no outgoing edge.
        let p = IlogProgram::parse(
            "@output O.\n\
             HasOut(x) :- E(x, y).\n\
             Adom(x) :- E(x, y).\n\
             Adom(y) :- E(x, y).\n\
             Sink(*, x) :- Adom(x), not HasOut(x).\n\
             O(x) :- Sink(s, x).",
        )
        .unwrap();
        let out = eval_ilog_query(&p, &path(3), Limits::default()).unwrap();
        // Only vertex 3 is a sink.
        assert_eq!(out, Instance::from_facts([fact("O", [3])]));
    }

    #[test]
    fn invention_free_matches_datalog() {
        let src = "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).";
        let p = IlogProgram::parse(src).unwrap();
        let out = eval_ilog_query(&p, &path(4), Limits::default()).unwrap();
        let q = calm_datalog::DatalogQuery::parse("tc", src).unwrap();
        use calm_common::query::Query;
        assert_eq!(out, q.eval(&path(4)));
    }

    #[test]
    fn fact_limit_triggers() {
        let p = IlogProgram::parse(
            "S(x) :- E(x, y).\n\
             R(*, x) :- S(x).\n\
             S(r) :- R(r, x).",
        )
        .unwrap();
        let limits = Limits {
            max_skolem_depth: usize::MAX,
            max_facts: 50,
        };
        let err = eval_ilog(&p, &path(1), limits).unwrap_err();
        assert!(err.reason.contains("fact count"));
    }
}
