//! # calm-ilog
//!
//! ILOG¬ — stratified Datalog¬ with *value invention* (Hull & Yoshikawa;
//! Cabibbo), as used in Section 5.2 of the paper. Invention heads
//! `R(*, x̄)` derive fresh Herbrand values `f_R(x̄)`; evaluation runs over
//! the Herbrand universe with divergence detection. Weak safety (the
//! paper's syntactic guarantee that no invented value reaches the output)
//! and the wILOG¬ fragments of Figure 2 — `wILOG(≠)`, `SP-wILOG`,
//! `semicon-wILOG¬` — are implemented in [`safety`] and [`fragment`].

#![warn(missing_docs)]

pub mod eval;
pub mod fragment;
pub mod program;
pub mod query;
pub mod safety;

pub use eval::{eval_ilog, eval_ilog_obs, eval_ilog_query, Diverged, Limits};
pub use fragment::{classify_ilog, IlogFragmentReport};
pub use program::{IlogError, IlogProgram};
pub use query::IlogQuery;
pub use safety::{is_weakly_safe, unsafe_positions};
