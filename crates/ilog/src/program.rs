//! ILOG¬ programs: stratified Datalog¬ with value invention (Section 5.2).
//!
//! An *invention relation* has a distinguished first position (the
//! invention position); rules deriving it write the invention symbol `*`
//! there. Semantically, `*` is replaced by the Skolem term
//! `f_R(x1, ..., xk)` over the remaining head variables, and evaluation
//! proceeds over the Herbrand universe.

use calm_common::fact::RelName;
use calm_datalog::ast::{Atom, Rule, Term};
use calm_datalog::program::Program;
use calm_datalog::stratify::{stratify, Stratification};
use std::collections::BTreeSet;
use std::fmt;

/// A validated ILOG¬ program.
#[derive(Clone)]
pub struct IlogProgram {
    program: Program,
    invention_relations: BTreeSet<RelName>,
    stratification: Stratification,
}

/// Errors constructing an ILOG¬ program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IlogError {
    /// A head uses `*` somewhere other than (exactly once, in) the first
    /// position.
    MalformedInventionAtom(String),
    /// The invention symbol appears in a rule body.
    InventionInBody(String),
    /// A relation is derived both with and without invention.
    MixedInvention(String),
    /// The program is not syntactically stratifiable.
    NotStratifiable(String),
    /// Underlying Datalog well-formedness failure.
    Program(String),
}

impl fmt::Display for IlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlogError::MalformedInventionAtom(r) => {
                write!(f, "invention symbol must appear exactly once, first: {r}")
            }
            IlogError::InventionInBody(r) => {
                write!(f, "invention symbol may not appear in a body: {r}")
            }
            IlogError::MixedInvention(r) => {
                write!(f, "relation {r} is derived both with and without invention")
            }
            IlogError::NotStratifiable(r) => write!(f, "not stratifiable: {r}"),
            IlogError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IlogError {}

impl IlogProgram {
    /// Validate and wrap a program parsed with
    /// [`calm_datalog::parser::parse_ilog_program`].
    ///
    /// # Errors
    /// Returns an [`IlogError`] on malformed invention use or
    /// non-stratifiable negation.
    pub fn new(program: Program) -> Result<Self, IlogError> {
        let mut invention_relations = BTreeSet::new();
        let mut plain_heads = BTreeSet::new();
        for rule in program.rules() {
            for atom in rule.pos.iter().chain(rule.neg.iter()) {
                if atom.has_invention() {
                    return Err(IlogError::InventionInBody(rule.to_string()));
                }
            }
            if rule.head.has_invention() {
                if !rule.head.is_invention_atom() {
                    return Err(IlogError::MalformedInventionAtom(rule.to_string()));
                }
                invention_relations.insert(rule.head.relation.clone());
            } else {
                plain_heads.insert(rule.head.relation.clone());
            }
        }
        if let Some(mixed) = invention_relations.intersection(&plain_heads).next() {
            return Err(IlogError::MixedInvention(mixed.to_string()));
        }
        let stratification =
            stratify(&program).map_err(|e| IlogError::NotStratifiable(e.witness))?;
        Ok(IlogProgram {
            program,
            invention_relations,
            stratification,
        })
    }

    /// Parse ILOG¬ source text (the Datalog syntax plus `*` in heads).
    ///
    /// # Errors
    /// Returns the combined parse/validation error message.
    pub fn parse(src: &str) -> Result<Self, String> {
        let p = calm_datalog::parser::parse_ilog_program(src).map_err(|e| e.to_string())?;
        IlogProgram::new(p).map_err(|e| e.to_string())
    }

    /// The underlying rule set.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The invention relations.
    pub fn invention_relations(&self) -> &BTreeSet<RelName> {
        &self.invention_relations
    }

    /// The stratification (each stratum evaluated as a fixpoint over the
    /// Herbrand universe).
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// The Skolem functor name for an invention relation.
    pub fn functor(relation: &str) -> String {
        format!("f_{relation}")
    }

    /// The *Skolemization* of a rule: the invention symbol replaced by a
    /// marker constant is not expressible in first-order terms here, so we
    /// return the display form `R(f_R(x̄), x̄) ← body` used in docs/tests.
    pub fn skolemized_display(rule: &Rule) -> String {
        if !rule.head.has_invention() {
            return rule.to_string();
        }
        let rest: Vec<String> = rule.head.terms[1..].iter().map(|t| t.to_string()).collect();
        let head = format!(
            "{}({}({}),{})",
            rule.head.relation,
            Self::functor(&rule.head.relation),
            rest.join(","),
            rest.join(",")
        );
        let body = rule.to_string();
        let body = body.split_once(":-").map(|(_, b)| b.trim()).unwrap_or("");
        format!("{head} :- {body}")
    }

    /// Whether the program is plain Datalog¬ (no invention at all).
    pub fn is_invention_free(&self) -> bool {
        self.invention_relations.is_empty()
    }
}

/// Helper: the non-invention head terms of an invention rule (the Skolem
/// functor arguments `x1, ..., xk`).
pub fn invention_args(head: &Atom) -> &[Term] {
    debug_assert!(head.is_invention_atom());
    &head.terms[1..]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_simple_invention() {
        let p = IlogProgram::parse("R(*, x1, x2) :- E(x1, x2).").unwrap();
        assert_eq!(p.invention_relations().len(), 1);
        assert!(p.invention_relations().contains("R"));
        assert!(!p.is_invention_free());
    }

    #[test]
    fn rejects_invention_in_body() {
        let e = IlogProgram::parse("T(x) :- R(*, x).");
        assert!(e.is_err());
    }

    #[test]
    fn rejects_non_first_invention() {
        let p = calm_datalog::parser::parse_ilog_program("R(x, *) :- E(x, x).").unwrap();
        assert!(matches!(
            IlogProgram::new(p),
            Err(IlogError::MalformedInventionAtom(_))
        ));
    }

    #[test]
    fn rejects_mixed_invention() {
        let p = calm_datalog::parser::parse_ilog_program(
            "R(*, x) :- E(x, x).\n\
             R(x, x) :- E(x, x).",
        )
        .unwrap();
        assert!(matches!(
            IlogProgram::new(p),
            Err(IlogError::MixedInvention(_))
        ));
    }

    #[test]
    fn rejects_non_stratifiable() {
        let e = IlogProgram::parse("win(x) :- move(x,y), not win(y).");
        assert!(e.is_err());
    }

    #[test]
    fn skolemized_display_matches_paper() {
        let p = IlogProgram::parse("R(*, x1, x2) :- E(x1, x2).").unwrap();
        let s = IlogProgram::skolemized_display(&p.program().rules()[0]);
        assert_eq!(s, "R(f_R(x1,x2),x1,x2) :- E(x1,x2).");
    }

    #[test]
    fn plain_datalog_is_invention_free() {
        let p = IlogProgram::parse("T(x,y) :- E(x,y).").unwrap();
        assert!(p.is_invention_free());
    }
}
