//! Weak safety for ILOG¬ (Section 5.2).
//!
//! The set of *unsafe positions* is the smallest set `S` of pairs `(R, i)`
//! such that `(R, 1) ∈ S` for every invention relation `R`, and `S` is
//! closed under propagation through rules: if `(R, i) ∈ S` and a rule has
//! `R(x1, ..., xk)` as a positive body atom with `x_i` also appearing at
//! position `j` of the head atom `T(y1, ..., yl)`, then `(T, j) ∈ S`.
//! A program is *weakly safe* when its output relations contain no unsafe
//! positions. Weakly safe programs are always safe (no invented values in
//! the output).

use crate::program::IlogProgram;
use calm_common::fact::RelName;
use calm_datalog::ast::Term;
use std::collections::BTreeSet;

/// A position `(relation, index)`; indices are 1-based as in the paper.
pub type Position = (RelName, usize);

/// Compute the set of unsafe positions of a program.
pub fn unsafe_positions(p: &IlogProgram) -> BTreeSet<Position> {
    let mut s: BTreeSet<Position> = p
        .invention_relations()
        .iter()
        .map(|r| (r.clone(), 1usize))
        .collect();
    loop {
        let mut changed = false;
        for rule in p.program().rules() {
            // For every positive body atom with a variable at an unsafe
            // position, mark the head positions carrying that variable.
            for atom in &rule.pos {
                for (i, term) in atom.terms.iter().enumerate() {
                    let Term::Var(v) = term else { continue };
                    if !s.contains(&(atom.relation.clone(), i + 1)) {
                        continue;
                    }
                    for (j, ht) in rule.head.terms.iter().enumerate() {
                        if ht.as_var() == Some(v) {
                            let key = (rule.head.relation.clone(), j + 1);
                            if s.insert(key) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            return s;
        }
    }
}

/// Whether the program is weakly safe: no output relation has an unsafe
/// position.
pub fn is_weakly_safe(p: &IlogProgram) -> bool {
    let unsafe_set = unsafe_positions(p);
    let outputs = p.program().outputs();
    unsafe_set.iter().all(|(r, _)| !outputs.contains(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invention_position_is_unsafe() {
        let p = IlogProgram::parse("R(*, x) :- E(x, x).").unwrap();
        let s = unsafe_positions(&p);
        assert!(s.contains(&(calm_common::rel("R"), 1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unsafety_propagates_through_positive_bodies() {
        let p = IlogProgram::parse(
            "R(*, x) :- E(x, x).\n\
             T(r, x) :- R(r, x).\n\
             U(x, r) :- T(r, x).",
        )
        .unwrap();
        let s = unsafe_positions(&p);
        assert!(s.contains(&(calm_common::rel("T"), 1)));
        assert!(s.contains(&(calm_common::rel("U"), 2)));
        assert!(!s.contains(&(calm_common::rel("T"), 2)));
        assert!(!s.contains(&(calm_common::rel("U"), 1)));
    }

    #[test]
    fn weakly_safe_when_outputs_avoid_unsafe_positions() {
        let p = IlogProgram::parse(
            "@output O.\n\
             R(*, x, y) :- E(x, y).\n\
             O(x, y) :- R(r, x, y).",
        )
        .unwrap();
        assert!(is_weakly_safe(&p));
    }

    #[test]
    fn not_weakly_safe_when_invention_escapes() {
        let p = IlogProgram::parse(
            "@output O.\n\
             R(*, x) :- E(x, x).\n\
             O(r, x) :- R(r, x).",
        )
        .unwrap();
        assert!(!is_weakly_safe(&p));
        let s = unsafe_positions(&p);
        assert!(s.contains(&(calm_common::rel("O"), 1)));
    }

    #[test]
    fn weak_safety_implies_runtime_safety() {
        // A weakly safe program never emits invented values — check the
        // static judgement against the dynamic one.
        use crate::eval::{eval_ilog_query, Limits};
        let p = IlogProgram::parse(
            "@output O.\n\
             Pair(*, x, y) :- E(x, y).\n\
             Linked(p, q) :- Pair(p, x, y), Pair(q, y, z).\n\
             O(x, z) :- Pair(p, x, y), Pair(q, y, z), Linked(p, q).",
        )
        .unwrap();
        assert!(is_weakly_safe(&p));
        let out = eval_ilog_query(&p, &calm_common::generator::path(3), Limits::default());
        assert!(out.is_ok());
    }

    #[test]
    fn invention_free_program_fully_safe() {
        let p = IlogProgram::parse("T(x,y) :- E(x,y).").unwrap();
        assert!(unsafe_positions(&p).is_empty());
        assert!(is_weakly_safe(&p));
    }
}
