//! The always-on flight recorder: a bounded, overwrite-oldest ring of
//! recent observations that is cheap enough to leave enabled on every
//! run, and that dumps its contents to a JSONL post-mortem file when an
//! anomaly event fires — so a chaos failure produces an artifact showing
//! the events *leading up to* the failure instead of a bare counter.
//!
//! Anomaly triggers (the defaults; see [`FlightRecorder::with_triggers`]):
//!
//! * `net/retry_exhausted` — a link gave up retransmitting;
//! * `net/decode_failure` — a wire payload failed strict decoding;
//! * `net/crash` — a node crashed (each restore has a matching dump);
//! * `net/termination` with `quiescent=false` — the run ended without
//!   reaching quiescence.
//!
//! The ring is sharded (by display track for spans/events/gauges, by
//! name hash for counters/histograms) so concurrent workers rarely
//! contend on one lock; a global atomic sequence number restores total
//! arrival order when shards are merged at dump time. Records are
//! pre-rendered to their JSONL line on entry — the dump path then only
//! writes bytes, and dump files parse with the same tooling as
//! `--trace-out` logs.

use crate::json::escape_json;
use crate::{ArgValue, Sink};
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default total ring capacity (records), split across shards.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

const SHARDS: usize = 8;

/// An anomaly pattern that makes the recorder dump: an event category +
/// name, optionally refined by a boolean argument that must hold.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Event category to match (e.g. `"net"`).
    pub cat: String,
    /// Event name to match (e.g. `"retry_exhausted"`).
    pub name: String,
    /// When set, the event must carry this boolean argument with this
    /// value (e.g. `("quiescent", false)` on `net/termination`).
    pub arg_bool: Option<(String, bool)>,
}

impl Trigger {
    /// A trigger on every `cat/name` event.
    pub fn on(cat: &str, name: &str) -> Trigger {
        Trigger {
            cat: cat.to_string(),
            name: name.to_string(),
            arg_bool: None,
        }
    }

    /// A trigger on `cat/name` events whose `arg` boolean equals `value`.
    pub fn on_arg(cat: &str, name: &str, arg: &str, value: bool) -> Trigger {
        Trigger {
            cat: cat.to_string(),
            name: name.to_string(),
            arg_bool: Some((arg.to_string(), value)),
        }
    }

    fn matches(&self, cat: &str, name: &str, args: &[(&str, ArgValue)]) -> bool {
        if cat != self.cat || name != self.name {
            return false;
        }
        match &self.arg_bool {
            None => true,
            Some((arg, want)) => args
                .iter()
                .any(|(k, v)| k == arg && *v == ArgValue::Bool(*want)),
        }
    }
}

struct Shard {
    /// `(global_seq, pre-rendered JSONL line)`, oldest first.
    ring: VecDeque<(u64, String)>,
    /// Running totals for counters routed to this shard (a counter name
    /// always hashes to the same shard, so its total is shard-local).
    totals: std::collections::HashMap<String, u64>,
}

/// The flight-recorder sink. See the module docs for the model.
pub struct FlightRecorder {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    triggers: Vec<Trigger>,
    path: PathBuf,
    seq: AtomicU64,
    dumps: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with the default capacity and anomaly triggers,
    /// dumping to `path` (appending — one file collects every dump of a
    /// run).
    pub fn new(path: impl Into<PathBuf>) -> FlightRecorder {
        FlightRecorder::with_capacity(path, DEFAULT_FLIGHT_CAPACITY)
    }

    /// As [`FlightRecorder::new`] with an explicit total ring capacity.
    pub fn with_capacity(path: impl Into<PathBuf>, capacity: usize) -> FlightRecorder {
        let triggers = vec![
            Trigger::on("net", "retry_exhausted"),
            Trigger::on("net", "decode_failure"),
            Trigger::on("net", "crash"),
            Trigger::on("net", "worker_die"),
            Trigger::on("net", "worker_down"),
            Trigger::on("net", "worker_hung"),
            Trigger::on("net", "worker_killed"),
            Trigger::on_arg("net", "termination", "quiescent", false),
        ];
        FlightRecorder::with_triggers(path, capacity, triggers)
    }

    /// A recorder with explicit triggers (replacing the defaults).
    pub fn with_triggers(
        path: impl Into<PathBuf>,
        capacity: usize,
        triggers: Vec<Trigger>,
    ) -> FlightRecorder {
        FlightRecorder {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        ring: VecDeque::new(),
                        totals: std::collections::HashMap::new(),
                    })
                })
                .collect(),
            per_shard: (capacity / SHARDS).max(1),
            triggers,
            path: path.into(),
            seq: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
        }
    }

    /// How many anomaly dumps have been written so far.
    pub fn dump_count(&self) -> u64 {
        self.dumps.load(Ordering::SeqCst)
    }

    /// Where dumps are appended.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn push(&self, shard: usize, line: String) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut s = self.shards[shard % SHARDS].lock().expect("flight shard");
        if s.ring.len() >= self.per_shard {
            s.ring.pop_front();
        }
        s.ring.push_back((seq, line));
    }

    fn name_shard(name: &str) -> usize {
        // FNV-1a over the name bytes: stable, dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h as usize
    }

    /// Dump the ring to the post-mortem file now, regardless of
    /// triggers. Returns whether the write succeeded. The ring is *not*
    /// cleared: a later anomaly still sees this history.
    pub fn force_dump(&self, reason: &str) -> bool {
        let mut records: Vec<(u64, String)> = Vec::new();
        for shard in &self.shards {
            let s = shard.lock().expect("flight shard");
            records.extend(s.ring.iter().cloned());
        }
        records.sort_unstable_by_key(|(seq, _)| *seq);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path);
        let Ok(file) = file else {
            return false;
        };
        let mut w = std::io::BufWriter::new(file);
        let header = format!(
            "{{\"type\":\"flight_dump\",\"reason\":{},\"records\":{}}}",
            escape_json(reason),
            records.len()
        );
        let ok = writeln!(w, "{header}").is_ok()
            && records
                .iter()
                .all(|(_, line)| writeln!(w, "{line}").is_ok())
            && w.flush().is_ok();
        if ok {
            self.dumps.fetch_add(1, Ordering::SeqCst);
        }
        ok
    }
}

impl Sink for FlightRecorder {
    fn span(&self, cat: &str, name: &str, track: u32, start_us: u64, dur_us: u64) {
        self.push(
            track as usize,
            format!(
                "{{\"type\":\"span\",\"cat\":{},\"name\":{},\"track\":{track},\"ts_us\":{start_us},\"dur_us\":{dur_us}}}",
                escape_json(cat),
                escape_json(name)
            ),
        );
    }

    fn event(&self, cat: &str, name: &str, track: u32, ts_us: u64, args: &[(&str, ArgValue)]) {
        let mut body = String::from("{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&escape_json(k));
            body.push(':');
            body.push_str(&v.to_json());
        }
        body.push('}');
        self.push(
            track as usize,
            format!(
                "{{\"type\":\"event\",\"cat\":{},\"name\":{},\"track\":{track},\"ts_us\":{ts_us},\"args\":{body}}}",
                escape_json(cat),
                escape_json(name)
            ),
        );
        if self.triggers.iter().any(|t| t.matches(cat, name, args)) {
            self.force_dump(&format!("{cat}/{name}"));
        }
    }

    fn counter(&self, cat: &str, name: &str, ts_us: u64, delta: u64) {
        let key = format!("{cat}/{name}");
        let shard = Self::name_shard(&key);
        let total = {
            let mut s = self.shards[shard % SHARDS].lock().expect("flight shard");
            let t = s.totals.entry(key).or_insert(0);
            *t += delta;
            *t
        };
        self.push(
            shard,
            format!(
                "{{\"type\":\"counter\",\"cat\":{},\"name\":{},\"ts_us\":{ts_us},\"delta\":{delta},\"total\":{total}}}",
                escape_json(cat),
                escape_json(name)
            ),
        );
    }

    fn gauge(&self, cat: &str, name: &str, track: u32, ts_us: u64, value: u64) {
        self.push(
            track as usize,
            format!(
                "{{\"type\":\"gauge\",\"cat\":{},\"name\":{},\"track\":{track},\"ts_us\":{ts_us},\"value\":{value}}}",
                escape_json(cat),
                escape_json(name)
            ),
        );
    }

    fn histogram(&self, cat: &str, name: &str, value: u64) {
        let shard = Self::name_shard(name);
        self.push(
            shard,
            format!(
                "{{\"type\":\"histogram\",\"cat\":{},\"name\":{},\"value\":{value}}}",
                escape_json(cat),
                escape_json(name)
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_json;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("calm-flight-{tag}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn ring_overwrites_oldest() {
        let path = temp_path("ring");
        let fr = FlightRecorder::with_capacity(&path, SHARDS * 4);
        // All on track 0 → one shard of capacity 4.
        for i in 0..10u64 {
            fr.gauge("runtime", "queue_depth", 0, i, i);
        }
        assert!(fr.force_dump("test"));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Header + the 4 newest records.
        assert_eq!(lines.len(), 5, "{text}");
        assert!(lines[0].contains("\"type\":\"flight_dump\""));
        assert!(lines[1].contains("\"value\":6"));
        assert!(lines[4].contains("\"value\":9"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn anomaly_event_triggers_a_dump() {
        let path = temp_path("trigger");
        let fr = FlightRecorder::new(&path);
        fr.counter("net", "faults.dropped", 5, 1);
        assert_eq!(fr.dump_count(), 0);
        fr.event("net", "retry_exhausted", 1, 9, &[("dst", ArgValue::U64(3))]);
        assert_eq!(fr.dump_count(), 1);
        // A quiescent termination must NOT trigger; a failed one must.
        fr.event(
            "net",
            "termination",
            0,
            10,
            &[("quiescent", ArgValue::Bool(true))],
        );
        assert_eq!(fr.dump_count(), 1);
        fr.event(
            "net",
            "termination",
            0,
            11,
            &[("quiescent", ArgValue::Bool(false))],
        );
        assert_eq!(fr.dump_count(), 2);
        // Every dumped line parses as standalone JSON, and the anomaly
        // event itself is included in its own dump.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut saw_anomaly = false;
        for line in text.lines() {
            let v = parse_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            if v.get("name").and_then(|n| n.as_str()) == Some("retry_exhausted") {
                saw_anomaly = true;
            }
        }
        assert!(saw_anomaly, "dump contains the triggering event");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn counters_keep_running_totals_in_dumps() {
        let path = temp_path("totals");
        let fr = FlightRecorder::new(&path);
        fr.counter("net", "faults.attempts", 1, 2);
        fr.counter("net", "faults.attempts", 2, 3);
        assert!(fr.force_dump("test"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"delta\":3,\"total\":5"), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
