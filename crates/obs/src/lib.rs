//! # calm-obs
//!
//! The observability layer: structured run tracing and metrics for every
//! evaluation path in the workspace. §4.3 of the paper characterizes the
//! coordination-free strategies by *observable run behavior* — message
//! volume of the broadcast vs. fact-absence vs. per-value request/OK
//! protocols, heartbeats, quiescence — and this crate records exactly
//! those per-transition/per-message quantities.
//!
//! Dependency-free by design (like `calm_common::rng`): no `tracing`, no
//! `serde`. Four primitives are threaded through the engine, the
//! transducer runtime and the coordination strategies:
//!
//! * **spans** — named durations (per stratum, per rule, per iteration,
//!   per transition) with a `track` lane for per-node timelines; the
//!   data-parallel fixpoint driver adds an `eval.parallel` span around
//!   every partitioned round;
//! * **counters** — monotone totals (derivations, per-class message
//!   counts, and the `eval.parallel`/`partitions` count of jobs each
//!   partitioned round fanned out);
//! * **gauges** — sampled instantaneous values (per-node message-queue
//!   depth);
//! * **histograms** — fixed-bucket power-of-two distributions
//!   ([`Pow2Histogram`]) for latencies and batch sizes.
//!
//! Everything funnels through a [`Sink`]. The disabled path is an
//! [`Obs::noop`] handle whose every operation is a single `Option`
//! branch — no clock reads, no formatting, no allocation — so
//! instrumented hot loops stay within noise of uninstrumented ones.
//! Three concrete sinks ship here:
//!
//! * [`JsonlSink`] — one JSON object per line, machine-readable;
//! * [`ChromeTraceSink`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or Perfetto;
//! * [`ReportSink`] — an aggregating sink rendering a human-readable
//!   terminal run report.
//!
//! [`MultiSink`] fans one event stream out to several sinks.

#![warn(missing_docs)]

mod chrome;
mod flight;
mod histogram;
mod json;
mod jsonl;
mod report;
pub mod trace;

pub use chrome::ChromeTraceSink;
pub use flight::{FlightRecorder, Trigger, DEFAULT_FLIGHT_CAPACITY};
pub use histogram::Pow2Histogram;
pub use json::{escape_json, parse_json, JsonValue};
pub use jsonl::JsonlSink;
pub use report::ReportSink;

use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The one process-wide timestamp epoch. Every [`Obs`] handle measures
/// microseconds from this shared `Instant`, set on the first live handle
/// created in the process — so latency deltas computed *across* handles
/// (the sequential oracle vs a threaded run, or per-worker clones of one
/// handle on different threads) are on one timebase. A per-handle epoch
/// would make `deliver.ts - send.ts` meaningless whenever the two events
/// were stamped by handles created at different moments.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process-wide epoch (initializing it if this is
/// the first reading).
#[inline]
fn epoch_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A structured argument value attached to an [`Sink::event`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A list of strings (e.g. the facts newly output by a transition).
    List(Vec<String>),
}

impl ArgValue {
    /// Render as a JSON value fragment.
    pub fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::I64(v) => v.to_string(),
            ArgValue::Bool(b) => b.to_string(),
            ArgValue::Str(s) => escape_json(s),
            ArgValue::List(items) => {
                let mut out = String::from("[");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape_json(item));
                }
                out.push(']');
                out
            }
        }
    }
}

/// Where observations go. All methods take `&self`: sinks are shared
/// (`Arc`) across the layers of a run and use interior mutability.
///
/// `cat` is a coarse subsystem label (`"eval"`, `"runtime"`,
/// `"strategy"`, ...); `name` identifies the series or span; `track` is a
/// display lane (0 for the engine, one per network node in the
/// simulator); timestamps are microseconds since the process-wide epoch
/// shared by every [`Obs`] handle.
pub trait Sink: Send + Sync {
    /// A completed span: `name` ran on `track` from `start_us` for
    /// `dur_us` microseconds.
    fn span(&self, cat: &str, name: &str, track: u32, start_us: u64, dur_us: u64);

    /// A point-in-time structured event with arguments.
    fn event(&self, cat: &str, name: &str, track: u32, ts_us: u64, args: &[(&str, ArgValue)]);

    /// Increment the counter `cat/name` by `delta`.
    fn counter(&self, cat: &str, name: &str, ts_us: u64, delta: u64);

    /// Record an instantaneous sampled value for the gauge `cat/name`.
    fn gauge(&self, cat: &str, name: &str, track: u32, ts_us: u64, value: u64);

    /// Record one observation into the histogram `cat/name`.
    fn histogram(&self, cat: &str, name: &str, value: u64);

    /// Flush and close the sink (file sinks write their trailers here).
    /// Safe to call more than once.
    fn finish(&self) {}
}

struct ObsInner {
    sink: Arc<dyn Sink>,
}

/// The handle threaded through instrumented code: either a live sink or
/// a no-op. Cloning is cheap (an `Arc` bump); the no-op handle is a
/// `None` and every operation on it is one branch.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The disabled handle: every operation compiles to an `Option`
    /// check. This is what un-traced callers pass.
    pub fn noop() -> Obs {
        Obs { inner: None }
    }

    /// A live handle feeding `sink`. Timestamps are measured from the
    /// process-wide epoch shared by every handle (set when the first live
    /// handle in the process is created), so events recorded through
    /// different handles — or clones of one handle on different worker
    /// threads — are directly comparable.
    pub fn new(sink: Arc<dyn Sink>) -> Obs {
        EPOCH.get_or_init(Instant::now);
        Obs {
            inner: Some(Arc::new(ObsInner { sink })),
        }
    }

    /// Whether observations are being recorded. Callers computing
    /// expensive event payloads (e.g. per-transition output diffs) should
    /// guard on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the shared process-wide epoch (0 when
    /// disabled).
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(_) => epoch_us(),
            None => 0,
        }
    }

    /// Open a span on track 0. The name closure only runs when enabled.
    #[inline]
    pub fn span(&self, cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
        self.span_on(cat, 0, name)
    }

    /// Open a span on an explicit track. Ends (and reports) on drop.
    #[inline]
    pub fn span_on(
        &self,
        cat: &'static str,
        track: u32,
        name: impl FnOnce() -> String,
    ) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard {
                state: Some(SpanState {
                    inner: inner.clone(),
                    cat,
                    name: name(),
                    track,
                    start_us: epoch_us(),
                }),
            },
            None => SpanGuard { state: None },
        }
    }

    /// Emit a structured event. The args closure only runs when enabled.
    #[inline]
    pub fn event(
        &self,
        cat: &'static str,
        name: &str,
        track: u32,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let ts = epoch_us();
            inner.sink.event(cat, name, track, ts, &args());
        }
    }

    /// Increment a counter.
    #[inline]
    pub fn counter(&self, cat: &'static str, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let ts = epoch_us();
            inner.sink.counter(cat, name, ts, delta);
        }
    }

    /// Sample a gauge value.
    #[inline]
    pub fn gauge(&self, cat: &'static str, name: &str, track: u32, value: u64) {
        if let Some(inner) = &self.inner {
            let ts = epoch_us();
            inner.sink.gauge(cat, name, track, ts, value);
        }
    }

    /// Record a histogram observation.
    #[inline]
    pub fn histogram(&self, cat: &'static str, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.sink.histogram(cat, name, value);
        }
    }

    /// Finish the underlying sink (flush file trailers).
    pub fn finish(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.finish();
        }
    }
}

struct SpanState {
    inner: Arc<ObsInner>,
    cat: &'static str,
    name: String,
    track: u32,
    start_us: u64,
}

/// RAII guard returned by [`Obs::span`]: reports the completed span to
/// the sink when dropped. The disabled guard is a `None` and drops for
/// free.
pub struct SpanGuard {
    state: Option<SpanState>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            let end = epoch_us();
            s.inner
                .sink
                .span(s.cat, &s.name, s.track, s.start_us, end - s.start_us);
        }
    }
}

/// Fan-out sink: forwards every observation to each inner sink, so one
/// run can feed a JSONL log, a Chrome trace and a terminal report at
/// once.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl MultiSink {
    /// Combine sinks.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> MultiSink {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn span(&self, cat: &str, name: &str, track: u32, start_us: u64, dur_us: u64) {
        for s in &self.sinks {
            s.span(cat, name, track, start_us, dur_us);
        }
    }

    fn event(&self, cat: &str, name: &str, track: u32, ts_us: u64, args: &[(&str, ArgValue)]) {
        for s in &self.sinks {
            s.event(cat, name, track, ts_us, args);
        }
    }

    fn counter(&self, cat: &str, name: &str, ts_us: u64, delta: u64) {
        for s in &self.sinks {
            s.counter(cat, name, ts_us, delta);
        }
    }

    fn gauge(&self, cat: &str, name: &str, track: u32, ts_us: u64, value: u64) {
        for s in &self.sinks {
            s.gauge(cat, name, track, ts_us, value);
        }
    }

    fn histogram(&self, cat: &str, name: &str, value: u64) {
        for s in &self.sinks {
            s.histogram(cat, name, value);
        }
    }

    fn finish(&self) {
        for s in &self.sinks {
            s.finish();
        }
    }
}

/// A sink that drops everything. [`Obs::noop`] never reaches a sink at
/// all; this type exists for call sites that need a `dyn Sink` value
/// (e.g. filling a [`MultiSink`] slot conditionally).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn span(&self, _: &str, _: &str, _: u32, _: u64, _: u64) {}
    fn event(&self, _: &str, _: &str, _: u32, _: u64, _: &[(&str, ArgValue)]) {}
    fn counter(&self, _: &str, _: &str, _: u64, _: u64) {}
    fn gauge(&self, _: &str, _: &str, _: u32, _: u64, _: u64) {}
    fn histogram(&self, _: &str, _: &str, _: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Test sink recording everything it sees.
    #[derive(Default)]
    pub struct RecordingSink {
        pub lines: Mutex<Vec<String>>,
    }

    impl Sink for RecordingSink {
        fn span(&self, cat: &str, name: &str, track: u32, start_us: u64, dur_us: u64) {
            self.lines.lock().unwrap().push(format!(
                "span {cat}/{name} track={track} start={start_us} dur={dur_us}"
            ));
        }
        fn event(&self, cat: &str, name: &str, track: u32, _ts: u64, args: &[(&str, ArgValue)]) {
            self.lines.lock().unwrap().push(format!(
                "event {cat}/{name} track={track} args={}",
                args.len()
            ));
        }
        fn counter(&self, cat: &str, name: &str, _ts: u64, delta: u64) {
            self.lines
                .lock()
                .unwrap()
                .push(format!("counter {cat}/{name} +{delta}"));
        }
        fn gauge(&self, cat: &str, name: &str, track: u32, _ts: u64, value: u64) {
            self.lines
                .lock()
                .unwrap()
                .push(format!("gauge {cat}/{name} track={track} ={value}"));
        }
        fn histogram(&self, cat: &str, name: &str, value: u64) {
            self.lines
                .lock()
                .unwrap()
                .push(format!("histogram {cat}/{name} {value}"));
        }
    }

    #[test]
    fn noop_handle_runs_nothing() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        // The name/args closures must not run on the disabled handle.
        let _g = obs.span("eval", || panic!("name built on noop path"));
        obs.event("eval", "e", 0, || panic!("args built on noop path"));
        obs.counter("eval", "c", 1);
        obs.gauge("eval", "g", 0, 1);
        obs.histogram("eval", "h", 1);
        obs.finish();
    }

    #[test]
    fn live_handle_reports_all_primitives() {
        let sink = Arc::new(RecordingSink::default());
        let obs = Obs::new(sink.clone());
        assert!(obs.enabled());
        {
            let _g = obs.span("eval", || "fixpoint".into());
            obs.counter("eval", "derivations", 3);
            obs.gauge("runtime", "queue_depth", 2, 7);
            obs.histogram("runtime", "batch", 4);
            obs.event("runtime", "transition", 1, || {
                vec![("node", ArgValue::Str("n1".into()))]
            });
        }
        let lines = sink.lines.lock().unwrap();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().any(|l| l.starts_with("span eval/fixpoint")));
        assert!(lines.contains(&"counter eval/derivations +3".to_string()));
        assert!(lines.contains(&"gauge runtime/queue_depth track=2 =7".to_string()));
        assert!(lines.contains(&"histogram runtime/batch 4".to_string()));
        assert!(lines.contains(&"event runtime/transition track=1 args=1".to_string()));
    }

    #[test]
    fn span_guard_reports_on_drop_in_order() {
        let sink = Arc::new(RecordingSink::default());
        let obs = Obs::new(sink.clone());
        {
            let _outer = obs.span("a", || "outer".into());
            let _inner = obs.span("a", || "inner".into());
        }
        let lines = sink.lines.lock().unwrap();
        // Inner drops first.
        assert!(lines[0].contains("a/inner"));
        assert!(lines[1].contains("a/outer"));
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = Arc::new(RecordingSink::default());
        let b = Arc::new(RecordingSink::default());
        let multi = MultiSink::new(vec![a.clone(), b.clone(), Arc::new(NoopSink)]);
        let obs = Obs::new(Arc::new(multi));
        obs.counter("x", "c", 1);
        obs.finish();
        assert_eq!(a.lines.lock().unwrap().len(), 1);
        assert_eq!(b.lines.lock().unwrap().len(), 1);
    }

    #[test]
    fn argvalue_json_fragments() {
        assert_eq!(ArgValue::U64(3).to_json(), "3");
        assert_eq!(ArgValue::I64(-4).to_json(), "-4");
        assert_eq!(ArgValue::Bool(true).to_json(), "true");
        assert_eq!(ArgValue::Str("a\"b".into()).to_json(), "\"a\\\"b\"");
        assert_eq!(
            ArgValue::List(vec!["x".into(), "y".into()]).to_json(),
            "[\"x\",\"y\"]"
        );
    }

    #[test]
    fn timestamps_are_monotone() {
        let obs = Obs::new(Arc::new(RecordingSink::default()));
        let a = obs.now_us();
        let b = obs.now_us();
        assert!(b >= a);
        assert_eq!(Obs::noop().now_us(), 0);
    }

    #[test]
    fn handles_share_one_epoch() {
        // Two handles created at different moments must report
        // timestamps on the same timebase: a reading through the second
        // handle is never earlier than a prior reading through the
        // first. With per-handle epochs the later handle would restart
        // near zero.
        let first = Obs::new(Arc::new(RecordingSink::default()));
        let before = first.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let second = Obs::new(Arc::new(RecordingSink::default()));
        let after = second.now_us();
        assert!(
            after >= before + 1_000,
            "second handle must continue the shared clock: {before} then {after}"
        );
        // And readings interleave monotonically across handles.
        assert!(first.now_us() >= after);
    }
}
