//! Aggregating sink rendering a human-readable terminal run report:
//! counter totals, span time breakdowns, gauge high-water marks and
//! histogram summaries.

use crate::histogram::Pow2Histogram;
use crate::{ArgValue, Sink};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Default, Clone)]
struct SpanStat {
    count: u64,
    total_us: u64,
    max_us: u64,
}

#[derive(Default, Clone)]
struct GaugeStat {
    last: u64,
    max: u64,
    samples: u64,
}

#[derive(Default)]
struct ReportState {
    /// `cat/name` → total.
    counters: BTreeMap<String, u64>,
    /// `cat/name` → duration stats (summed across tracks).
    spans: BTreeMap<String, SpanStat>,
    /// `cat/name[track]` → last/max sample.
    gauges: BTreeMap<String, GaugeStat>,
    /// `cat/name` → distribution.
    histograms: BTreeMap<String, Pow2Histogram>,
    /// `cat/name` → occurrences (structured events, args dropped).
    events: BTreeMap<String, u64>,
}

/// A sink that keeps aggregates only — no per-event storage — and
/// renders them as an aligned plain-text report via [`ReportSink::render`].
#[derive(Default)]
pub struct ReportSink {
    state: Mutex<ReportState>,
}

impl ReportSink {
    /// An empty report.
    pub fn new() -> ReportSink {
        ReportSink::default()
    }

    /// The accumulated total of counter `cat/name` (0 if never seen).
    pub fn counter_total(&self, cat: &str, name: &str) -> u64 {
        let state = self.state.lock().expect("report state");
        state
            .counters
            .get(&format!("{cat}/{name}"))
            .copied()
            .unwrap_or(0)
    }

    /// The largest sample of gauge `cat/name` on `track` (0 if never seen).
    pub fn gauge_max(&self, cat: &str, name: &str, track: u32) -> u64 {
        let state = self.state.lock().expect("report state");
        state
            .gauges
            .get(&format!("{cat}/{name}[{track}]"))
            .map(|g| g.max)
            .unwrap_or(0)
    }

    /// Render the aggregates as a plain-text report.
    pub fn render(&self) -> String {
        let state = self.state.lock().expect("report state");
        let mut out = String::new();
        out.push_str("== run report ==\n");
        if !state.spans.is_empty() {
            out.push_str("spans (count, total, mean, max):\n");
            for (key, s) in &state.spans {
                let mean = if s.count == 0 {
                    0.0
                } else {
                    s.total_us as f64 / s.count as f64
                };
                out.push_str(&format!(
                    "  {key:<40} n={:<8} total={}us mean={:.1}us max={}us\n",
                    s.count, s.total_us, mean, s.max_us
                ));
            }
        }
        if !state.counters.is_empty() {
            out.push_str("counters:\n");
            for (key, total) in &state.counters {
                out.push_str(&format!("  {key:<40} {total}\n"));
            }
        }
        if !state.events.is_empty() {
            out.push_str("events:\n");
            for (key, n) in &state.events {
                out.push_str(&format!("  {key:<40} {n}\n"));
            }
        }
        if !state.gauges.is_empty() {
            out.push_str("gauges (last, max):\n");
            for (key, g) in &state.gauges {
                out.push_str(&format!(
                    "  {key:<40} last={} max={} samples={}\n",
                    g.last, g.max, g.samples
                ));
            }
        }
        if !state.histograms.is_empty() {
            out.push_str("histograms (count, mean, p50/p90/p99, max):\n");
            for (key, h) in &state.histograms {
                out.push_str(&format!(
                    "  {key:<40} n={} mean={:.1} p50={:.1} p90={:.1} p99={:.1} max={}\n",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.quantile(0.99),
                    h.max()
                ));
            }
        }
        out
    }
}

impl Sink for ReportSink {
    fn span(&self, cat: &str, name: &str, _track: u32, _start_us: u64, dur_us: u64) {
        let mut state = self.state.lock().expect("report state");
        let s = state.spans.entry(format!("{cat}/{name}")).or_default();
        s.count += 1;
        s.total_us += dur_us;
        s.max_us = s.max_us.max(dur_us);
    }

    fn event(&self, cat: &str, name: &str, _track: u32, _ts_us: u64, _args: &[(&str, ArgValue)]) {
        let mut state = self.state.lock().expect("report state");
        *state.events.entry(format!("{cat}/{name}")).or_default() += 1;
    }

    fn counter(&self, cat: &str, name: &str, _ts_us: u64, delta: u64) {
        let mut state = self.state.lock().expect("report state");
        *state.counters.entry(format!("{cat}/{name}")).or_default() += delta;
    }

    fn gauge(&self, cat: &str, name: &str, track: u32, _ts_us: u64, value: u64) {
        let mut state = self.state.lock().expect("report state");
        let g = state
            .gauges
            .entry(format!("{cat}/{name}[{track}]"))
            .or_default();
        g.last = value;
        g.max = g.max.max(value);
        g.samples += 1;
    }

    fn histogram(&self, cat: &str, name: &str, value: u64) {
        let mut state = self.state.lock().expect("report state");
        state
            .histograms
            .entry(format!("{cat}/{name}"))
            .or_default()
            .record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_counters_and_gauges() {
        let r = ReportSink::new();
        r.counter("strategy", "messages.fact", 0, 2);
        r.counter("strategy", "messages.fact", 1, 3);
        r.gauge("runtime", "queue_depth", 1, 0, 4);
        r.gauge("runtime", "queue_depth", 1, 1, 9);
        r.gauge("runtime", "queue_depth", 1, 2, 2);
        assert_eq!(r.counter_total("strategy", "messages.fact"), 5);
        assert_eq!(r.counter_total("strategy", "missing"), 0);
        assert_eq!(r.gauge_max("runtime", "queue_depth", 1), 9);
        assert_eq!(r.gauge_max("runtime", "queue_depth", 2), 0);
    }

    #[test]
    fn render_lists_every_section() {
        let r = ReportSink::new();
        r.span("eval", "fixpoint", 0, 0, 120);
        r.span("eval", "fixpoint", 0, 120, 80);
        r.counter("eval", "derivations", 0, 7);
        r.event("runtime", "transition", 0, 0, &[]);
        r.gauge("runtime", "queue_depth", 3, 0, 5);
        r.histogram("runtime", "batch", 4);
        let text = r.render();
        assert!(text.contains("eval/fixpoint"));
        assert!(text.contains("n=2"));
        assert!(text.contains("total=200us"));
        assert!(text.contains("max=120us"));
        assert!(text.contains("eval/derivations"));
        assert!(text.contains("runtime/transition"));
        assert!(text.contains("runtime/queue_depth[3]"));
        assert!(text.contains("max=5"));
        assert!(text.contains("runtime/batch"));
        // Histogram lines carry quantile estimates, not raw buckets.
        let hist_line = text
            .lines()
            .find(|l| l.contains("runtime/batch"))
            .expect("histogram line");
        assert!(
            hist_line.contains("p50="),
            "quantiles rendered: {hist_line}"
        );
        assert!(
            hist_line.contains("p99="),
            "quantiles rendered: {hist_line}"
        );
        assert!(!hist_line.contains('['), "no raw bucket dump: {hist_line}");
    }

    #[test]
    fn empty_report_renders_header_only() {
        let text = ReportSink::new().render();
        assert_eq!(text, "== run report ==\n");
    }
}
