//! Chrome trace-event JSON sink: the file loads directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>, giving a per-track
//! (per-node) timeline of the run.
//!
//! Format reference: the Trace Event Format's JSON array form. Spans are
//! `"ph":"X"` complete events, structured events are `"ph":"i"` instants,
//! counters and gauges are `"ph":"C"` counter samples. `pid` is always 0;
//! `tid` carries the [`Sink`] track, so Perfetto renders one lane per
//! node.

use crate::json::escape_json;
use crate::{ArgValue, Sink};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::sync::Mutex;

/// A sink writing a Chrome trace-event JSON array.
///
/// The stream is a valid JSON document only after [`Sink::finish`] writes
/// the closing bracket; callers going through [`crate::Obs::finish`] get
/// that for free.
pub struct ChromeTraceSink {
    out: Mutex<ChromeState>,
}

struct ChromeState {
    writer: BufWriter<Box<dyn Write + Send>>,
    /// Running totals per counter series — Chrome "C" events carry the
    /// current value, not a delta.
    totals: HashMap<String, u64>,
    any_written: bool,
    finished: bool,
}

impl ChromeTraceSink {
    /// Write to an arbitrary writer.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> ChromeTraceSink {
        ChromeTraceSink {
            out: Mutex::new(ChromeState {
                writer: BufWriter::new(writer),
                totals: HashMap::new(),
                any_written: false,
                finished: false,
            }),
        }
    }

    /// Create (truncate) a file at `path` and write to it.
    ///
    /// # Errors
    /// Propagates file-creation errors.
    pub fn create(path: &std::path::Path) -> std::io::Result<ChromeTraceSink> {
        let f = std::fs::File::create(path)?;
        Ok(ChromeTraceSink::to_writer(Box::new(f)))
    }

    /// Write one event object, handling the array syntax (`[` before the
    /// first event, `,` separators).
    fn write_record(&self, record: &str) {
        let mut state = self.out.lock().expect("chrome trace writer");
        if state.finished {
            return;
        }
        if state.any_written {
            let _ = writeln!(state.writer, ",\n{record}");
        } else {
            let _ = write!(state.writer, "[\n{record}");
            state.any_written = true;
        }
    }
}

fn args_json(args: &[(&str, ArgValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape_json(k));
        out.push(':');
        out.push_str(&v.to_json());
    }
    out.push('}');
    out
}

impl Sink for ChromeTraceSink {
    fn span(&self, cat: &str, name: &str, track: u32, start_us: u64, dur_us: u64) {
        self.write_record(&format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{track},\"cat\":{},\"name\":{},\"ts\":{start_us},\"dur\":{dur_us}}}",
            escape_json(cat),
            escape_json(name)
        ));
    }

    fn event(&self, cat: &str, name: &str, track: u32, ts_us: u64, args: &[(&str, ArgValue)]) {
        self.write_record(&format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{track},\"cat\":{},\"name\":{},\"ts\":{ts_us},\"args\":{}}}",
            escape_json(cat),
            escape_json(name),
            args_json(args)
        ));
    }

    fn counter(&self, cat: &str, name: &str, ts_us: u64, delta: u64) {
        let total = {
            let mut state = self.out.lock().expect("chrome trace writer");
            let key = format!("{cat}/{name}");
            let t = state.totals.entry(key).or_insert(0);
            *t += delta;
            *t
        };
        self.write_record(&format!(
            "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"cat\":{},\"name\":{},\"ts\":{ts_us},\"args\":{{\"value\":{total}}}}}",
            escape_json(cat),
            escape_json(name)
        ));
    }

    fn gauge(&self, cat: &str, name: &str, track: u32, ts_us: u64, value: u64) {
        // Gauges are absolute samples: emit the value directly, one
        // counter series per track so per-node queue depths stay apart.
        self.write_record(&format!(
            "{{\"ph\":\"C\",\"pid\":0,\"tid\":{track},\"cat\":{},\"name\":{},\"ts\":{ts_us},\"args\":{{\"value\":{value}}}}}",
            escape_json(cat),
            escape_json(&format!("{name}[{track}]"))
        ));
    }

    fn histogram(&self, _cat: &str, _name: &str, _value: u64) {
        // Distributions have no native Chrome-trace representation; the
        // JSONL and report sinks carry them.
    }

    fn finish(&self) {
        let mut state = self.out.lock().expect("chrome trace writer");
        if state.finished {
            return;
        }
        if state.any_written {
            let _ = writeln!(state.writer, "\n]");
        } else {
            let _ = writeln!(state.writer, "[]");
        }
        let _ = state.writer.flush();
        state.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn capture(f: impl FnOnce(&ChromeTraceSink)) -> String {
        let buf = SharedBuf::default();
        let sink = ChromeTraceSink::to_writer(Box::new(buf.clone()));
        f(&sink);
        sink.finish();
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(capture(|_| ()).trim(), "[]");
    }

    #[test]
    fn spans_become_complete_events() {
        let out = capture(|s| s.span("eval", "stratum#0", 0, 10, 25));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ts\":10"));
        assert!(out.contains("\"dur\":25"));
        assert!(out.trim().starts_with('['));
        assert!(out.trim().ends_with(']'));
    }

    #[test]
    fn counters_carry_running_totals() {
        let out = capture(|s| {
            s.counter("strategy", "messages.fact", 1, 2);
            s.counter("strategy", "messages.fact", 2, 3);
            s.counter("strategy", "messages.request", 3, 7);
        });
        assert!(out.contains("{\"value\":2}"));
        assert!(out.contains("{\"value\":5}"));
        assert!(out.contains("{\"value\":7}"));
    }

    #[test]
    fn gauges_are_per_track_series() {
        let out = capture(|s| {
            s.gauge("runtime", "queue_depth", 1, 5, 3);
            s.gauge("runtime", "queue_depth", 2, 6, 9);
        });
        assert!(out.contains("\"queue_depth[1]\""));
        assert!(out.contains("\"queue_depth[2]\""));
        assert!(out.contains("\"tid\":1"));
        assert!(out.contains("\"tid\":2"));
    }

    #[test]
    fn finish_is_idempotent_and_closes_the_array() {
        let buf = SharedBuf::default();
        let sink = ChromeTraceSink::to_writer(Box::new(buf.clone()));
        sink.span("a", "b", 0, 0, 1);
        sink.finish();
        sink.finish();
        // Events after finish are dropped, not appended past the `]`.
        sink.span("a", "late", 0, 2, 1);
        let out = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(out.matches('[').count(), 1);
        assert_eq!(out.matches(']').count(), 1);
        assert!(!out.contains("late"));
        assert!(out.trim().ends_with(']'));
    }

    #[test]
    fn records_are_comma_separated() {
        let out = capture(|s| {
            s.span("a", "x", 0, 0, 1);
            s.span("a", "y", 0, 1, 1);
        });
        // Two objects, one comma between them, inside one array.
        assert_eq!(out.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(out.matches("},\n{").count(), 1);
    }
}
