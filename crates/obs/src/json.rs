//! Minimal hand-rolled JSON: string escaping for the emitting sinks and
//! a small recursive-descent parser for the trace analyzer (the crate is
//! dependency-free; there is no `serde`).

use std::collections::BTreeMap;

/// Escape a string into a quoted JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Numbers are kept as `f64` — every number the
/// sinks emit (timestamps, counters, node ids) is well within the 2^53
/// exactly-representable range.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64` (truncating), if this is a
    /// non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one complete JSON document. Trailing non-whitespace input, or
/// any syntax error, yields `Err` with a byte offset and message.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not produced by our own
                        // emitter (it only \u-escapes control bytes);
                        // map unpaired surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // bytes are valid UTF-8).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_are_quoted() {
        assert_eq!(escape_json("abc"), "\"abc\"");
    }

    #[test]
    fn specials_are_escaped() {
        assert_eq!(escape_json("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape_json("x\ny\tz"), "\"x\\ny\\tz\"");
        assert_eq!(escape_json("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn unicode_passes_through() {
        assert_eq!(escape_json("π→∞"), "\"π→∞\"");
    }

    #[test]
    fn parser_reads_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse_json("-3.5e2").unwrap(), JsonValue::Num(-350.0));
        assert_eq!(
            parse_json("\"hi\"").unwrap(),
            JsonValue::Str("hi".to_string())
        );
    }

    #[test]
    fn parser_reads_structures() {
        let v = parse_json(r#"{"type":"event","ts_us":12,"args":{"ok":true,"xs":[1,2]}}"#).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("event"));
        assert_eq!(v.get("ts_us").and_then(JsonValue::as_u64), Some(12));
        let args = v.get("args").unwrap();
        assert_eq!(args.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            args.get("xs").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(parse_json("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse_json("{}").unwrap(), JsonValue::Obj(BTreeMap::new()));
    }

    #[test]
    fn parser_round_trips_our_own_escaping() {
        for s in ["plain", "a\"b\\c", "x\ny\tz", "\u{1}", "π→∞"] {
            let parsed = parse_json(&escape_json(s)).unwrap();
            assert_eq!(parsed, JsonValue::Str(s.to_string()), "round trip {s:?}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "", "{", "[1,", "\"open", "tru", "1 2", "{\"a\":}", "{a:1}", "nan",
        ] {
            assert!(parse_json(bad).is_err(), "must reject {bad:?}");
        }
    }
}
