//! Minimal hand-rolled JSON string escaping (the crate is
//! dependency-free; there is no `serde`).

/// Escape a string into a quoted JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_are_quoted() {
        assert_eq!(escape_json("abc"), "\"abc\"");
    }

    #[test]
    fn specials_are_escaped() {
        assert_eq!(escape_json("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape_json("x\ny\tz"), "\"x\\ny\\tz\"");
        assert_eq!(escape_json("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn unicode_passes_through() {
        assert_eq!(escape_json("π→∞"), "\"π→∞\"");
    }
}
