//! JSON Lines event log: one self-contained JSON object per line, in
//! arrival order — the machine-readable artifact behind `--trace-out`.

use crate::json::escape_json;
use crate::{ArgValue, Sink};
use std::io::{BufWriter, Write};
use std::sync::Mutex;

/// A sink writing one JSON object per observation, one per line.
///
/// Record shapes (all carry `"type"`, `"cat"`, `"name"`, `"ts_us"`):
///
/// ```text
/// {"type":"span","cat":"eval","name":"stratum#0","track":0,"ts_us":12,"dur_us":340}
/// {"type":"event","cat":"runtime","name":"transition","track":1,"ts_us":99,"args":{...}}
/// {"type":"counter","cat":"strategy","name":"messages.request","ts_us":10,"delta":2,"total":17}
/// {"type":"gauge","cat":"runtime","name":"queue_depth","track":2,"ts_us":40,"value":5}
/// {"type":"histogram","cat":"runtime","name":"delivered_batch","value":3}
/// ```
///
/// Counters also carry the running `total`, so the final line per counter
/// name is the run's total — consumers need not sum deltas.
pub struct JsonlSink {
    out: Mutex<JsonlState>,
}

struct JsonlState {
    writer: BufWriter<Box<dyn Write + Send>>,
    totals: std::collections::HashMap<String, u64>,
}

impl JsonlSink {
    /// Write to an arbitrary writer.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(JsonlState {
                writer: BufWriter::new(writer),
                totals: std::collections::HashMap::new(),
            }),
        }
    }

    /// Create (truncate) a file at `path` and write to it.
    ///
    /// # Errors
    /// Propagates file-creation errors.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::to_writer(Box::new(f)))
    }

    fn write_line(&self, line: &str) {
        let mut state = self.out.lock().expect("jsonl writer");
        let _ = writeln!(state.writer, "{line}");
    }
}

fn args_json(args: &[(&str, ArgValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape_json(k));
        out.push(':');
        out.push_str(&v.to_json());
    }
    out.push('}');
    out
}

impl Sink for JsonlSink {
    fn span(&self, cat: &str, name: &str, track: u32, start_us: u64, dur_us: u64) {
        self.write_line(&format!(
            "{{\"type\":\"span\",\"cat\":{},\"name\":{},\"track\":{track},\"ts_us\":{start_us},\"dur_us\":{dur_us}}}",
            escape_json(cat),
            escape_json(name)
        ));
    }

    fn event(&self, cat: &str, name: &str, track: u32, ts_us: u64, args: &[(&str, ArgValue)]) {
        self.write_line(&format!(
            "{{\"type\":\"event\",\"cat\":{},\"name\":{},\"track\":{track},\"ts_us\":{ts_us},\"args\":{}}}",
            escape_json(cat),
            escape_json(name),
            args_json(args)
        ));
    }

    fn counter(&self, cat: &str, name: &str, ts_us: u64, delta: u64) {
        let total = {
            let mut state = self.out.lock().expect("jsonl writer");
            let key = format!("{cat}/{name}");
            let t = state.totals.entry(key).or_insert(0);
            *t += delta;
            *t
        };
        self.write_line(&format!(
            "{{\"type\":\"counter\",\"cat\":{},\"name\":{},\"ts_us\":{ts_us},\"delta\":{delta},\"total\":{total}}}",
            escape_json(cat),
            escape_json(name)
        ));
    }

    fn gauge(&self, cat: &str, name: &str, track: u32, ts_us: u64, value: u64) {
        self.write_line(&format!(
            "{{\"type\":\"gauge\",\"cat\":{},\"name\":{},\"track\":{track},\"ts_us\":{ts_us},\"value\":{value}}}",
            escape_json(cat),
            escape_json(name)
        ));
    }

    fn histogram(&self, cat: &str, name: &str, value: u64) {
        self.write_line(&format!(
            "{{\"type\":\"histogram\",\"cat\":{},\"name\":{},\"value\":{value}}}",
            escape_json(cat),
            escape_json(name)
        ));
    }

    fn finish(&self) {
        let mut state = self.out.lock().expect("jsonl writer");
        let _ = state.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// An in-memory writer sharing its buffer with the test.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn capture(f: impl FnOnce(&JsonlSink)) -> Vec<String> {
        let buf = SharedBuf::default();
        let sink = JsonlSink::to_writer(Box::new(buf.clone()));
        f(&sink);
        sink.finish();
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn one_object_per_line_all_kinds() {
        let lines = capture(|s| {
            s.span("eval", "stratum#0", 0, 1, 2);
            s.event("runtime", "transition", 1, 3, &[("n", ArgValue::U64(4))]);
            s.counter("strategy", "messages.fact", 5, 2);
            s.counter("strategy", "messages.fact", 6, 3);
            s.gauge("runtime", "queue_depth", 2, 7, 9);
            s.histogram("runtime", "batch", 3);
        });
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(lines[1].contains("\"args\":{\"n\":4}"));
        // Running totals.
        assert!(lines[2].contains("\"delta\":2,\"total\":2"));
        assert!(lines[3].contains("\"delta\":3,\"total\":5"));
        assert!(lines[4].contains("\"value\":9"));
        assert!(lines[5].contains("\"type\":\"histogram\""));
    }

    #[test]
    fn lines_are_parseable_json_objects() {
        // A structural sanity check without a JSON parser: every line is
        // brace-balanced, starts with `{"type":` and ends with `}`.
        let lines = capture(|s| {
            s.event(
                "c\"at",
                "na\\me",
                0,
                1,
                &[("list", ArgValue::List(vec!["A(1,\"x\")".into()]))],
            );
            s.span("eval", "with \"quotes\"", 0, 0, 1);
        });
        for line in &lines {
            assert!(line.starts_with("{\"type\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
            let mut depth = 0i32;
            let mut in_str = false;
            let mut esc = false;
            for c in line.chars() {
                if esc {
                    esc = false;
                    continue;
                }
                match c {
                    '\\' if in_str => esc = true,
                    '"' => in_str = !in_str,
                    '{' | '[' if !in_str => depth += 1,
                    '}' | ']' if !in_str => depth -= 1,
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "unbalanced: {line}");
            assert!(!in_str, "unterminated string: {line}");
        }
    }
}
