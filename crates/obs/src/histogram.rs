//! Fixed-bucket power-of-two histograms: constant-size, allocation-free
//! once constructed, mergeable — the distribution primitive behind
//! latency and batch-size recording.

/// A histogram with 65 fixed buckets: bucket `i` (for `i < 64`) counts
/// values `v` with `floor(log2(v)) == i - 1` — i.e. bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7, and
/// so on. No configuration, no rescaling, O(1) record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pow2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Pow2Histogram {
    fn default() -> Self {
        Pow2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// The bucket index of a value: 0 for 0, `1 + floor(log2(v))` otherwise.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    match v {
        0 => 0,
        v => 1 + v.ilog2() as usize,
    }
}

/// The inclusive lower bound of a bucket.
fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

impl Pow2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Pow2Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The smallest bucket lower bound `b` such that at least `q` (in
    /// `[0, 1]`) of the observations are `< 2b` (i.e. fall in that bucket
    /// or below) — a power-of-two upper estimate of the `q`-quantile.
    /// Returns 0 when empty.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                // Upper edge of bucket i.
                return match i {
                    0 => 0,
                    i if i >= 64 => u64::MAX,
                    i => (1u64 << i) - 1,
                };
            }
        }
        self.max
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by locating the
    /// bucket holding the `ceil(q·n)`-th smallest observation and
    /// interpolating linearly within it under a uniform-within-bucket
    /// assumption. Exact whenever the bucket holds a single value
    /// (buckets 0 and 1, i.e. the values 0 and 1) and never off by more
    /// than the bucket width otherwise; the estimate is clamped to
    /// [`Pow2Histogram::max`] so a sparse top bucket cannot overshoot
    /// the data. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = bucket_lo(i) as f64;
                // Exclusive upper edge; bucket 0 holds only the value 0.
                let hi = match i {
                    0 => 1.0,
                    i if i >= 63 => self.max as f64 + 1.0,
                    i => (1u64 << i) as f64,
                };
                // How far into this bucket's occupants the target rank
                // falls, in (0, 1].
                let frac = (target - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                return est.min(self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Accumulate another histogram into this one.
    pub fn merge(&mut self, other: &Pow2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), c))
            .collect()
    }

    /// Render a compact one-line distribution: `lo:count` pairs.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .nonzero_buckets()
            .iter()
            .map(|(lo, c)| format!("{lo}:{c}"))
            .collect();
        format!(
            "n={} mean={:.1} max={} [{}]",
            self.count,
            self.mean(),
            self.max,
            parts.join(" ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn record_tracks_aggregates() {
        let mut h = Pow2Histogram::new();
        for v in [0, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 110.0 / 6.0).abs() < 1e-9);
        // 0 → bucket 0; 1 → b1; 2,3 → b2; 4 → b3; 100 → b7 ([64,128)).
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (4, 1), (64, 1)]
        );
    }

    #[test]
    fn merge_is_addition() {
        let mut a = Pow2Histogram::new();
        let mut b = Pow2Histogram::new();
        a.record(1);
        a.record(8);
        b.record(8);
        b.record(300);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum(), 317);
        assert_eq!(merged.max(), 300);
        // Merging in the other order gives the same histogram.
        let mut merged2 = b.clone();
        merged2.merge(&a);
        assert_eq!(merged, merged2);
    }

    #[test]
    fn quantile_bounds() {
        let mut h = Pow2Histogram::new();
        for _ in 0..90 {
            h.record(3);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        // Median lands in the [2,4) bucket → upper edge 3.
        assert_eq!(h.quantile_bound(0.5), 3);
        // p99 lands in the [512,1024) bucket → upper edge 1023.
        assert_eq!(h.quantile_bound(0.99), 1023);
        assert_eq!(Pow2Histogram::new().quantile_bound(0.5), 0);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Pow2Histogram::new();
        for _ in 0..90 {
            h.record(3);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        // Median falls in the [2,4) bucket; p99 in [512,1024), clamped
        // to the observed max.
        let p50 = h.quantile(0.5);
        assert!((2.0..4.0).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((512.0..=1000.0).contains(&p99), "p99={p99}");
        // q=1.0 is the max exactly (clamp).
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn quantile_on_single_value_buckets() {
        // Buckets 0 and 1 hold exactly one value each (0 and 1): low
        // ranks interpolate inside [0,1), high ranks clamp to the max.
        let mut h = Pow2Histogram::new();
        for _ in 0..4 {
            h.record(0);
        }
        for _ in 0..4 {
            h.record(1);
        }
        assert!(h.quantile(0.1) < 1.0, "rank 1 of 8 is a zero");
        assert!(h.quantile(0.25) <= 1.0);
        assert_eq!(h.quantile(1.0), 1.0, "top rank is the max");
    }

    #[test]
    fn quantile_at_bucket_boundaries() {
        // 4 values exactly on a bucket's lower edge: every quantile is
        // inside [lo, hi) of that bucket and never exceeds max.
        let mut h = Pow2Histogram::new();
        for _ in 0..4 {
            h.record(8); // bucket [8,16)
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!((8.0..=8.0).contains(&est), "q={q} est={est}");
        }
        // Empty histogram: 0.
        assert_eq!(Pow2Histogram::new().quantile(0.5), 0.0);
        // Quantile estimates are monotone in q.
        let mut m = Pow2Histogram::new();
        for v in [1u64, 2, 4, 9, 17, 80, 300, 5000] {
            m.record(v);
        }
        let mut prev = 0.0;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0] {
            let est = m.quantile(q);
            assert!(est >= prev, "monotone at q={q}");
            assert!(est <= m.max() as f64);
            prev = est;
        }
    }

    #[test]
    fn render_is_compact() {
        let mut h = Pow2Histogram::new();
        h.record(2);
        h.record(3);
        let s = h.render();
        assert!(s.contains("n=2"));
        assert!(s.contains("2:2"));
    }
}
