//! Post-mortem trace analysis: rebuild the happens-before message graph
//! from a JSONL event log and report on it.
//!
//! The executor and reliability substrate stamp every minted message
//! batch with a `(origin_node, origin_seq)` id and the id of the
//! delivery that causally triggered it, and emit `trace/*` events
//! carrying those ids (see `calm-net`). This module ingests the JSONL
//! log (written by `JsonlSink` or a `FlightRecorder` dump), checks the
//! causal invariants, and derives:
//!
//! * **per-link latency percentiles** — `deliver.ts − send.ts` for every
//!   delivered copy, bucketed per `(origin → dst)` link through
//!   [`Pow2Histogram::quantile`];
//! * **retransmit-gap percentiles** — the spacing of retransmissions per
//!   link, the observable face of the backoff policy;
//! * **the critical path** — walking the latest delivery back through
//!   `send → cause → send → …` to a root send triggered by input
//!   distribution alone;
//! * **per-node queue-depth timelines** from `runtime/queue_depth`
//!   gauges;
//! * **per-message-class fan-out** from the class counts stamped on
//!   send events.
//!
//! Invariants checked (violations fail `calm trace report`):
//!
//! 1. every `deliver` (and `dedup`) id has a matching `send`;
//! 2. every `retransmit` with a known id links to a matching `send`;
//! 3. the causal graph (edges `cause → id`) is acyclic;
//! 4. causes precede effects: a send's cause id was minted by an
//!    earlier send (`cause.seq < id.seq` when same origin, and the
//!    cause's send event exists).

use crate::histogram::Pow2Histogram;
use crate::json::{parse_json, JsonValue};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;

/// A message id: `(origin_node, origin_seq)`. Minted once per sent
/// batch by the origin node; retransmitted copies carry the same id.
pub type MsgId = (u64, u64);

#[derive(Debug, Clone)]
struct SendEv {
    ts: u64,
    id: MsgId,
    cause: Option<MsgId>,
    fanout: u64,
    classes: Vec<(String, u64)>,
}

#[derive(Debug, Clone)]
struct DeliverEv {
    ts: u64,
    id: MsgId,
    dst: u64,
}

/// Aggregates for one directed link `origin → dst`.
#[derive(Debug, Default, Clone)]
pub struct LinkStats {
    /// Delivered copies over this link.
    pub deliveries: u64,
    /// Latency from the original send to each delivery, µs.
    pub latency_us: Pow2Histogram,
    /// Retransmitted copies on this link (reliability substrate only).
    pub retransmits: u64,
    /// Gaps between successive (re)transmissions of one wire seq, µs.
    pub gap_us: Pow2Histogram,
    /// Copies dropped by the fault plan on this link.
    pub drops: u64,
    /// Copies suppressed by receiver dedup on this link.
    pub dedups: u64,
}

/// One hop of the critical path, newest first.
#[derive(Debug, Clone)]
pub struct PathHop {
    /// The message id of this hop.
    pub id: MsgId,
    /// When the batch was sent, µs.
    pub sent_us: u64,
    /// When it was (last) delivered, µs — `None` when the walk reached
    /// a send whose delivery is not in the log.
    pub delivered_us: Option<u64>,
    /// The delivering destination node, when known.
    pub dst: Option<u64>,
}

/// Fan-out aggregates for one message class.
#[derive(Debug, Default, Clone)]
pub struct ClassStats {
    /// Send batches containing at least one fact of this class.
    pub sends: u64,
    /// Total destination copies of those batches.
    pub fanout: u64,
    /// Total facts of the class across those batches (per copy).
    pub facts: u64,
}

/// The analysis of one JSONL trace. Build with [`analyze_lines`] or
/// [`analyze_file`], inspect programmatically or render with
/// [`TraceAnalysis::render_human`] / [`TraceAnalysis::render_json`].
#[derive(Debug, Default)]
pub struct TraceAnalysis {
    /// Lines that failed to parse as JSON (count only; the analyzer is
    /// lenient to truncated final lines from killed runs).
    pub unparsed_lines: u64,
    /// Event counts by trace kind.
    pub sends: u64,
    /// Delivered copies.
    pub deliveries: u64,
    /// Retransmitted copies.
    pub retransmits: u64,
    /// Dropped copies.
    pub drops: u64,
    /// Dedup-suppressed copies.
    pub dedups: u64,
    /// Wire decode failures.
    pub decode_failures: u64,
    /// Flight-recorder dump headers seen in the log.
    pub flight_dumps: u64,
    /// Invariant violations (empty = the causal graph checks out).
    pub violations: Vec<String>,
    /// Per-link aggregates, keyed `(origin, dst)`.
    pub links: BTreeMap<(u64, u64), LinkStats>,
    /// The critical path, walked back from the latest delivery
    /// (newest hop first).
    pub critical_path: Vec<PathHop>,
    /// Per-node queue-depth samples `(ts_us, depth)`, keyed by node
    /// index (display track − 1).
    pub queue_depth: BTreeMap<u64, Vec<(u64, u64)>>,
    /// Per-message-class fan-out.
    pub classes: BTreeMap<String, ClassStats>,
}

fn arg_u64(args: &JsonValue, key: &str) -> Option<u64> {
    args.get(key).and_then(JsonValue::as_u64)
}

fn id_of(args: &JsonValue) -> Option<MsgId> {
    Some((arg_u64(args, "origin")?, arg_u64(args, "seq")?))
}

/// Analyze a JSONL trace given as lines. Unparseable lines are counted
/// in [`TraceAnalysis::unparsed_lines`] rather than failing the whole
/// report (a killed run may leave a torn final line); an input with *no*
/// parseable trace content still produces an (empty) analysis.
pub fn analyze_lines<'a>(lines: impl Iterator<Item = &'a str>) -> TraceAnalysis {
    let mut a = TraceAnalysis::default();
    let mut sends: HashMap<MsgId, SendEv> = HashMap::new();
    let mut delivers: Vec<DeliverEv> = Vec::new();
    // Per (src, dst, link_seq): timestamps of transmissions, for gaps.
    let mut link_txs: HashMap<(u64, u64, u64), Vec<u64>> = HashMap::new();
    let mut retransmit_ids: Vec<(MsgId, u64, u64)> = Vec::new();

    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(rec) = parse_json(line) else {
            a.unparsed_lines += 1;
            continue;
        };
        let ty = rec.get("type").and_then(JsonValue::as_str).unwrap_or("");
        if ty == "flight_dump" {
            a.flight_dumps += 1;
            continue;
        }
        let cat = rec.get("cat").and_then(JsonValue::as_str).unwrap_or("");
        let name = rec.get("name").and_then(JsonValue::as_str).unwrap_or("");
        let ts = rec.get("ts_us").and_then(JsonValue::as_u64).unwrap_or(0);
        match (ty, cat, name) {
            ("gauge", "runtime", "queue_depth") => {
                let track = rec.get("track").and_then(JsonValue::as_u64).unwrap_or(0);
                let value = rec.get("value").and_then(JsonValue::as_u64).unwrap_or(0);
                if track > 0 {
                    a.queue_depth
                        .entry(track - 1)
                        .or_default()
                        .push((ts, value));
                }
            }
            ("event", "net", "decode_failure") => a.decode_failures += 1,
            ("event", "trace", _) => {
                let empty = JsonValue::Obj(Default::default());
                let args = rec.get("args").unwrap_or(&empty);
                match name {
                    "send" => {
                        let Some(id) = id_of(args) else { continue };
                        let cause =
                            match (arg_u64(args, "cause_origin"), arg_u64(args, "cause_seq")) {
                                (Some(o), Some(s)) => Some((o, s)),
                                _ => None,
                            };
                        let mut classes = Vec::new();
                        if let JsonValue::Obj(m) = args {
                            for (k, v) in m {
                                if let Some(rest) = k.strip_prefix("class.") {
                                    if let Some(n) = v.as_u64() {
                                        classes.push((rest.to_string(), n));
                                    }
                                }
                            }
                        }
                        a.sends += 1;
                        sends.insert(
                            id,
                            SendEv {
                                ts,
                                id,
                                cause,
                                fanout: arg_u64(args, "fanout").unwrap_or(0),
                                classes,
                            },
                        );
                    }
                    "deliver" => {
                        let Some(id) = id_of(args) else { continue };
                        let dst = arg_u64(args, "dst").unwrap_or(0);
                        a.deliveries += 1;
                        delivers.push(DeliverEv { ts, id, dst });
                    }
                    "retransmit" => {
                        a.retransmits += 1;
                        let src = arg_u64(args, "src").unwrap_or(0);
                        let dst = arg_u64(args, "dst").unwrap_or(0);
                        let link_seq = arg_u64(args, "link_seq").unwrap_or(0);
                        link_txs.entry((src, dst, link_seq)).or_default().push(ts);
                        if let Some(id) = id_of(args) {
                            retransmit_ids.push((id, src, dst));
                        }
                        a.links.entry((src, dst)).or_default().retransmits += 1;
                    }
                    "drop" => {
                        a.drops += 1;
                        let src = arg_u64(args, "src").unwrap_or(0);
                        let dst = arg_u64(args, "dst").unwrap_or(0);
                        a.links.entry((src, dst)).or_default().drops += 1;
                    }
                    "dedup" => {
                        a.dedups += 1;
                        let src = arg_u64(args, "src").unwrap_or(0);
                        let dst = arg_u64(args, "dst").unwrap_or(0);
                        a.links.entry((src, dst)).or_default().dedups += 1;
                        if let Some(id) = id_of(args) {
                            if !sends.contains_key(&id) {
                                a.violations.push(format!(
                                    "dedup of ({},{}) has no matching send",
                                    id.0, id.1
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    // Invariant 1: every delivery traces to its send; per-link latency.
    for d in &delivers {
        match sends.get(&d.id) {
            Some(s) => {
                let link = a.links.entry((s.id.0, d.dst)).or_default();
                link.deliveries += 1;
                link.latency_us.record(d.ts.saturating_sub(s.ts));
            }
            None => a.violations.push(format!(
                "deliver of ({},{}) at node {} has no matching send",
                d.id.0, d.id.1, d.dst
            )),
        }
    }

    // Invariant 2: every retransmit with a known id links to a send.
    for (id, src, dst) in &retransmit_ids {
        if !sends.contains_key(id) {
            a.violations.push(format!(
                "retransmit of ({},{}) on link {src}->{dst} has no matching send",
                id.0, id.1
            ));
        }
    }

    // Retransmit gaps: spacing of transmissions per wire seq, seeded
    // with the original send time when the id is known.
    for ((src, dst, _), mut txs) in link_txs {
        txs.sort_unstable();
        let link = a.links.entry((src, dst)).or_default();
        for pair in txs.windows(2) {
            link.gap_us.record(pair[1] - pair[0]);
        }
    }

    // Queue-depth samples arrive in file order, which for merged
    // multi-file input is not time order; sort each node's timeline so
    // the analysis is the same however the lines were interleaved.
    for series in a.queue_depth.values_mut() {
        series.sort_unstable();
    }

    // Invariants 3 + 4: cause edges are acyclic and point backwards.
    // Ids are minted per-origin in strictly increasing seq order, so a
    // cause edge into the *same* origin must decrease seq; cross-origin
    // edges are checked by explicit cycle detection.
    let mut visiting: HashSet<MsgId> = HashSet::new();
    let mut done: HashSet<MsgId> = HashSet::new();
    for &start in sends.keys() {
        if done.contains(&start) {
            continue;
        }
        // Iterative DFS along the single `cause` edge per node.
        let mut chain: Vec<MsgId> = Vec::new();
        let mut cur = Some(start);
        while let Some(id) = cur {
            if done.contains(&id) {
                break;
            }
            if !visiting.insert(id) {
                a.violations
                    .push(format!("causal cycle through ({},{})", id.0, id.1));
                break;
            }
            chain.push(id);
            let next = sends.get(&id).and_then(|s| s.cause);
            if let Some(c) = next {
                if let Some(s) = sends.get(&id) {
                    if c.0 == s.id.0 && c.1 >= s.id.1 {
                        a.violations.push(format!(
                            "cause ({},{}) does not precede send ({},{})",
                            c.0, c.1, s.id.0, s.id.1
                        ));
                    }
                }
                if !sends.contains_key(&c) {
                    a.violations.push(format!(
                        "cause ({},{}) of send ({},{}) has no matching send",
                        c.0, c.1, id.0, id.1
                    ));
                    break;
                }
            }
            cur = next;
        }
        for id in chain.drain(..) {
            visiting.remove(&id);
            done.insert(id);
        }
    }

    // Class fan-out.
    for s in sends.values() {
        for (class, n) in &s.classes {
            let cs = a.classes.entry(class.clone()).or_default();
            cs.sends += 1;
            cs.fanout += s.fanout;
            cs.facts += n * s.fanout;
        }
    }

    // Critical path: walk the latest delivery back through its send's
    // cause chain. Cap the walk defensively (cycles are reported above
    // but must not hang the report).
    if let Some(last) = delivers.iter().max_by_key(|d| d.ts) {
        let mut seen: BTreeSet<MsgId> = BTreeSet::new();
        let mut cur = Some((last.id, Some(last.ts), Some(last.dst)));
        while let Some((id, delivered_us, dst)) = cur {
            if !seen.insert(id) {
                break;
            }
            let Some(s) = sends.get(&id) else { break };
            a.critical_path.push(PathHop {
                id,
                sent_us: s.ts,
                delivered_us,
                dst,
            });
            cur = s.cause.map(|c| {
                // The delivery that triggered this send happened at the
                // sending node: find the matching deliver event.
                let trigger = delivers
                    .iter()
                    .filter(|d| d.id == c && d.dst == id.0 && d.ts <= s.ts)
                    .max_by_key(|d| d.ts);
                (c, trigger.map(|d| d.ts), trigger.map(|d| d.dst))
            });
        }
    }

    a
}

/// Analyze the JSONL trace at `path`.
///
/// # Errors
/// Fails when the file cannot be read.
pub fn analyze_file(path: &std::path::Path) -> Result<TraceAnalysis, String> {
    analyze_files(std::slice::from_ref(&path.to_path_buf()))
}

/// Analyze several JSONL traces as *one* happens-before graph — the
/// multi-process case, where each worker wrote its own
/// `PREFIX.workerK.jsonl` and a send recorded in one file pairs with
/// deliveries recorded in others. The analysis is order-insensitive
/// (events are keyed by message id, and the invariants are structural),
/// so concatenating the files loses nothing; per-event timestamps stay
/// meaningful because cross-file latencies already saturate at zero
/// rather than trusting cross-process clock alignment.
///
/// # Errors
/// Fails when any file cannot be read.
pub fn analyze_files(paths: &[std::path::PathBuf]) -> Result<TraceAnalysis, String> {
    let mut texts = Vec::with_capacity(paths.len());
    for path in paths {
        texts.push(
            std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read trace {}: {e}", path.display()))?,
        );
    }
    Ok(analyze_lines(texts.iter().flat_map(|t| t.lines())))
}

fn quantiles_human(h: &Pow2Histogram) -> String {
    format!(
        "p50={:.0} p90={:.0} p99={:.0} max={}",
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
        h.max()
    )
}

fn quantiles_json(h: &Pow2Histogram) -> String {
    format!(
        "{{\"n\":{},\"p50\":{:.1},\"p90\":{:.1},\"p99\":{:.1},\"max\":{}}}",
        h.count(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
        h.max()
    )
}

/// Downsample a series to at most `cap` evenly spaced points.
fn downsample(series: &[(u64, u64)], cap: usize) -> Vec<(u64, u64)> {
    if series.len() <= cap {
        return series.to_vec();
    }
    let mut out = Vec::with_capacity(cap);
    for i in 0..cap {
        out.push(series[i * (series.len() - 1) / (cap - 1).max(1)]);
    }
    out
}

impl TraceAnalysis {
    /// Whether every causal invariant held.
    pub fn invariants_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str("== trace report ==\n");
        let _ = writeln!(
            out,
            "events: {} sends, {} deliveries, {} retransmits, {} drops, {} dedup-suppressed, {} decode failures",
            self.sends, self.deliveries, self.retransmits, self.drops, self.dedups, self.decode_failures
        );
        if self.flight_dumps > 0 {
            let _ = writeln!(out, "flight-recorder dumps: {}", self.flight_dumps);
        }
        if self.unparsed_lines > 0 {
            let _ = writeln!(out, "unparsed lines: {}", self.unparsed_lines);
        }
        if self.invariants_ok() {
            out.push_str(
                "invariants: ok (every delivery traced to its send; causal graph acyclic)\n",
            );
        } else {
            let _ = writeln!(out, "invariants: {} VIOLATIONS", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  ! {v}");
            }
        }
        if !self.links.is_empty() {
            out.push_str("links (origin -> dst):\n");
            for ((from, to), l) in &self.links {
                let _ = write!(out, "  {from} -> {to}: {} delivered", l.deliveries);
                if l.latency_us.count() > 0 {
                    let _ = write!(out, ", latency us {}", quantiles_human(&l.latency_us));
                }
                if l.retransmits > 0 {
                    let _ = write!(out, ", {} retransmits", l.retransmits);
                    if l.gap_us.count() > 0 {
                        let _ = write!(out, " (gap us {})", quantiles_human(&l.gap_us));
                    }
                }
                if l.drops > 0 {
                    let _ = write!(out, ", {} dropped", l.drops);
                }
                if l.dedups > 0 {
                    let _ = write!(out, ", {} dedup-suppressed", l.dedups);
                }
                out.push('\n');
            }
        }
        if !self.critical_path.is_empty() {
            let _ = writeln!(
                out,
                "critical path ({} hops, newest first):",
                self.critical_path.len()
            );
            for hop in &self.critical_path {
                let _ = write!(
                    out,
                    "  ({},{}) sent at {}us",
                    hop.id.0, hop.id.1, hop.sent_us
                );
                match (hop.delivered_us, hop.dst) {
                    (Some(ts), Some(dst)) => {
                        let _ = writeln!(
                            out,
                            ", delivered to node {dst} at {ts}us (+{}us)",
                            ts.saturating_sub(hop.sent_us)
                        );
                    }
                    _ => out.push('\n'),
                }
            }
        }
        if !self.queue_depth.is_empty() {
            out.push_str("queue depth per node:\n");
            for (node, series) in &self.queue_depth {
                let max = series.iter().map(|&(_, v)| v).max().unwrap_or(0);
                let last = series.last().map(|&(_, v)| v).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  node {node}: {} samples, max={max}, final={last}",
                    series.len()
                );
            }
        }
        if !self.classes.is_empty() {
            out.push_str("fan-out per message class:\n");
            for (class, cs) in &self.classes {
                let _ = writeln!(
                    out,
                    "  {class:<10} {} sends, {} copies, {} facts shipped",
                    cs.sends, cs.fanout, cs.facts
                );
            }
        }
        out
    }

    /// Render the machine-readable JSON report (one object).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"events\":{{\"sends\":{},\"deliveries\":{},\"retransmits\":{},\"drops\":{},\"dedups\":{},\"decode_failures\":{},\"flight_dumps\":{},\"unparsed_lines\":{}}}",
            self.sends,
            self.deliveries,
            self.retransmits,
            self.drops,
            self.dedups,
            self.decode_failures,
            self.flight_dumps,
            self.unparsed_lines
        );
        let _ = write!(
            out,
            ",\"invariants\":{{\"ok\":{},\"violations\":[",
            self.invariants_ok()
        );
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::escape_json(v));
        }
        out.push_str("]}");
        out.push_str(",\"links\":[");
        for (i, ((from, to), l)) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from\":{from},\"to\":{to},\"deliveries\":{},\"latency_us\":{},\"retransmits\":{},\"retransmit_gap_us\":{},\"drops\":{},\"dedups\":{}}}",
                l.deliveries,
                quantiles_json(&l.latency_us),
                l.retransmits,
                quantiles_json(&l.gap_us),
                l.drops,
                l.dedups
            );
        }
        out.push(']');
        out.push_str(",\"critical_path\":[");
        for (i, hop) in self.critical_path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"origin\":{},\"seq\":{},\"sent_us\":{}",
                hop.id.0, hop.id.1, hop.sent_us
            );
            if let Some(ts) = hop.delivered_us {
                let _ = write!(out, ",\"delivered_us\":{ts}");
            }
            if let Some(dst) = hop.dst {
                let _ = write!(out, ",\"dst\":{dst}");
            }
            out.push('}');
        }
        out.push(']');
        out.push_str(",\"queue_depth\":[");
        for (i, (node, series)) in self.queue_depth.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let max = series.iter().map(|&(_, v)| v).max().unwrap_or(0);
            let _ = write!(
                out,
                "{{\"node\":{node},\"samples\":{},\"max\":{max},\"series\":[",
                series.len()
            );
            for (j, (ts, v)) in downsample(series, 64).iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{ts},{v}]");
            }
            out.push_str("]}");
        }
        out.push(']');
        out.push_str(",\"classes\":[");
        for (i, (class, cs)) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"class\":{},\"sends\":{},\"fanout\":{},\"facts\":{}}}",
                crate::escape_json(class),
                cs.sends,
                cs.fanout,
                cs.facts
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(ts: u64, origin: u64, seq: u64, cause: Option<MsgId>, fanout: u64) -> String {
        let cause_args = match cause {
            Some((o, s)) => format!(",\"cause_origin\":{o},\"cause_seq\":{s}"),
            None => String::new(),
        };
        format!(
            "{{\"type\":\"event\",\"cat\":\"trace\",\"name\":\"send\",\"track\":{},\"ts_us\":{ts},\"args\":{{\"origin\":{origin},\"seq\":{seq}{cause_args},\"fanout\":{fanout},\"facts\":2,\"class.fact\":2}}}}",
            origin + 1
        )
    }

    fn deliver(ts: u64, origin: u64, seq: u64, dst: u64) -> String {
        format!(
            "{{\"type\":\"event\",\"cat\":\"trace\",\"name\":\"deliver\",\"track\":{},\"ts_us\":{ts},\"args\":{{\"origin\":{origin},\"seq\":{seq},\"dst\":{dst},\"facts\":2}}}}",
            dst + 1
        )
    }

    #[test]
    fn happy_chain_passes_invariants() {
        // 0 sends m1 (root), 1 receives it and sends m2 caused by m1,
        // 0 receives m2.
        let lines = [
            send(10, 0, 1, None, 1),
            deliver(15, 0, 1, 1),
            send(20, 1, 1, Some((0, 1)), 1),
            deliver(30, 1, 1, 0),
        ];
        let a = analyze_lines(lines.iter().map(String::as_str));
        assert!(a.invariants_ok(), "{:?}", a.violations);
        assert_eq!(a.sends, 2);
        assert_eq!(a.deliveries, 2);
        // Latency on link 1 -> 0 is 10us.
        let l = &a.links[&(1, 0)];
        assert_eq!(l.deliveries, 1);
        assert_eq!(l.latency_us.max(), 10);
        // Critical path: m2 (delivered at 30) back to root m1.
        assert_eq!(a.critical_path.len(), 2);
        assert_eq!(a.critical_path[0].id, (1, 1));
        assert_eq!(a.critical_path[1].id, (0, 1));
        assert_eq!(a.critical_path[1].delivered_us, Some(15));
        // Class fan-out picked up the class.fact counts.
        assert_eq!(a.classes["fact"].sends, 2);
        // Render paths do not panic and carry the verdict.
        assert!(a.render_human().contains("invariants: ok"));
        assert!(a.render_json().contains("\"ok\":true"));
        let parsed = parse_json(&a.render_json()).expect("report is valid JSON");
        assert_eq!(
            parsed
                .get("events")
                .and_then(|e| e.get("sends"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
    }

    #[test]
    fn orphan_delivery_is_a_violation() {
        let lines = [deliver(5, 3, 9, 1)];
        let a = analyze_lines(lines.iter().map(String::as_str));
        assert!(!a.invariants_ok());
        assert!(
            a.violations[0].contains("no matching send"),
            "{:?}",
            a.violations
        );
        assert!(a.render_json().contains("\"ok\":false"));
    }

    #[test]
    fn causal_cycle_is_a_violation() {
        // Two sends each claiming the other as cause (impossible for a
        // real run; the analyzer must detect rather than hang).
        let lines = [
            send(10, 0, 1, Some((1, 1)), 1),
            send(10, 1, 1, Some((0, 1)), 1),
        ];
        let a = analyze_lines(lines.iter().map(String::as_str));
        assert!(!a.invariants_ok());
        assert!(
            a.violations.iter().any(|v| v.contains("cycle")),
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn same_origin_cause_must_precede() {
        let lines = [send(10, 0, 1, Some((0, 1)), 1)];
        let a = analyze_lines(lines.iter().map(String::as_str));
        assert!(
            a.violations.iter().any(|v| v.contains("does not precede")),
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn retransmit_gaps_and_unparsed_lines() {
        let retransmit = |ts: u64, attempt: u64| {
            format!(
                "{{\"type\":\"event\",\"cat\":\"trace\",\"name\":\"retransmit\",\"track\":1,\"ts_us\":{ts},\"args\":{{\"src\":0,\"dst\":1,\"link_seq\":7,\"attempt\":{attempt},\"origin\":0,\"seq\":1}}}}"
            )
        };
        let lines = [
            send(0, 0, 1, None, 1),
            retransmit(100, 1),
            retransmit(300, 2),
            retransmit(700, 3),
            "{torn line".to_string(),
        ];
        let a = analyze_lines(lines.iter().map(String::as_str));
        assert!(a.invariants_ok(), "{:?}", a.violations);
        assert_eq!(a.retransmits, 3);
        assert_eq!(a.unparsed_lines, 1);
        let l = &a.links[&(0, 1)];
        // Gaps 200 and 400.
        assert_eq!(l.gap_us.count(), 2);
        assert_eq!(l.gap_us.max(), 400);
    }

    #[test]
    fn queue_depth_series_downsamples_in_json() {
        let mut lines: Vec<String> = Vec::new();
        for i in 0..200u64 {
            lines.push(format!(
                "{{\"type\":\"gauge\",\"cat\":\"runtime\",\"name\":\"queue_depth\",\"track\":2,\"ts_us\":{i},\"value\":{}}}",
                i % 10
            ));
        }
        let a = analyze_lines(lines.iter().map(String::as_str));
        assert_eq!(a.queue_depth[&1].len(), 200);
        let json = a.render_json();
        let parsed = parse_json(&json).unwrap();
        let nodes = parsed
            .get("queue_depth")
            .and_then(JsonValue::as_arr)
            .unwrap();
        assert_eq!(nodes.len(), 1);
        let series = nodes[0].get("series").and_then(JsonValue::as_arr).unwrap();
        assert!(series.len() <= 64, "downsampled: {}", series.len());
        assert_eq!(
            nodes[0].get("samples").and_then(JsonValue::as_u64),
            Some(200)
        );
    }
}
