//! Concurrent sink emission: every shipping sink hammered from 8
//! threads must produce valid, line-complete output — no interleaved or
//! torn lines, no broken JSON, every record accounted for.

use calm_obs::{
    parse_json, ArgValue, ChromeTraceSink, FlightRecorder, JsonValue, JsonlSink, MultiSink, Obs,
    Sink,
};
use std::io::Write;
use std::sync::{Arc, Mutex};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 500;

/// An in-memory writer sharing its buffer with the test.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf-8 output")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Drive every primitive from `THREADS` threads through one handle.
fn hammer(obs: &Obs) {
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let obs = obs.clone();
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    match i % 5 {
                        0 => {
                            let _g = obs.span_on("eval", t as u32, || format!("work#{t}:{i}"));
                        }
                        1 => obs.event("trace", "send", t as u32 + 1, || {
                            vec![
                                ("origin", ArgValue::U64(t as u64)),
                                ("seq", ArgValue::U64(i as u64)),
                                ("note", ArgValue::Str(format!("t{t} \"quoted\" i{i}"))),
                            ]
                        }),
                        2 => obs.counter("net", "faults.attempts", 1),
                        3 => obs.gauge("runtime", "queue_depth", t as u32 + 1, i as u64),
                        _ => obs.histogram("runtime", "batch", i as u64),
                    }
                }
            });
        }
    });
}

#[test]
fn jsonl_sink_is_line_complete_under_contention() {
    let buf = SharedBuf::default();
    let sink = Arc::new(JsonlSink::to_writer(Box::new(buf.clone())));
    let obs = Obs::new(sink);
    hammer(&obs);
    obs.finish();

    let text = buf.text();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        THREADS * OPS_PER_THREAD,
        "every record emitted exactly one line"
    );
    let mut counter_max = 0u64;
    for line in &lines {
        let rec = parse_json(line).unwrap_or_else(|e| panic!("torn line ({e}): {line}"));
        let ty = rec.get("type").and_then(JsonValue::as_str).expect("type");
        assert!(
            ["span", "event", "counter", "gauge", "histogram"].contains(&ty),
            "{line}"
        );
        if ty == "counter" {
            counter_max = counter_max.max(rec.get("total").and_then(JsonValue::as_u64).unwrap());
        }
    }
    // The running total survived concurrent increments without loss.
    assert_eq!(counter_max, (THREADS * OPS_PER_THREAD / 5) as u64);
}

#[test]
fn chrome_sink_emits_valid_json_under_contention() {
    let buf = SharedBuf::default();
    let sink = Arc::new(ChromeTraceSink::to_writer(Box::new(buf.clone())));
    let obs = Obs::new(sink);
    hammer(&obs);
    obs.finish();

    let trace = parse_json(&buf.text()).expect("whole trace parses as one JSON document");
    let events = trace.as_arr().expect("a JSON array");
    assert!(!events.is_empty());
    for e in events {
        assert!(e.get("ph").is_some(), "trace event has a phase: {e:?}");
        assert!(e.get("name").is_some(), "trace event has a name: {e:?}");
    }
}

#[test]
fn multi_sink_keeps_every_fanout_line_complete() {
    let jsonl_buf = SharedBuf::default();
    let chrome_buf = SharedBuf::default();
    let jsonl = Arc::new(JsonlSink::to_writer(Box::new(jsonl_buf.clone())));
    let chrome = Arc::new(ChromeTraceSink::to_writer(Box::new(chrome_buf.clone())));
    let multi = Arc::new(MultiSink::new(vec![jsonl, chrome]));
    let obs = Obs::new(multi);
    hammer(&obs);
    obs.finish();

    let jsonl_lines: Vec<String> = jsonl_buf.text().lines().map(str::to_string).collect();
    assert_eq!(jsonl_lines.len(), THREADS * OPS_PER_THREAD);
    for line in &jsonl_lines {
        parse_json(line).unwrap_or_else(|e| panic!("torn line ({e}): {line}"));
    }
    let trace = parse_json(&chrome_buf.text()).expect("chrome output parses");
    assert!(!trace.as_arr().expect("array").is_empty());
}

#[test]
fn flight_recorder_dump_is_line_complete_under_contention() {
    let mut path = std::env::temp_dir();
    path.push(format!("calm-flight-hammer-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let recorder = Arc::new(FlightRecorder::new(&path));
    let obs = Obs::new(recorder.clone() as Arc<dyn Sink>);
    hammer(&obs);
    assert!(recorder.force_dump("test"));
    obs.finish();

    let text = std::fs::read_to_string(&path).expect("dump written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 1, "header plus records");
    let header = parse_json(lines[0]).expect("header parses");
    assert_eq!(
        header.get("type").and_then(JsonValue::as_str),
        Some("flight_dump")
    );
    let declared = header.get("records").and_then(JsonValue::as_u64).unwrap() as usize;
    assert_eq!(lines.len() - 1, declared, "record count matches header");
    let mut prev_ts: Option<u64> = None;
    for line in &lines[1..] {
        let rec = parse_json(line).unwrap_or_else(|e| panic!("torn line ({e}): {line}"));
        let ty = rec.get("type").and_then(JsonValue::as_str).expect("type");
        assert!(
            ["span", "event", "counter", "gauge", "histogram"].contains(&ty),
            "{line}"
        );
        // Records within one shard keep arrival order; across shards the
        // merge sorts by the global sequence, so timestamps (where
        // present) are near-sorted — just assert they parse and are
        // sane rather than strictly ordered.
        if let Some(ts) = rec.get("ts_us").and_then(JsonValue::as_u64) {
            prev_ts = Some(prev_ts.map_or(ts, |p| p.max(ts)));
        }
    }
    let _ = std::fs::remove_file(&path);
}
