//! The `calm` binary: see [`calm_cli::USAGE`].

use calm_cli::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            // Runtime failures inside a spawned net-worker (a scripted
            // pkill, a lost coordinator) are not usage mistakes — keep
            // the supervisor's stderr readable.
            if args.first().map(String::as_str) != Some("net-worker") {
                eprintln!("{USAGE}");
            }
            std::process::exit(1);
        }
    }
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn obs_options(args: &[String]) -> ObsOptions {
    ObsOptions {
        trace_out: flag_value(args, "--trace-out").map(Into::into),
        flight_recorder: flag_value(args, "--flight-recorder").map(Into::into),
        metrics: args.iter().any(|a| a == "--metrics"),
        dump_plan: args.iter().any(|a| a == "--dump-plan"),
    }
}

fn eval_threads(args: &[String]) -> Result<usize, CliError> {
    flag_value(args, "--eval-threads")
        .map(|n| {
            n.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| CliError("--eval-threads must be a number >= 1".into()))
        })
        .transpose()
        .map(|n| n.unwrap_or(1))
}

fn dispatch(args: &[String]) -> Result<String, CliError> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "eval" => {
            let (p, f) = two_files(args)?;
            match flag_value(args, "--updates") {
                Some(u) => cmd_eval_updates(
                    &read(p)?,
                    &read(f)?,
                    &read(u)?,
                    args.iter().any(|a| a == "--from-scratch"),
                    &obs_options(args),
                    eval_threads(args)?,
                ),
                None => cmd_eval_full(
                    &read(p)?,
                    &read(f)?,
                    &obs_options(args),
                    eval_threads(args)?,
                ),
            }
        }
        "wfs" => {
            let (p, f) = two_files(args)?;
            cmd_wfs_opts(&read(p)?, &read(f)?, eval_threads(args)?)
        }
        "classify" => cmd_classify(&read(one_file(args)?)?),
        "stratify" => cmd_stratify(&read(one_file(args)?)?),
        "check" => {
            let p = one_file(args)?;
            let class = flag_value(args, "--class").unwrap_or("m");
            let trials: usize = flag_value(args, "--trials")
                .map(|t| {
                    t.parse()
                        .map_err(|_| CliError("--trials must be a number".into()))
                })
                .transpose()?
                .unwrap_or(200);
            cmd_check(&read(p)?, class, trials)
        }
        "simulate" => {
            let (p, f) = two_files(args)?;
            let nodes: usize = flag_value(args, "--nodes")
                .map(|n| {
                    n.parse()
                        .map_err(|_| CliError("--nodes must be a number".into()))
                })
                .transpose()?
                .unwrap_or(3);
            let strategy = flag_value(args, "--strategy").unwrap_or("monotone");
            let trace = args.iter().any(|a| a == "--trace");
            let engine = parse_engine_full(
                flag_value(args, "--engine"),
                flag_value(args, "--workers"),
                flag_value(args, "--procs"),
                flag_value(args, "--faults"),
                flag_value(args, "--respawn-budget"),
            )?;
            cmd_simulate_run(
                &read(p)?,
                &read(f)?,
                nodes,
                strategy,
                trace,
                &obs_options(args),
                engine,
                eval_threads(args)?,
            )
        }
        "trace" => {
            match args.get(1).map(String::as_str) {
                Some("report") => {}
                _ => return Err(CliError("expected 'trace report <trace.jsonl>...'".into())),
            }
            // Every non-flag argument is a trace file; multiple files
            // (the per-worker traces of a process-engine run) merge
            // into one happens-before analysis.
            let paths: Vec<std::path::PathBuf> = args[2..]
                .iter()
                .filter(|a| !a.starts_with("--"))
                .map(std::path::PathBuf::from)
                .collect();
            if paths.is_empty() {
                return Err(CliError("expected a trace file".into()));
            }
            let json = args.iter().any(|a| a == "--json");
            cmd_trace_report(&paths, json)
        }
        // Hidden: the worker half of `--engine process`. Spawned by the
        // coordinator, never by hand.
        "net-worker" => {
            let addr = flag_value(args, "--connect")
                .ok_or_else(|| CliError("net-worker: expected --connect ADDR".into()))?;
            let worker: usize = flag_value(args, "--worker")
                .ok_or_else(|| CliError("net-worker: expected --worker K".into()))?
                .parse()
                .map_err(|_| CliError("net-worker: --worker must be a number".into()))?;
            cmd_net_worker(addr, worker)
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError(format!("unknown command '{other}'"))),
    }
}

fn one_file(args: &[String]) -> Result<&str, CliError> {
    args.get(1)
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError("expected a program file".into()))
}

fn two_files(args: &[String]) -> Result<(&str, &str), CliError> {
    let p = args
        .get(1)
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError("expected a program file".into()))?;
    let f = args
        .get(2)
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError("expected a facts file".into()))?;
    Ok((p, f))
}
