//! # calm-cli
//!
//! The `calm` command-line tool: a front end over the workspace for
//! people who want to *use* the system rather than link against it.
//!
//! ```text
//! calm eval      PROGRAM.dl FACTS.dl          # stratified evaluation
//! calm wfs       PROGRAM.dl FACTS.dl          # well-founded semantics
//! calm classify  PROGRAM.dl                   # Figure-2 fragment report
//! calm stratify  PROGRAM.dl                   # show the stratification
//! calm check     PROGRAM.dl [--class KIND]    # monotonicity falsify/certify
//! calm simulate  PROGRAM.dl FACTS.dl [--nodes N] [--strategy S]
//! ```
//!
//! All commands read the Datalog syntax documented in
//! [`calm_datalog::parser`]. The library half of this crate holds the
//! command implementations so they can be unit-tested without spawning
//! processes.

#![warn(missing_docs)]

use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_datalog::fragment::classify;
use calm_datalog::{parse_facts, parse_program, DatalogQuery, Program};
use calm_monotone::{Exhaustive, ExtensionKind, Falsifier};
use calm_transducer::{
    expected_output, run, DisjointStrategy, DistinctStrategy, DistributionPolicy,
    DomainGuidedPolicy, HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig,
    Transducer, TransducerNetwork,
};
use std::fmt::Write as _;

/// A CLI failure: message for stderr, nonzero exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parse a program source string with a friendly error.
pub fn load_program(src: &str) -> Result<Program, CliError> {
    parse_program(src).map_err(|e| err(format!("program: {e}")))
}

/// Parse a facts source string with a friendly error.
pub fn load_facts(src: &str) -> Result<Instance, CliError> {
    parse_facts(src).map_err(|e| err(format!("facts: {e}")))
}

/// `calm eval`: stratified evaluation, output relations printed
/// fact-per-line.
pub fn cmd_eval(program_src: &str, facts_src: &str) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let input = load_facts(facts_src)?;
    let answer =
        calm_datalog::eval::eval_query(&p, &input).map_err(|e| err(format!("evaluation: {e}")))?;
    Ok(render_instance(&answer))
}

/// `calm wfs`: well-founded semantics; prints true facts and, when the
/// model is partial, the undefined facts.
pub fn cmd_wfs(program_src: &str, facts_src: &str) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let input = load_facts(facts_src)?;
    let model = calm_datalog::well_founded_model(&p, &input);
    let out_schema = p.output_schema();
    let mut out = String::new();
    let _ = writeln!(out, "% true");
    out.push_str(&render_instance(&model.true_facts.restrict(&out_schema)));
    let undef = model.undefined().restrict(&out_schema);
    if !undef.is_empty() {
        let _ = writeln!(out, "% undefined");
        out.push_str(&render_instance(&undef));
    }
    Ok(out)
}

/// `calm classify`: the Figure-2 fragment report.
pub fn cmd_classify(program_src: &str) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let r = classify(&p);
    let mut out = String::new();
    let mut row = |name: &str, member: bool| {
        let _ = writeln!(out, "{name:<24} {}", if member { "yes" } else { "no" });
    };
    row("Datalog (positive)", r.datalog);
    row("Datalog(!=)", r.datalog_neq);
    row("SP-Datalog", r.sp_datalog);
    row("con-Datalog^not", r.connected);
    row("semicon-Datalog^not", r.semi_connected);
    row("stratifiable", r.stratifiable);
    let class = if r.datalog_neq {
        "M (monotone) — coordination-free in the original model (F0)"
    } else if r.sp_datalog {
        "Mdistinct — coordination-free in the policy-aware model (F1)"
    } else if r.semi_connected {
        "Mdisjoint — coordination-free under domain guidance (F2)"
    } else if r.stratifiable {
        "no guarantee from Figure 2 (outside semicon-Datalog^not)"
    } else {
        "not stratifiable — evaluate under the well-founded semantics"
    };
    let _ = writeln!(out, "=> {class}");
    Ok(out)
}

/// `calm stratify`: print stratum numbers and the per-stratum programs.
pub fn cmd_stratify(program_src: &str) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let s = calm_datalog::stratify(&p).map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    for (rel, stratum) in &s.stratum_of {
        let _ = writeln!(out, "stratum {stratum}: {rel}");
    }
    for (i, part) in s.strata.iter().enumerate() {
        let _ = writeln!(out, "-- P{} --", i + 1);
        let _ = write!(out, "{part}");
    }
    Ok(out)
}

/// `calm check`: monotonicity class membership for one of
/// `m | distinct | disjoint`, via exhaustive + randomized search.
pub fn cmd_check(program_src: &str, class: &str, trials: usize) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let q = DatalogQuery::new("query", p).map_err(|e| err(e.to_string()))?;
    let kind = parse_class(class)?;
    let mut out = String::new();
    if let Some(v) = Exhaustive::new(kind).certify(&q) {
        let _ = writeln!(
            out,
            "NOT in {}: counterexample found",
            kind.class_name(None)
        );
        let _ = writeln!(out, "  I = {:?}", v.base);
        let _ = writeln!(out, "  J = {:?}", v.extension);
        let _ = writeln!(out, "  lost = {:?}", v.lost);
        return Ok(out);
    }
    let schema = q.input_schema().clone();
    let hit = Falsifier::new(kind)
        .with_trials(trials)
        .falsify(&q, move |rng| {
            let mut r = calm_common::generator::InstanceRng::seeded(rng.gen_u64());
            r.random_instance(&schema, 4, 5)
        });
    match hit {
        Some(v) => {
            let _ = writeln!(
                out,
                "NOT in {}: counterexample found",
                kind.class_name(None)
            );
            let _ = writeln!(out, "  I = {:?}", v.base);
            let _ = writeln!(out, "  J = {:?}", v.extension);
            let _ = writeln!(out, "  lost = {:?}", v.lost);
        }
        None => {
            let _ = writeln!(
                out,
                "consistent with {} (exhaustive small-domain + {} randomized trials; membership is undecidable in general)",
                kind.class_name(None),
                trials
            );
        }
    }
    Ok(out)
}

/// `calm simulate`: run the program through a coordination-free strategy
/// on a simulated network and report output + run metrics.
pub fn cmd_simulate(
    program_src: &str,
    facts_src: &str,
    nodes: usize,
    strategy: &str,
) -> Result<String, CliError> {
    cmd_simulate_opts(program_src, facts_src, nodes, strategy, false)
}

/// `calm simulate --trace`: as [`cmd_simulate`], optionally printing the
/// per-transition event log before the output.
pub fn cmd_simulate_opts(
    program_src: &str,
    facts_src: &str,
    nodes: usize,
    strategy: &str,
    trace: bool,
) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let input = load_facts(facts_src)?;
    if nodes == 0 {
        return Err(err("--nodes must be at least 1"));
    }
    let q = DatalogQuery::new("query", p).map_err(|e| err(e.to_string()))?;
    let net = Network::of_size(nodes);
    let (transducer, policy, config): (
        Box<dyn Transducer>,
        Box<dyn DistributionPolicy>,
        SystemConfig,
    ) = match strategy {
        "monotone" | "broadcast" => (
            Box::new(MonotoneBroadcast::new(Box::new(q))),
            Box::new(HashPolicy::new(net)),
            SystemConfig::ORIGINAL,
        ),
        "distinct" => (
            Box::new(DistinctStrategy::new(Box::new(q))),
            Box::new(HashPolicy::new(net)),
            SystemConfig::POLICY_AWARE,
        ),
        "disjoint" => (
            Box::new(DisjointStrategy::new(Box::new(q))),
            Box::new(DomainGuidedPolicy::new(net)),
            SystemConfig::POLICY_AWARE,
        ),
        other => {
            return Err(err(format!(
                "unknown strategy '{other}' (expected monotone|distinct|disjoint)"
            )))
        }
    };
    let tn = TransducerNetwork {
        transducer: transducer.as_ref(),
        policy: policy.as_ref(),
        config,
    };
    let mut out = String::new();
    let result = if trace {
        let (result, log) = calm_transducer::traced_run(&tn, &input, 5_000_000);
        let _ = writeln!(out, "% trace ({} transitions):", log.events.len());
        out.push_str(&log.render());
        result
    } else {
        run(&tn, &input, &Scheduler::RoundRobin, 5_000_000)
    };
    let _ = writeln!(out, "% quiescent: {}", result.quiescent);
    let _ = writeln!(
        out,
        "% transitions: {}, messages sent: {}, delivered: {}",
        result.metrics.transitions, result.metrics.messages_sent, result.metrics.messages_delivered
    );
    // Compare against the centralized answer.
    let q2 =
        DatalogQuery::new("query", load_program(program_src)?).map_err(|e| err(e.to_string()))?;
    let expected = expected_output(&q2, &input);
    let _ = writeln!(
        out,
        "% matches centralized evaluation: {}",
        result.output == expected
    );
    out.push_str(&render_instance(&result.output));
    Ok(out)
}

fn parse_class(s: &str) -> Result<ExtensionKind, CliError> {
    match s {
        "m" | "M" | "monotone" => Ok(ExtensionKind::Any),
        "distinct" | "mdistinct" => Ok(ExtensionKind::DomainDistinct),
        "disjoint" | "mdisjoint" => Ok(ExtensionKind::DomainDisjoint),
        other => Err(err(format!(
            "unknown class '{other}' (expected m|distinct|disjoint)"
        ))),
    }
}

fn render_instance(i: &Instance) -> String {
    let mut out = String::new();
    for f in i.facts() {
        let _ = writeln!(out, "{f}.");
    }
    out
}

/// Usage text.
pub const USAGE: &str = "\
calm — weaker forms of monotonicity for declarative networking

USAGE:
  calm eval      <program.dl> <facts.dl>
  calm wfs       <program.dl> <facts.dl>
  calm classify  <program.dl>
  calm stratify  <program.dl>
  calm check     <program.dl> [--class m|distinct|disjoint] [--trials N]
  calm simulate  <program.dl> <facts.dl> [--nodes N] [--strategy monotone|distinct|disjoint] [--trace]
";

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).";
    const QTC: &str = "@output O.\nAdom(x) :- E(x,y).\nAdom(y) :- E(x,y).\n\
                       T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\n\
                       O(x,y) :- Adom(x), Adom(y), not T(x,y).";
    const FACTS: &str = "E(1,2). E(2,3).";

    #[test]
    fn eval_prints_facts() {
        let out = cmd_eval(TC, FACTS).unwrap();
        assert!(out.contains("T(1,2)."));
        assert!(out.contains("T(1,3)."));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn wfs_reports_undefined() {
        let out = cmd_wfs("win(x) :- move(x,y), not win(y).", "move(1,2). move(2,1).").unwrap();
        assert!(out.contains("% undefined"));
        assert!(out.contains("win(1)."));
    }

    #[test]
    fn classify_places_programs() {
        let out = cmd_classify(TC).unwrap();
        assert!(out.contains("Datalog (positive)       yes"));
        assert!(out.contains("F0"));
        let out = cmd_classify(QTC).unwrap();
        assert!(out.contains("semicon-Datalog^not      yes"));
        assert!(out.contains("F2"));
        let out = cmd_classify("win(x) :- move(x,y), not win(y).").unwrap();
        assert!(out.contains("well-founded"));
    }

    #[test]
    fn stratify_prints_strata() {
        let out = cmd_stratify(QTC).unwrap();
        assert!(out.contains("stratum 1: T"));
        assert!(out.contains("stratum 2: O"));
        assert!(out.contains("-- P2 --"));
    }

    #[test]
    fn check_finds_qtc_counterexample() {
        let out = cmd_check(QTC, "distinct", 50).unwrap();
        assert!(out.contains("NOT in Mdistinct"), "{out}");
        let out = cmd_check(TC, "m", 50).unwrap();
        assert!(out.contains("consistent with M"));
    }

    #[test]
    fn simulate_matches_centralized() {
        let out = cmd_simulate(TC, FACTS, 3, "monotone").unwrap();
        assert!(
            out.contains("% matches centralized evaluation: true"),
            "{out}"
        );
        let out = cmd_simulate(QTC, FACTS, 2, "disjoint").unwrap();
        assert!(
            out.contains("% matches centralized evaluation: true"),
            "{out}"
        );
    }

    #[test]
    fn simulate_with_trace_prints_events() {
        let out = cmd_simulate_opts(TC, FACTS, 2, "monotone", true).unwrap();
        assert!(out.contains("% trace"));
        assert!(out.contains("delivered="));
        assert!(out.contains("% matches centralized evaluation: true"));
    }

    #[test]
    fn simulate_rejects_unknown_strategy() {
        assert!(cmd_simulate(TC, FACTS, 2, "quantum").is_err());
    }

    #[test]
    fn simulate_rejects_zero_nodes() {
        let e = cmd_simulate(TC, FACTS, 0, "monotone").unwrap_err();
        assert!(e.0.contains("at least 1"));
    }

    #[test]
    fn errors_are_friendly() {
        assert!(cmd_eval("T(x) :-", FACTS).is_err());
        assert!(cmd_eval(TC, "E(x, ").is_err());
        assert!(cmd_check(TC, "bogus", 1).is_err());
    }
}
