//! # calm-cli
//!
//! The `calm` command-line tool: a front end over the workspace for
//! people who want to *use* the system rather than link against it.
//!
//! ```text
//! calm eval      PROGRAM.dl FACTS.dl          # stratified evaluation
//! calm wfs       PROGRAM.dl FACTS.dl          # well-founded semantics
//! calm classify  PROGRAM.dl                   # Figure-2 fragment report
//! calm stratify  PROGRAM.dl                   # show the stratification
//! calm check     PROGRAM.dl [--class KIND]    # monotonicity falsify/certify
//! calm simulate  PROGRAM.dl FACTS.dl [--nodes N] [--strategy S]
//! ```
//!
//! All commands read the Datalog syntax documented in
//! [`calm_datalog::parser`]. The library half of this crate holds the
//! command implementations so they can be unit-tested without spawning
//! processes.

#![warn(missing_docs)]

use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_datalog::fragment::classify;
use calm_datalog::{parse_facts, parse_program, DatalogQuery, Program};
use calm_monotone::{Exhaustive, ExtensionKind, Falsifier};
use calm_net::{
    run_net_worker, run_process, run_threaded_with, Assign, FaultPlan, JobSpec, ProcessConfig,
    Programs, SpawnHandle, ThreadedConfig, ThreadedNetwork, WorkerSetup,
};
use calm_obs::{ChromeTraceSink, FlightRecorder, JsonlSink, MultiSink, Obs, ReportSink, Sink};
use calm_transducer::{
    expected_output, run, run_with, DisjointStrategy, DistinctStrategy, DistributionPolicy,
    DomainGuidedPolicy, HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig, TraceSink,
    Transducer, TransducerNetwork,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A CLI failure: message for stderr, nonzero exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parse a program source string with a friendly error.
pub fn load_program(src: &str) -> Result<Program, CliError> {
    parse_program(src).map_err(|e| err(format!("program: {e}")))
}

/// Parse a facts source string with a friendly error.
pub fn load_facts(src: &str) -> Result<Instance, CliError> {
    parse_facts(src).map_err(|e| err(format!("facts: {e}")))
}

/// Observability options shared by `eval` and `simulate`
/// (`--trace-out PREFIX`, `--flight-recorder PATH`, `--metrics` and
/// `--dump-plan`).
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Write trace artifacts `<prefix>.jsonl` (event log) and
    /// `<prefix>.trace.json` (Chrome trace-event JSON).
    pub trace_out: Option<PathBuf>,
    /// Attach the always-on flight recorder: a bounded ring of recent
    /// observations dumped to this JSONL file when an anomaly fires
    /// (retry-budget exhaustion, wire decode failure, node crash, or
    /// non-quiescent termination). A clean run writes nothing.
    pub flight_recorder: Option<PathBuf>,
    /// Append the terminal run report to the command output.
    pub metrics: bool,
    /// Print the compiled query plan — per rule, the atom join order
    /// and each atom's join strategy (merge/hash/scan/lookup) — as
    /// `% `-prefixed comment lines before the results.
    pub dump_plan: bool,
}

impl ObsOptions {
    fn is_off(&self) -> bool {
        self.trace_out.is_none() && self.flight_recorder.is_none() && !self.metrics
    }
}

/// Derive `<prefix>.<ext>` from a `--trace-out` prefix, appending to the
/// file name rather than replacing an existing extension.
fn trace_path(prefix: &Path, ext: &str) -> PathBuf {
    let mut name = prefix.as_os_str().to_os_string();
    name.push(".");
    name.push(ext);
    PathBuf::from(name)
}

/// Assemble an [`Obs`] from the options, plus handles needed afterwards:
/// the report sink to render (when `--metrics`) and extra sinks such as
/// a [`TraceSink`] the caller wants fanned in.
fn build_obs(
    opts: &ObsOptions,
    extra: Vec<Arc<dyn Sink>>,
) -> Result<(Obs, Option<Arc<ReportSink>>), CliError> {
    let mut sinks: Vec<Arc<dyn Sink>> = extra;
    if let Some(prefix) = &opts.trace_out {
        // A prefix like `out/run42/trace` usually points into a directory
        // that doesn't exist yet; create it rather than surfacing the
        // opaque ENOENT the sink would hit.
        if let Some(dir) = prefix.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| {
                err(format!(
                    "--trace-out: cannot create directory '{}': {e}",
                    dir.display()
                ))
            })?;
        }
        let jsonl = JsonlSink::create(&trace_path(prefix, "jsonl"))
            .map_err(|e| err(format!("--trace-out: {e}")))?;
        let chrome = ChromeTraceSink::create(&trace_path(prefix, "trace.json"))
            .map_err(|e| err(format!("--trace-out: {e}")))?;
        sinks.push(Arc::new(jsonl));
        sinks.push(Arc::new(chrome));
    }
    if let Some(path) = &opts.flight_recorder {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| {
                err(format!(
                    "--flight-recorder: cannot create directory '{}': {e}",
                    dir.display()
                ))
            })?;
        }
        sinks.push(Arc::new(FlightRecorder::new(path)));
    }
    let report = if opts.metrics {
        let r = Arc::new(ReportSink::new());
        sinks.push(r.clone());
        Some(r)
    } else {
        None
    };
    let obs = match sinks.len() {
        0 => Obs::noop(),
        1 => Obs::new(sinks.pop().expect("one sink")),
        _ => Obs::new(Arc::new(MultiSink::new(sinks))),
    };
    Ok((obs, report))
}

/// `calm eval`: stratified evaluation, output relations printed
/// fact-per-line.
pub fn cmd_eval(program_src: &str, facts_src: &str) -> Result<String, CliError> {
    cmd_eval_opts(program_src, facts_src, &ObsOptions::default())
}

/// As [`cmd_eval`], optionally writing trace artifacts and appending the
/// run report.
pub fn cmd_eval_opts(
    program_src: &str,
    facts_src: &str,
    obs_opts: &ObsOptions,
) -> Result<String, CliError> {
    cmd_eval_full(program_src, facts_src, obs_opts, 1)
}

/// As [`cmd_eval_opts`], running every stratum fixpoint with
/// `eval_threads` data-parallel workers (`--eval-threads N`; the answer
/// is byte-identical for any thread count).
pub fn cmd_eval_full(
    program_src: &str,
    facts_src: &str,
    obs_opts: &ObsOptions,
    eval_threads: usize,
) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let input = load_facts(facts_src)?;
    let (obs, report) = build_obs(obs_opts, Vec::new())?;
    let answer = calm_datalog::eval::eval_query_opts(&p, &input, &obs, eval_threads)
        .map_err(|e| err(format!("evaluation: {e}")))?;
    obs.finish();
    let mut out = String::new();
    if obs_opts.dump_plan {
        out.push_str(&render_plan(&p)?);
    }
    out.push_str(&render_instance(&answer));
    if let Some(r) = report {
        out.push_str(&r.render());
    }
    Ok(out)
}

/// `calm eval --updates FILE`: evaluate once, then fold each signed
/// update batch into the materialized answer by incremental
/// maintenance (DRed), printing the output relations after the initial
/// evaluation and after every batch.
///
/// With `from_scratch` (the `--from-scratch` flag), every batch instead
/// re-evaluates the updated EDB with the normal fixpoint — same output
/// format, no maintenance. Diffing the two modes' outputs is the
/// differential oracle the CI `incremental` job checks.
pub fn cmd_eval_updates(
    program_src: &str,
    facts_src: &str,
    updates_src: &str,
    from_scratch: bool,
    obs_opts: &ObsOptions,
    eval_threads: usize,
) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let q = calm_datalog::DatalogQuery::new("eval", p)
        .map_err(|e| err(format!("program: {e}")))?
        .with_eval_threads(eval_threads);
    let mut edb = load_facts(facts_src)?;
    let batches =
        calm_datalog::parse_updates(updates_src).map_err(|e| err(format!("updates: {e}")))?;
    let (obs, report) = build_obs(obs_opts, Vec::new())?;
    let mut out = String::new();
    let _ = writeln!(out, "% initial");
    if from_scratch {
        out.push_str(&render_instance(&calm_common::query::Query::eval(&q, &edb)));
        for (k, b) in batches.iter().enumerate() {
            b.apply_to_instance(&mut edb);
            let _ = writeln!(out, "% after batch {}", k + 1);
            out.push_str(&render_instance(&calm_common::query::Query::eval(&q, &edb)));
        }
    } else {
        let mut session = q.open(&edb);
        out.push_str(&render_instance(&session.output()));
        for (k, b) in batches.iter().enumerate() {
            session.apply_obs(b, &obs);
            let _ = writeln!(out, "% after batch {}", k + 1);
            out.push_str(&render_instance(&session.output()));
        }
        // Summary only under --metrics: the plain output must stay
        // byte-diffable against the --from-scratch mode.
        if obs_opts.metrics {
            let s = session.stats();
            let _ = writeln!(
                out,
                "% maintenance: {} batches, +{} -{} edb, {} retractions, {} rederivations, {} insertions",
                batches.len(),
                s.edb_inserted,
                s.edb_deleted,
                s.retractions,
                s.rederivations,
                s.insertions
            );
        }
    }
    obs.finish();
    if let Some(r) = report {
        out.push_str(&r.render());
    }
    Ok(out)
}

/// `calm wfs`: well-founded semantics; prints true facts and, when the
/// model is partial, the undefined facts.
pub fn cmd_wfs(program_src: &str, facts_src: &str) -> Result<String, CliError> {
    cmd_wfs_opts(program_src, facts_src, 1)
}

/// As [`cmd_wfs`], running the alternating-fixpoint inner loops with
/// `eval_threads` data-parallel workers (`--eval-threads N`).
pub fn cmd_wfs_opts(
    program_src: &str,
    facts_src: &str,
    eval_threads: usize,
) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let input = load_facts(facts_src)?;
    let model = calm_datalog::well_founded_model_opts(
        &p,
        &input,
        calm_datalog::eval::EvalOptions::default().with_eval_threads(eval_threads),
        &Obs::noop(),
    );
    let out_schema = p.output_schema();
    let mut out = String::new();
    let _ = writeln!(out, "% true");
    out.push_str(&render_instance(&model.true_facts.restrict(&out_schema)));
    let undef = model.undefined().restrict(&out_schema);
    if !undef.is_empty() {
        let _ = writeln!(out, "% undefined");
        out.push_str(&render_instance(&undef));
    }
    Ok(out)
}

/// `calm classify`: the Figure-2 fragment report.
pub fn cmd_classify(program_src: &str) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let r = classify(&p);
    let mut out = String::new();
    let mut row = |name: &str, member: bool| {
        let _ = writeln!(out, "{name:<24} {}", if member { "yes" } else { "no" });
    };
    row("Datalog (positive)", r.datalog);
    row("Datalog(!=)", r.datalog_neq);
    row("SP-Datalog", r.sp_datalog);
    row("con-Datalog^not", r.connected);
    row("semicon-Datalog^not", r.semi_connected);
    row("stratifiable", r.stratifiable);
    let class = if r.datalog_neq {
        "M (monotone) — coordination-free in the original model (F0)"
    } else if r.sp_datalog {
        "Mdistinct — coordination-free in the policy-aware model (F1)"
    } else if r.semi_connected {
        "Mdisjoint — coordination-free under domain guidance (F2)"
    } else if r.stratifiable {
        "no guarantee from Figure 2 (outside semicon-Datalog^not)"
    } else {
        "not stratifiable — evaluate under the well-founded semantics"
    };
    let _ = writeln!(out, "=> {class}");
    Ok(out)
}

/// `calm stratify`: print stratum numbers and the per-stratum programs.
pub fn cmd_stratify(program_src: &str) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let s = calm_datalog::stratify(&p).map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    for (rel, stratum) in &s.stratum_of {
        let _ = writeln!(out, "stratum {stratum}: {rel}");
    }
    for (i, part) in s.strata.iter().enumerate() {
        let _ = writeln!(out, "-- P{} --", i + 1);
        let _ = write!(out, "{part}");
    }
    Ok(out)
}

/// `calm check`: monotonicity class membership for one of
/// `m | distinct | disjoint`, via exhaustive + randomized search.
pub fn cmd_check(program_src: &str, class: &str, trials: usize) -> Result<String, CliError> {
    let p = load_program(program_src)?;
    let q = DatalogQuery::new("query", p).map_err(|e| err(e.to_string()))?;
    let kind = parse_class(class)?;
    let mut out = String::new();
    if let Some(v) = Exhaustive::new(kind).certify(&q) {
        let _ = writeln!(
            out,
            "NOT in {}: counterexample found",
            kind.class_name(None)
        );
        let _ = writeln!(out, "  I = {:?}", v.base);
        let _ = writeln!(out, "  J = {:?}", v.extension);
        let _ = writeln!(out, "  lost = {:?}", v.lost);
        return Ok(out);
    }
    let schema = q.input_schema().clone();
    let hit = Falsifier::new(kind)
        .with_trials(trials)
        .falsify(&q, move |rng| {
            let mut r = calm_common::generator::InstanceRng::seeded(rng.gen_u64());
            r.random_instance(&schema, 4, 5)
        });
    match hit {
        Some(v) => {
            let _ = writeln!(
                out,
                "NOT in {}: counterexample found",
                kind.class_name(None)
            );
            let _ = writeln!(out, "  I = {:?}", v.base);
            let _ = writeln!(out, "  J = {:?}", v.extension);
            let _ = writeln!(out, "  lost = {:?}", v.lost);
        }
        None => {
            let _ = writeln!(
                out,
                "consistent with {} (exhaustive small-domain + {} randomized trials; membership is undecidable in general)",
                kind.class_name(None),
                trials
            );
        }
    }
    Ok(out)
}

/// `calm simulate`: run the program through a coordination-free strategy
/// on a simulated network and report output + run metrics.
pub fn cmd_simulate(
    program_src: &str,
    facts_src: &str,
    nodes: usize,
    strategy: &str,
) -> Result<String, CliError> {
    cmd_simulate_opts(program_src, facts_src, nodes, strategy, false)
}

/// `calm simulate --trace`: as [`cmd_simulate`], optionally printing the
/// per-transition event log before the output.
pub fn cmd_simulate_opts(
    program_src: &str,
    facts_src: &str,
    nodes: usize,
    strategy: &str,
    trace: bool,
) -> Result<String, CliError> {
    cmd_simulate_full(
        program_src,
        facts_src,
        nodes,
        strategy,
        trace,
        &ObsOptions::default(),
    )
}

/// Which execution engine `calm simulate` drives.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Engine {
    /// The sequential simulator (round-robin scheduler) — the default.
    #[default]
    Sequential,
    /// The threaded executor (`calm-net`): nodes sharded over worker
    /// threads, termination detected by the Safra ring. `workers: 0`
    /// picks `min(available cores, nodes)`.
    Threaded {
        /// Worker threads (0 = auto).
        workers: usize,
        /// Fault plan (`--faults SPEC`): run the network through the
        /// fault-injection + reliable-delivery substrate.
        faults: Option<FaultPlan>,
    },
    /// The process engine (`calm-net` transport): `procs` OS worker
    /// processes connected to a coordinator over loopback TCP, the
    /// Safra token ring passing across process boundaries. `procs: 0`
    /// picks `min(available cores, nodes)`.
    Process {
        /// Worker processes (0 = auto). Clamped to the node count.
        procs: usize,
        /// Fault plan spec (`--faults SPEC`), validated at parse time
        /// and shipped verbatim to every worker in the job hand-off
        /// (each worker seeds its own wires from it, exactly like the
        /// threaded engine's per-worker substrate).
        faults: Option<String>,
        /// Respawns allowed per worker before its shard is adopted by
        /// survivors (`--respawn-budget N`). `None` picks the default:
        /// supervised (budget 3) when the fault plan schedules process
        /// kills (`pkill(...)`), unsupervised (budget 0 — a death
        /// aborts the run) otherwise.
        respawn_budget: Option<u32>,
    },
}

/// A strategy instance with the policy and system configuration it
/// expects: the three things `simulate` needs to build a network.
type StrategyTriple = (
    Box<dyn Transducer>,
    Box<dyn DistributionPolicy>,
    SystemConfig,
);

/// Build the strategy/policy/system-config triple for a strategy name.
/// `eval_threads` data-parallel workers run inside every node-local
/// fixpoint of the strategy's query (1 = sequential).
fn build_strategy(
    program_src: &str,
    strategy: &str,
    nodes: usize,
    eval_threads: usize,
) -> Result<StrategyTriple, CliError> {
    let p = load_program(program_src)?;
    let q = DatalogQuery::new("query", p)
        .map_err(|e| err(e.to_string()))?
        .with_eval_threads(eval_threads);
    let net = Network::of_size(nodes);
    Ok(match strategy {
        "monotone" | "broadcast" => (
            Box::new(MonotoneBroadcast::new(Box::new(q))) as Box<dyn Transducer>,
            Box::new(HashPolicy::new(net)) as Box<dyn DistributionPolicy>,
            SystemConfig::ORIGINAL,
        ),
        "distinct" => (
            Box::new(DistinctStrategy::new(Box::new(q))),
            Box::new(HashPolicy::new(net)),
            SystemConfig::POLICY_AWARE,
        ),
        "disjoint" => (
            Box::new(DisjointStrategy::new(Box::new(q))),
            Box::new(DomainGuidedPolicy::new(net)),
            SystemConfig::POLICY_AWARE,
        ),
        other => {
            return Err(err(format!(
                "unknown strategy '{other}' (expected monotone|distinct|disjoint)"
            )))
        }
    })
}

/// The full `calm simulate`: strategy selection, optional printed trace,
/// optional trace artifacts (`--trace-out`) and run report (`--metrics`).
pub fn cmd_simulate_full(
    program_src: &str,
    facts_src: &str,
    nodes: usize,
    strategy: &str,
    trace: bool,
    obs_opts: &ObsOptions,
) -> Result<String, CliError> {
    cmd_simulate_engine(
        program_src,
        facts_src,
        nodes,
        strategy,
        trace,
        obs_opts,
        Engine::Sequential,
    )
}

/// As [`cmd_simulate_full`], selecting the execution engine
/// (`--engine threaded --workers N`).
#[allow(clippy::too_many_arguments)]
pub fn cmd_simulate_engine(
    program_src: &str,
    facts_src: &str,
    nodes: usize,
    strategy: &str,
    trace: bool,
    obs_opts: &ObsOptions,
    engine: Engine,
) -> Result<String, CliError> {
    cmd_simulate_run(
        program_src,
        facts_src,
        nodes,
        strategy,
        trace,
        obs_opts,
        engine,
        1,
    )
}

/// As [`cmd_simulate_engine`], running every node-local fixpoint with
/// `eval_threads` data-parallel workers (`--eval-threads N`): the
/// threaded engine then runs `workers × eval_threads` threads in total.
/// Output is byte-identical for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn cmd_simulate_run(
    program_src: &str,
    facts_src: &str,
    nodes: usize,
    strategy: &str,
    trace: bool,
    obs_opts: &ObsOptions,
    engine: Engine,
    eval_threads: usize,
) -> Result<String, CliError> {
    let input = load_facts(facts_src)?;
    if nodes == 0 {
        return Err(err("--nodes must be at least 1"));
    }
    let eval_threads = eval_threads.max(1);
    let (transducer, policy, config) = build_strategy(program_src, strategy, nodes, eval_threads)?;
    let mut out = String::new();
    if obs_opts.dump_plan {
        out.push_str(&render_plan(&load_program(program_src)?)?);
    }
    if eval_threads > 1 {
        let _ = writeln!(out, "% eval threads: {eval_threads}");
    }

    let trace_sink = trace.then(|| Arc::new(TraceSink::new()));
    let extra: Vec<Arc<dyn Sink>> = trace_sink
        .iter()
        .map(|s| Arc::clone(s) as Arc<dyn Sink>)
        .collect();
    let observed = trace || !obs_opts.is_off();
    let (obs, report) = if observed {
        build_obs(obs_opts, extra)?
    } else {
        (Obs::noop(), None)
    };

    // Normalized (output, metrics, quiescent) across the two engines.
    let (output, metrics, quiescent) = match engine {
        Engine::Sequential => {
            let tn = TransducerNetwork {
                transducer: transducer.as_ref(),
                policy: policy.as_ref(),
                config,
            };
            let r = if observed {
                run_with(&tn, &input, &Scheduler::RoundRobin, 5_000_000, &obs)
            } else {
                run(&tn, &input, &Scheduler::RoundRobin, 5_000_000)
            };
            (r.output, r.metrics, r.quiescent)
        }
        Engine::Threaded { workers, faults } => {
            let workers = if workers == 0 {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .min(nodes)
            } else {
                workers
            };
            // Each worker gets its own transducer instance (own interner
            // and scratch database) so steps never contend on a shared
            // evaluation context.
            let factory = move || {
                let (t, _, _) = build_strategy(program_src, strategy, nodes, eval_threads)
                    .expect("strategy built once already");
                t
            };
            let tn = ThreadedNetwork {
                programs: Programs::PerWorker(&factory),
                policy: policy.as_ref(),
                config,
            };
            let faulted = faults.is_some();
            let mut tcfg = ThreadedConfig::new(workers);
            if let Some(plan) = faults {
                tcfg = tcfg.with_faults(plan);
            }
            let r = run_threaded_with(&tn, &input, &tcfg, &obs);
            let _ = writeln!(out, "% engine: threaded, workers: {workers}");
            if faulted {
                let counters: String = r
                    .faults
                    .as_pairs()
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(label, n)| format!(" {label}={n}"))
                    .collect();
                let _ = writeln!(out, "% fault stats:{counters}");
            }
            let per_worker: String = r
                .per_worker
                .iter()
                .map(|w| format!(" {}", w.metrics.transitions))
                .collect();
            let token_passes: u64 = r.per_worker.iter().map(|w| w.token_passes).sum();
            let _ = writeln!(
                out,
                "% per-worker steps:{per_worker}, token passes: {token_passes}"
            );
            (r.output, r.metrics, r.quiescent)
        }
        Engine::Process {
            procs,
            faults,
            respawn_budget,
        } => {
            let procs = if procs == 0 {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            } else {
                procs
            }
            .clamp(1, nodes);
            let faulted = faults.is_some();
            // Supervision default: a fault plan that schedules process
            // kills gets a respawn budget (the run is *expected* to
            // recover); anything else keeps the abort-on-death
            // semantics unless --respawn-budget says otherwise.
            let has_pkills = faults
                .as_deref()
                .and_then(|s| FaultPlan::parse(s).ok())
                .is_some_and(|p| !p.pkills.is_empty());
            let budget = respawn_budget.unwrap_or(if has_pkills { 3 } else { 0 });
            let spec = JobSpec {
                program: program_src.to_string(),
                facts: facts_src.to_string(),
                strategy: strategy.to_string(),
                nodes,
                eval_threads,
                step_budget: 5_000_000,
                faults,
                // Base paths; the coordinator suffixes them per worker
                // (PREFIX.workerK) so concurrent writers never share a
                // file. The coordinator's own sinks keep the base path.
                trace_prefix: obs_opts.trace_out.as_ref().map(|p| p.display().to_string()),
                flight_path: obs_opts
                    .flight_recorder
                    .as_ref()
                    .map(|p| p.display().to_string()),
            };
            let exe = std::env::current_exe()
                .map_err(|e| err(format!("cannot locate the calm binary to spawn: {e}")))?;
            let spawner = move |k: usize, addr: &str| -> Result<SpawnHandle, String> {
                std::process::Command::new(&exe)
                    .args(["net-worker", "--connect", addr, "--worker", &k.to_string()])
                    .spawn()
                    .map(SpawnHandle::Process)
                    .map_err(|e| e.to_string())
            };
            let cfg = ProcessConfig::new(procs, spec).with_respawn_budget(budget);
            let r = run_process(&cfg, &spawner, &obs)
                .map_err(|e| err(format!("process engine: {e}")))?;
            let _ = writeln!(out, "% engine: process, procs: {procs}");
            if r.respawns > 0 || !r.adopted_workers.is_empty() {
                let adopted: Vec<String> =
                    r.adopted_workers.iter().map(|k| k.to_string()).collect();
                let _ = writeln!(
                    out,
                    "% supervision: respawns: {}, adopted worker(s):{}{}",
                    r.respawns,
                    if adopted.is_empty() { " none" } else { " " },
                    adopted.join(", ")
                );
            }
            if faulted {
                let counters: String = r
                    .faults
                    .as_pairs()
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(label, n)| format!(" {label}={n}"))
                    .collect();
                let _ = writeln!(out, "% fault stats:{counters}");
            }
            let per_worker: String = r
                .per_worker
                .iter()
                .map(|w| format!(" {}", w.metrics.transitions))
                .collect();
            let _ = writeln!(
                out,
                "% per-worker steps:{per_worker}, token passes: {}",
                r.token_passes()
            );
            if !r.failed_workers.is_empty() {
                // A lost worker forfeits quiescence; the survivors'
                // states were still collected and the flight recorder
                // (if attached) has already dumped. Exit nonzero rather
                // than pretending the run converged.
                obs.finish();
                let failed: Vec<String> = r.failed_workers.iter().map(|k| k.to_string()).collect();
                return Err(err(format!(
                    "process engine: worker(s) {} died mid-run; run is not quiescent",
                    failed.join(", ")
                )));
            }
            // The transport is program-agnostic: project out(R) from
            // the collected final states, as the threaded join does.
            let out_schema = &transducer.schema().output;
            let mut output = Instance::new();
            for state in r.states.values() {
                output.extend(state.restrict(out_schema).facts());
            }
            (output, r.metrics, r.quiescent)
        }
    };
    obs.finish();
    if let Some(sink) = trace_sink {
        let log = sink.take_trace();
        let _ = writeln!(out, "% trace ({} transitions):", log.events.len());
        out.push_str(&log.render());
    }
    if let Some(r) = report {
        out.push_str(&r.render());
    }
    let _ = writeln!(out, "% quiescent: {quiescent}");
    let _ = writeln!(
        out,
        "% transitions: {}, messages sent: {}, delivered: {}",
        metrics.transitions, metrics.messages_sent, metrics.messages_delivered
    );
    let by_class = metrics.by_class;
    if by_class.total() > 0 {
        let classes: String = by_class
            .as_pairs()
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(label, n)| format!(" {label}={n}"))
            .collect();
        let _ = writeln!(
            out,
            "% message classes:{classes}, max queue depth: {}",
            metrics.max_queue_depth()
        );
    }
    // Compare against the centralized answer.
    let q2 =
        DatalogQuery::new("query", load_program(program_src)?).map_err(|e| err(e.to_string()))?;
    let expected = expected_output(&q2, &input);
    let _ = writeln!(
        out,
        "% matches centralized evaluation: {}",
        output == expected
    );
    out.push_str(&render_instance(&output));
    Ok(out)
}

/// The hidden `calm net-worker` entry point: the worker half of the
/// process engine. The coordinator spawns `calm net-worker --connect
/// ADDR --worker K` for each shard; the worker connects, handshakes,
/// receives its job (program + facts + strategy by value in the
/// `Assign` frame), and runs the shared executor loop over the socket.
/// Everything it needs arrives over the wire — no files, no flags
/// beyond the rendezvous address and its index.
///
/// Test hook: when `CALM_NET_WORKER_DIE` names this worker's index the
/// process exits with status 3 right after the handshake — the CLI and
/// CI kill-tests use it to assert that a dead worker yields a
/// non-quiescent coordinator exit (with a flight-recorder dump) rather
/// than a hang.
pub fn cmd_net_worker(addr: &str, worker: usize) -> Result<String, CliError> {
    let builder = move |assign: &Assign| -> Result<WorkerSetup, String> {
        let spec = &assign.spec;
        let (transducer, policy, config) = build_strategy(
            &spec.program,
            &spec.strategy,
            spec.nodes,
            spec.eval_threads.max(1),
        )
        .map_err(|e| e.0)?;
        let input = load_facts(&spec.facts).map_err(|e| e.0)?;
        // The coordinator already suffixed these paths per worker
        // (PREFIX.workerK), so this worker's sinks own their files.
        let opts = ObsOptions {
            trace_out: spec.trace_prefix.as_ref().map(PathBuf::from),
            flight_recorder: spec.flight_path.as_ref().map(PathBuf::from),
            metrics: false,
            dump_plan: false,
        };
        let (obs, _) = build_obs(&opts, Vec::new()).map_err(|e| e.0)?;
        if std::env::var("CALM_NET_WORKER_DIE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            == Some(assign.worker)
        {
            // Die *after* the sinks exist, and flush them first: the
            // post-mortem contract is that even a killed worker leaves
            // well-formed JSONL behind (trace + flight dump), never a
            // torn line.
            let worker = assign.worker as u64;
            obs.event("net", "worker_die", assign.worker as u32 + 1, || {
                vec![("worker", calm_obs::ArgValue::U64(worker))]
            });
            obs.finish();
            std::process::exit(3);
        }
        Ok(WorkerSetup {
            transducer,
            policy,
            config,
            input,
            obs,
        })
    };
    run_net_worker(addr, worker, &builder).map_err(err)?;
    Ok(String::new())
}

/// `calm trace report`: ingest one or more JSONL traces (`--trace-out`
/// event logs or flight-recorder dumps), rebuild the happens-before
/// message graph, check the causal invariants, and report per-link
/// latency and retransmit-gap percentiles, the critical path, per-node
/// queue-depth timelines and per-message-class fan-out. `json` selects
/// the machine-readable rendering.
///
/// Multiple paths merge into one analysis — the per-worker traces of a
/// process-engine run (`PREFIX.worker0.jsonl`, `PREFIX.worker1.jsonl`,
/// …) each see only their own half of every cross-worker message, so
/// only the merged set satisfies the causal invariants.
///
/// # Errors
/// Fails when a file cannot be read or any causal invariant is
/// violated (an orphan delivery, a cycle, or a cause that does not
/// precede its effect) — a violated trace means the run it came from
/// cannot be trusted, so the report exits nonzero.
pub fn cmd_trace_report(paths: &[PathBuf], json: bool) -> Result<String, CliError> {
    if paths.is_empty() {
        return Err(err("expected at least one trace file"));
    }
    let analysis = calm_obs::trace::analyze_files(paths).map_err(err)?;
    let out = if json {
        let mut s = analysis.render_json();
        s.push('\n');
        s
    } else {
        analysis.render_human()
    };
    if !analysis.invariants_ok() {
        return Err(err(format!(
            "trace invariants violated ({}): {}",
            analysis.violations.len(),
            analysis.violations.join("; ")
        )));
    }
    Ok(out)
}

fn parse_class(s: &str) -> Result<ExtensionKind, CliError> {
    match s {
        "m" | "M" | "monotone" => Ok(ExtensionKind::Any),
        "distinct" | "mdistinct" => Ok(ExtensionKind::DomainDistinct),
        "disjoint" | "mdisjoint" => Ok(ExtensionKind::DomainDisjoint),
        other => Err(err(format!(
            "unknown class '{other}' (expected m|distinct|disjoint)"
        ))),
    }
}

/// Render the compiled query plan (`--dump-plan`) as `% `-prefixed
/// comment lines so the fact output stays machine-diffable.
fn render_plan(p: &Program) -> Result<String, CliError> {
    let report = calm_datalog::plan_report(p).map_err(|e| err(format!("plan: {e}")))?;
    let mut out = String::from("% plan:\n");
    for line in report.lines() {
        let _ = writeln!(out, "%   {line}");
    }
    Ok(out)
}

fn render_instance(i: &Instance) -> String {
    let mut out = String::new();
    for f in i.facts() {
        let _ = writeln!(out, "{f}.");
    }
    out
}

/// Usage text.
pub const USAGE: &str = "\
calm — weaker forms of monotonicity for declarative networking

USAGE:
  calm eval      <program.dl> <facts.dl> [--updates updates.dl] [--from-scratch]
                 [--eval-threads N] [--trace-out PREFIX] [--metrics]
                 [--dump-plan] [--flight-recorder PATH]
  calm wfs       <program.dl> <facts.dl> [--eval-threads N]
  calm classify  <program.dl>
  calm stratify  <program.dl>
  calm check     <program.dl> [--class m|distinct|disjoint] [--trials N]
  calm simulate  <program.dl> <facts.dl> [--nodes N] [--strategy monotone|distinct|disjoint]
                 [--engine sequential|threaded|process] [--workers N] [--procs N]
                 [--respawn-budget N] [--eval-threads N] [--faults SPEC] [--trace]
                 [--trace-out PREFIX] [--metrics] [--dump-plan] [--flight-recorder PATH]
  calm trace     report <trace.jsonl>... [--json]

  --updates FILE evaluates once, then maintains the answer
  incrementally (delete-rederive over the compiled rules, no per-batch
  re-evaluation) through the signed batches in FILE: lines '+ E(1,2).'
  insert, '- E(2,3).' delete, a line of dashes (---) separates batches,
  '%' comments. The output relations are printed initially and after
  every batch. --from-scratch re-evaluates each batch with the full
  fixpoint instead — byte-identical output by construction, which makes
  'diff' between the two modes a correctness oracle. With --metrics a
  '% maintenance:' summary line is appended in incremental mode.

  --dump-plan prints the compiled query plan — per rule, the atom join
  order and each atom's join strategy (merge join on a sorted prefix,
  hash probe, full scan, or negated lookup) — as `% ` comment lines
  before the results.

  --trace-out PREFIX writes a structured event log to PREFIX.jsonl and a
  Chrome trace (load at ui.perfetto.dev or chrome://tracing) to
  PREFIX.trace.json (missing directories in PREFIX are created);
  --metrics appends a run report to stdout.

  --flight-recorder PATH attaches the always-on flight recorder: a
  bounded ring of recent observations dumped (appended) to PATH when an
  anomaly fires — retry-budget exhaustion, wire decode failure, node
  crash, or non-quiescent termination. A clean run writes nothing; the
  dump is JSONL and feeds `calm trace report` directly.

  trace report rebuilds the happens-before message graph from one or
  more JSONL traces (--trace-out logs or flight-recorder dumps), checks
  the causal invariants (every delivery traces to its send; the causal
  graph is acyclic; causes precede effects) and prints per-link latency
  and retransmit-gap percentiles, the critical path, per-node
  queue-depth timelines and per-message-class fan-out. --json emits one
  JSON object instead. Invariant violations exit nonzero. Pass every
  PREFIX.workerK.jsonl of a process-engine run together: each worker
  traces only its half of a cross-worker message, so only the merged
  set is causally complete.

  --eval-threads N partitions every rule evaluation inside each fixpoint
  over N data-parallel worker threads. The derived database, metrics and
  printed output are byte-identical to the sequential run (N=1, the
  default) at any thread count.

  --engine threaded runs the network on the calm-net executor: nodes
  sharded over worker threads (--workers N, 0 or unset = one per core),
  quiescence detected by a Safra-style token ring. Output is identical
  to the sequential engine for coordination-free strategies. With
  --eval-threads T the run uses W network workers x T eval threads.

  --engine process runs the network as real OS processes: a coordinator
  spawns --procs N workers (0 or unset = one per core, clamped to the
  node count) that re-exec this binary as 'calm net-worker', connect
  back over loopback TCP, and exchange length-prefixed frames carrying
  the same canonical wire batches as the threaded engine. Quiescence is
  detected by the Safra token ring passing across process boundaries.
  Output is byte-identical to the sequential engine; a worker that dies
  mid-run yields a nonzero, non-quiescent exit (and a flight-recorder
  dump when attached) instead of a hang — unless supervision is on.
  With --trace-out PREFIX each worker writes PREFIX.workerK.jsonl next
  to the coordinator's PREFIX.jsonl; feed them all to 'calm trace
  report' together (respawned incarnations append .rN).

  --respawn-budget N (process engine) turns the coordinator into a
  supervisor: each worker ships periodic versioned state snapshots, and
  a dead worker is respawned up to N times (exponential backoff) with
  its shard restored from the latest retained snapshot; the reliability
  substrate replays in-flight traffic and the Safra ring re-probes in a
  fresh epoch. When the budget runs out the dead shard is adopted by
  the survivors (graceful degradation) before the run is failed. N=0
  disables supervision (the abort-on-death behavior above). Default: 3
  when the fault plan schedules pkill(...), else 0.

  --faults SPEC (threaded and process engines) runs the network through
  the seeded fault-injection + reliable-delivery substrate and prints
  the fault counters. SPEC is comma-separated clauses:
    seed=N drop=P dup=P delay=P/T link=S>D:drop=P
    partition=S>D@F..T crash=N@K~D snapshot=K retries=N backoff=T
    pkill(worker=K@step=S)   (process engine only: kill the whole
    worker process K in place of its S-th step; repeatable — a second
    clause for the same worker kills its first respawn, and so on)
  e.g. --faults 'seed=7,drop=0.2,dup=0.1,crash=1@40~25' or
  --faults 'seed=7,pkill(worker=1@step=40)'. Output is still
  byte-identical to the sequential engine.
";

/// Parse `--engine` / `--workers` / `--procs` / `--faults` values into
/// an [`Engine`]. See [`parse_engine_full`] for `--respawn-budget`.
pub fn parse_engine(
    engine: Option<&str>,
    workers: Option<&str>,
    procs: Option<&str>,
    faults: Option<&str>,
) -> Result<Engine, CliError> {
    parse_engine_full(engine, workers, procs, faults, None)
}

/// Parse `--engine` / `--workers` / `--procs` / `--faults` /
/// `--respawn-budget` values into an [`Engine`].
pub fn parse_engine_full(
    engine: Option<&str>,
    workers: Option<&str>,
    procs: Option<&str>,
    faults: Option<&str>,
    respawn_budget: Option<&str>,
) -> Result<Engine, CliError> {
    let workers_n: usize = workers
        .map(|w| w.parse().map_err(|_| err("--workers must be a number")))
        .transpose()?
        .unwrap_or(0);
    let procs_n: usize = procs
        .map(|p| p.parse().map_err(|_| err("--procs must be a number")))
        .transpose()?
        .unwrap_or(0);
    let budget: Option<u32> = respawn_budget
        .map(|b| {
            b.parse()
                .map_err(|_| err("--respawn-budget must be a number"))
        })
        .transpose()?;
    // Validate the fault spec up front for every engine; only the
    // threaded engine keeps the parsed plan (the process engine ships
    // the raw spec to its workers, which parse it themselves).
    let plan = faults
        .map(|spec| FaultPlan::parse(spec).map_err(|e| err(format!("--faults: {e}"))))
        .transpose()?;
    if respawn_budget.is_some() && engine != Some("process") {
        return Err(err("--respawn-budget requires --engine process"));
    }
    match engine.unwrap_or("sequential") {
        "sequential" => {
            if workers_n != 0 {
                return Err(err("--workers requires --engine threaded"));
            }
            if procs.is_some() {
                return Err(err("--procs requires --engine process"));
            }
            if plan.is_some() {
                return Err(err("--faults requires --engine threaded or process"));
            }
            Ok(Engine::Sequential)
        }
        "threaded" => {
            if procs.is_some() {
                return Err(err("--procs requires --engine process"));
            }
            if plan.as_ref().is_some_and(|p| !p.pkills.is_empty()) {
                return Err(err(
                    "--faults: pkill(...) schedules a process kill and requires --engine process",
                ));
            }
            Ok(Engine::Threaded {
                workers: workers_n,
                faults: plan,
            })
        }
        "process" => {
            if workers.is_some() {
                return Err(err(
                    "--workers requires --engine threaded (use --procs with --engine process)",
                ));
            }
            Ok(Engine::Process {
                procs: procs_n,
                faults: faults.map(String::from),
                respawn_budget: budget,
            })
        }
        other => Err(err(format!(
            "unknown engine '{other}' (expected sequential|threaded|process)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).";
    const QTC: &str = "@output O.\nAdom(x) :- E(x,y).\nAdom(y) :- E(x,y).\n\
                       T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\n\
                       O(x,y) :- Adom(x), Adom(y), not T(x,y).";
    const FACTS: &str = "E(1,2). E(2,3).";

    #[test]
    fn eval_prints_facts() {
        let out = cmd_eval(TC, FACTS).unwrap();
        assert!(out.contains("T(1,2)."));
        assert!(out.contains("T(1,3)."));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn dump_plan_prints_strategies_before_results() {
        let opts = ObsOptions {
            trace_out: None,
            metrics: false,
            dump_plan: true,
            ..Default::default()
        };
        let out = cmd_eval_opts(QTC, FACTS, &opts).unwrap();
        assert!(out.contains("% plan:"), "{out}");
        // The recursive TC rule gets a merge join on the sorted prefix.
        assert!(out.contains("merge@0"), "{out}");
        // Negated atoms show up as lookups in the stratified plan.
        assert!(out.contains("not T[lookup]"), "{out}");
        // The plan precedes the results, which stay intact.
        let plan_at = out.find("% plan:").unwrap();
        let fact_at = out.find("O(").unwrap();
        assert!(plan_at < fact_at, "{out}");

        let sim = cmd_simulate_full(TC, FACTS, 2, "monotone", false, &opts).unwrap();
        assert!(sim.contains("% plan:"), "{sim}");
        assert!(sim.contains("merge@0"), "{sim}");
        assert!(
            sim.contains("% matches centralized evaluation: true"),
            "{sim}"
        );
    }

    #[test]
    fn eval_updates_matches_from_scratch() {
        let updates = "- E(2,3).\n---\n+ E(2,3).\n+ E(3,1).\n---\n- E(1,2).\n";
        let opts = ObsOptions::default();
        // Stratified-negation program through three batches: the
        // incremental and from-scratch modes must print byte-identical
        // output (the CLI half of the differential oracle).
        let inc = cmd_eval_updates(QTC, FACTS, updates, false, &opts, 1).unwrap();
        let scratch = cmd_eval_updates(QTC, FACTS, updates, true, &opts, 1).unwrap();
        assert_eq!(inc, scratch);
        assert!(inc.contains("% initial"));
        assert!(inc.contains("% after batch 3"));
        // --metrics appends the maintenance summary in incremental mode.
        let m = ObsOptions {
            metrics: true,
            ..Default::default()
        };
        let with_stats = cmd_eval_updates(TC, FACTS, updates, false, &m, 1).unwrap();
        assert!(
            with_stats.contains("% maintenance: 3 batches"),
            "{with_stats}"
        );
        // Bad update syntax is a CliError, not a panic.
        assert!(cmd_eval_updates(TC, FACTS, "E(1,2).", false, &opts, 1).is_err());
    }

    #[test]
    fn wfs_reports_undefined() {
        let out = cmd_wfs("win(x) :- move(x,y), not win(y).", "move(1,2). move(2,1).").unwrap();
        assert!(out.contains("% undefined"));
        assert!(out.contains("win(1)."));
    }

    #[test]
    fn classify_places_programs() {
        let out = cmd_classify(TC).unwrap();
        assert!(out.contains("Datalog (positive)       yes"));
        assert!(out.contains("F0"));
        let out = cmd_classify(QTC).unwrap();
        assert!(out.contains("semicon-Datalog^not      yes"));
        assert!(out.contains("F2"));
        let out = cmd_classify("win(x) :- move(x,y), not win(y).").unwrap();
        assert!(out.contains("well-founded"));
    }

    #[test]
    fn stratify_prints_strata() {
        let out = cmd_stratify(QTC).unwrap();
        assert!(out.contains("stratum 1: T"));
        assert!(out.contains("stratum 2: O"));
        assert!(out.contains("-- P2 --"));
    }

    #[test]
    fn check_finds_qtc_counterexample() {
        let out = cmd_check(QTC, "distinct", 50).unwrap();
        assert!(out.contains("NOT in Mdistinct"), "{out}");
        let out = cmd_check(TC, "m", 50).unwrap();
        assert!(out.contains("consistent with M"));
    }

    #[test]
    fn simulate_matches_centralized() {
        let out = cmd_simulate(TC, FACTS, 3, "monotone").unwrap();
        assert!(
            out.contains("% matches centralized evaluation: true"),
            "{out}"
        );
        let out = cmd_simulate(QTC, FACTS, 2, "disjoint").unwrap();
        assert!(
            out.contains("% matches centralized evaluation: true"),
            "{out}"
        );
    }

    #[test]
    fn simulate_with_trace_prints_events() {
        let out = cmd_simulate_opts(TC, FACTS, 2, "monotone", true).unwrap();
        assert!(out.contains("% trace"));
        assert!(out.contains("delivered="));
        assert!(out.contains("% matches centralized evaluation: true"));
    }

    #[test]
    fn eval_with_metrics_appends_report() {
        let opts = ObsOptions {
            trace_out: None,
            metrics: true,
            dump_plan: false,
            ..Default::default()
        };
        let out = cmd_eval_opts(TC, FACTS, &opts).unwrap();
        assert!(out.contains("T(1,3)."), "{out}");
        assert!(out.contains("== run report =="), "{out}");
        assert!(out.contains("eval/derivations"), "{out}");
    }

    #[test]
    fn simulate_trace_out_writes_artifacts() {
        let prefix = std::env::temp_dir().join(format!("calm-cli-sim-{}", std::process::id()));
        let opts = ObsOptions {
            trace_out: Some(prefix.clone()),
            metrics: true,
            dump_plan: false,
            ..Default::default()
        };
        let out = cmd_simulate_full(TC, FACTS, 2, "monotone", true, &opts).unwrap();
        assert!(out.contains("% trace"), "{out}");
        assert!(
            out.contains("% matches centralized evaluation: true"),
            "{out}"
        );
        assert!(out.contains("== run report =="), "{out}");
        assert!(out.contains("strategy/messages.fact"), "{out}");
        assert!(out.contains("% message classes:"), "{out}");
        let jsonl_path = trace_path(&prefix, "jsonl");
        let chrome_path = trace_path(&prefix, "trace.json");
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let chrome = std::fs::read_to_string(&chrome_path).unwrap();
        let chrome = chrome.trim();
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        // The runtime layer emits instants and counters (spans come from
        // the eval layer, which strategies drive internally un-observed).
        assert!(chrome.contains("\"ph\":\"i\""), "instant events present");
        assert!(chrome.contains("\"ph\":\"C\""), "counter events present");
        let _ = std::fs::remove_file(jsonl_path);
        let _ = std::fs::remove_file(chrome_path);
    }

    #[test]
    fn trace_out_to_bad_path_is_a_friendly_error() {
        // A prefix whose parent is a regular file can never be created;
        // the error must name the flag and the offending directory.
        let blocker = std::env::temp_dir().join(format!("calm-cli-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let opts = ObsOptions {
            trace_out: Some(blocker.join("trace")),
            metrics: false,
            dump_plan: false,
            ..Default::default()
        };
        let e = cmd_eval_opts(TC, FACTS, &opts).unwrap_err();
        assert!(e.0.contains("--trace-out"), "{e}");
        assert!(e.0.contains("cannot create directory"), "{e}");
        assert!(e.0.contains(&blocker.display().to_string()), "{e}");
        let _ = std::fs::remove_file(blocker);
    }

    #[test]
    fn trace_out_creates_missing_parent_directories() {
        let root = std::env::temp_dir().join(format!("calm-cli-mkdir-{}", std::process::id()));
        let prefix = root.join("nested").join("run").join("trace");
        let opts = ObsOptions {
            trace_out: Some(prefix.clone()),
            metrics: false,
            dump_plan: false,
            ..Default::default()
        };
        let out = cmd_eval_opts(TC, FACTS, &opts).unwrap();
        assert!(out.contains("T(1,3)."), "{out}");
        let jsonl = std::fs::read_to_string(trace_path(&prefix, "jsonl")).unwrap();
        assert!(!jsonl.is_empty());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn eval_threads_produce_identical_output() {
        let opts = ObsOptions::default();
        let seq = cmd_eval(QTC, FACTS).unwrap();
        for threads in [2, 8] {
            let par = cmd_eval_full(QTC, FACTS, &opts, threads).unwrap();
            assert_eq!(seq, par, "eval --eval-threads {threads} diverged");
        }
    }

    #[test]
    fn wfs_threads_produce_identical_output() {
        let program = "win(x) :- move(x,y), not win(y).";
        let facts = "move(1,2). move(2,1). move(2,3).";
        let seq = cmd_wfs(program, facts).unwrap();
        for threads in [2, 8] {
            let par = cmd_wfs_opts(program, facts, threads).unwrap();
            assert_eq!(seq, par, "wfs --eval-threads {threads} diverged");
        }
    }

    #[test]
    fn simulate_eval_threads_prints_knob_and_matches() {
        let opts = ObsOptions::default();
        // Sequential engine with data-parallel node fixpoints.
        let out = cmd_simulate_run(
            QTC,
            FACTS,
            2,
            "disjoint",
            false,
            &opts,
            Engine::Sequential,
            4,
        )
        .unwrap();
        assert!(out.contains("% eval threads: 4"), "{out}");
        assert!(
            out.contains("% matches centralized evaluation: true"),
            "{out}"
        );
        // Threaded engine: W network workers x T eval threads.
        let thr = cmd_simulate_run(
            TC,
            FACTS,
            3,
            "monotone",
            false,
            &opts,
            Engine::Threaded {
                workers: 2,
                faults: None,
            },
            4,
        )
        .unwrap();
        assert!(thr.contains("% eval threads: 4"), "{thr}");
        assert!(thr.contains("% engine: threaded, workers: 2"), "{thr}");
        assert!(
            thr.contains("% matches centralized evaluation: true"),
            "{thr}"
        );
        // eval_threads = 1 stays silent.
        let one = cmd_simulate(TC, FACTS, 2, "monotone").unwrap();
        assert!(!one.contains("% eval threads:"), "{one}");
    }

    #[test]
    fn simulate_chaos_with_eval_threads_matches_sequential_oracle() {
        // The end-to-end acceptance run: 8 network workers x 4 eval
        // threads under 5% message loss must match the sequential
        // oracle byte for byte (modulo '%' diagnostic lines).
        let opts = ObsOptions::default();
        let facts = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('%'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        for (program, strategy) in [(TC, "monotone"), (QTC, "disjoint")] {
            let seq = cmd_simulate(program, FACTS, 4, strategy).unwrap();
            let engine =
                parse_engine(Some("threaded"), Some("8"), None, Some("seed=3,drop=0.05")).unwrap();
            let thr =
                cmd_simulate_run(program, FACTS, 4, strategy, false, &opts, engine, 4).unwrap();
            assert!(thr.contains("% quiescent: true"), "{strategy}: {thr}");
            assert!(thr.contains("% fault stats:"), "{strategy}: {thr}");
            assert!(thr.contains("% eval threads: 4"), "{strategy}: {thr}");
            assert_eq!(facts(&seq), facts(&thr), "{strategy}: chaos run diverged");
        }
    }

    #[test]
    fn simulate_threaded_matches_centralized() {
        let opts = ObsOptions {
            trace_out: None,
            metrics: false,
            dump_plan: false,
            ..Default::default()
        };
        for strategy in ["monotone", "distinct"] {
            for workers in [1, 2, 8] {
                let out = cmd_simulate_engine(
                    TC,
                    FACTS,
                    3,
                    strategy,
                    false,
                    &opts,
                    Engine::Threaded {
                        workers,
                        faults: None,
                    },
                )
                .unwrap();
                assert!(
                    out.contains("% matches centralized evaluation: true"),
                    "{strategy} x{workers}: {out}"
                );
                assert!(out.contains("% engine: threaded, workers:"), "{out}");
                assert!(out.contains("% quiescent: true"), "{out}");
                assert!(out.contains("token passes:"), "{out}");
            }
        }
        let out = cmd_simulate_engine(
            QTC,
            FACTS,
            2,
            "disjoint",
            false,
            &opts,
            Engine::Threaded {
                workers: 2,
                faults: None,
            },
        )
        .unwrap();
        assert!(
            out.contains("% matches centralized evaluation: true"),
            "{out}"
        );
    }

    #[test]
    fn simulate_threaded_output_equals_sequential_output() {
        let opts = ObsOptions {
            trace_out: None,
            metrics: false,
            dump_plan: false,
            ..Default::default()
        };
        let seq = cmd_simulate(TC, FACTS, 4, "monotone").unwrap();
        let thr = cmd_simulate_engine(
            TC,
            FACTS,
            4,
            "monotone",
            false,
            &opts,
            Engine::Threaded {
                workers: 2,
                faults: None,
            },
        )
        .unwrap();
        // Rendered facts (lines not starting with '%') must be identical.
        let facts = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('%'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(facts(&seq), facts(&thr));
    }

    #[test]
    fn simulate_threaded_with_metrics_writes_artifacts() {
        let prefix = std::env::temp_dir().join(format!("calm-cli-sim-thr-{}", std::process::id()));
        let opts = ObsOptions {
            trace_out: Some(prefix.clone()),
            metrics: true,
            dump_plan: false,
            ..Default::default()
        };
        let out = cmd_simulate_engine(
            TC,
            FACTS,
            3,
            "monotone",
            false,
            &opts,
            Engine::Threaded {
                workers: 2,
                faults: None,
            },
        )
        .unwrap();
        assert!(out.contains("== run report =="), "{out}");
        assert!(out.contains("% message classes:"), "{out}");
        let jsonl_path = trace_path(&prefix, "jsonl");
        let chrome_path = trace_path(&prefix, "trace.json");
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        assert!(jsonl.contains("executor_start"), "executor event traced");
        assert!(jsonl.contains("termination"), "termination event traced");
        let _ = std::fs::remove_file(jsonl_path);
        let _ = std::fs::remove_file(chrome_path);
    }

    #[test]
    fn parse_engine_accepts_and_rejects() {
        assert_eq!(
            parse_engine(None, None, None, None).unwrap(),
            Engine::Sequential
        );
        assert_eq!(
            parse_engine(Some("sequential"), None, None, None).unwrap(),
            Engine::Sequential
        );
        assert_eq!(
            parse_engine(Some("threaded"), None, None, None).unwrap(),
            Engine::Threaded {
                workers: 0,
                faults: None
            }
        );
        assert_eq!(
            parse_engine(Some("threaded"), Some("4"), None, None).unwrap(),
            Engine::Threaded {
                workers: 4,
                faults: None
            }
        );
        assert!(parse_engine(Some("warp"), None, None, None).is_err());
        assert!(parse_engine(Some("threaded"), Some("two"), None, None).is_err());
        assert!(parse_engine(Some("sequential"), Some("4"), None, None).is_err());
    }

    #[test]
    fn parse_engine_accepts_and_rejects_process() {
        assert_eq!(
            parse_engine(Some("process"), None, None, None).unwrap(),
            Engine::Process {
                procs: 0,
                faults: None,
                respawn_budget: None
            }
        );
        assert_eq!(
            parse_engine(Some("process"), None, Some("4"), None).unwrap(),
            Engine::Process {
                procs: 4,
                faults: None,
                respawn_budget: None
            }
        );
        // The process engine carries the raw (validated) fault spec.
        assert_eq!(
            parse_engine(Some("process"), None, Some("2"), Some("seed=7,drop=0.1")).unwrap(),
            Engine::Process {
                procs: 2,
                faults: Some("seed=7,drop=0.1".into()),
                respawn_budget: None
            }
        );
        // …but a malformed spec is still rejected at parse time.
        let e = parse_engine(Some("process"), None, None, Some("warp=0.5")).unwrap_err();
        assert!(e.0.contains("--faults:"), "{e}");
        // Flag/engine mismatches are named.
        let e = parse_engine(Some("process"), Some("4"), None, None).unwrap_err();
        assert!(e.0.contains("--procs"), "{e}");
        let e = parse_engine(Some("threaded"), None, Some("4"), None).unwrap_err();
        assert!(e.0.contains("--procs requires --engine process"), "{e}");
        let e = parse_engine(Some("sequential"), None, Some("4"), None).unwrap_err();
        assert!(e.0.contains("--procs requires --engine process"), "{e}");
        assert!(parse_engine(Some("process"), None, Some("two"), None).is_err());
    }

    #[test]
    fn parse_engine_handles_fault_specs() {
        // A well-formed spec parses into a plan carried by the engine.
        match parse_engine(
            Some("threaded"),
            Some("2"),
            None,
            Some("seed=7,drop=0.2,dup=0.1"),
        )
        .unwrap()
        {
            Engine::Threaded {
                workers: 2,
                faults: Some(plan),
            } => {
                assert_eq!(plan.seed, 7);
                assert!(plan.injects_faults());
            }
            other => panic!("unexpected engine {other:?}"),
        }
        // Faults require an engine with a wire to break.
        let e = parse_engine(None, None, None, Some("drop=0.2")).unwrap_err();
        assert!(e.0.contains("--faults requires --engine threaded"), "{e}");
        let e = parse_engine(Some("sequential"), None, None, Some("drop=0.2")).unwrap_err();
        assert!(e.0.contains("--faults requires --engine threaded"), "{e}");
        // Malformed specs surface the parser's message.
        let e = parse_engine(Some("threaded"), None, None, Some("warp=0.5")).unwrap_err();
        assert!(e.0.contains("--faults:"), "{e}");
        assert!(e.0.contains("unknown fault key"), "{e}");
    }

    #[test]
    fn simulate_threaded_with_faults_matches_centralized() {
        let opts = ObsOptions {
            trace_out: None,
            metrics: false,
            dump_plan: false,
            ..Default::default()
        };
        // A lossy, duplicating, crashing network must still converge to
        // the centralized answer, and the run must report fault counters.
        for (strategy, program) in [("monotone", TC), ("distinct", TC), ("disjoint", QTC)] {
            let engine = parse_engine(
                Some("threaded"),
                Some("2"),
                None,
                Some("seed=11,drop=0.15,dup=0.1,crash=1@12~10,snapshot=3"),
            )
            .unwrap();
            let out = cmd_simulate_engine(program, FACTS, 2, strategy, false, &opts, engine)
                .expect(strategy);
            assert!(
                out.contains("% matches centralized evaluation: true"),
                "{strategy}: {out}"
            );
            assert!(out.contains("% quiescent: true"), "{strategy}: {out}");
            assert!(out.contains("% fault stats:"), "{strategy}: {out}");
            assert!(out.contains("attempts="), "{strategy}: {out}");
        }
        // Without --faults no fault-stats line is printed.
        let out = cmd_simulate_engine(
            TC,
            FACTS,
            2,
            "monotone",
            false,
            &opts,
            Engine::Threaded {
                workers: 2,
                faults: None,
            },
        )
        .unwrap();
        assert!(!out.contains("% fault stats:"), "{out}");
    }

    #[test]
    fn simulate_rejects_unknown_strategy() {
        assert!(cmd_simulate(TC, FACTS, 2, "quantum").is_err());
    }

    #[test]
    fn simulate_rejects_zero_nodes() {
        let e = cmd_simulate(TC, FACTS, 0, "monotone").unwrap_err();
        assert!(e.0.contains("at least 1"));
    }

    #[test]
    fn trace_report_reconstructs_faulty_threaded_run() {
        // The acceptance run: a threaded execution under 5% message loss
        // traced to JSONL must yield a complete, acyclic happens-before
        // graph — and the report must surface link latencies and a
        // critical path ending at a causal root.
        let prefix = std::env::temp_dir().join(format!("calm-cli-trpt-{}", std::process::id()));
        let opts = ObsOptions {
            trace_out: Some(prefix.clone()),
            metrics: false,
            dump_plan: false,
            ..Default::default()
        };
        let engine =
            parse_engine(Some("threaded"), Some("4"), None, Some("seed=5,drop=0.05")).unwrap();
        let out = cmd_simulate_run(TC, FACTS, 4, "monotone", false, &opts, engine, 1).unwrap();
        assert!(out.contains("% quiescent: true"), "{out}");
        let jsonl_path = trace_path(&prefix, "jsonl");
        let report = cmd_trace_report(std::slice::from_ref(&jsonl_path), false).unwrap();
        assert!(report.contains("== trace report =="), "{report}");
        assert!(report.contains("invariants: ok"), "{report}");
        assert!(report.contains("links (origin -> dst):"), "{report}");
        assert!(report.contains("latency us p50="), "{report}");
        assert!(report.contains("critical path ("), "{report}");
        assert!(report.contains("fan-out per message class:"), "{report}");
        // The machine form parses as one JSON object and agrees.
        let json = cmd_trace_report(std::slice::from_ref(&jsonl_path), true).unwrap();
        let v = calm_obs::parse_json(json.trim()).unwrap();
        assert_eq!(
            v.get("invariants")
                .and_then(|i| i.get("ok"))
                .and_then(calm_obs::JsonValue::as_bool),
            Some(true),
            "{json}"
        );
        assert!(
            v.get("events")
                .and_then(|e| e.get("sends"))
                .and_then(calm_obs::JsonValue::as_u64)
                .unwrap_or(0)
                > 0,
            "{json}"
        );
        let _ = std::fs::remove_file(jsonl_path);
        let _ = std::fs::remove_file(trace_path(&prefix, "trace.json"));
    }

    #[test]
    fn trace_report_merges_multiple_files() {
        // Split one run's trace across two files — the shape of a
        // process-engine run, where each worker's file holds only its
        // half of every cross-worker message. Each half alone tears the
        // causal graph; the merged pair must reconstruct it exactly as
        // the single file does.
        let prefix = std::env::temp_dir().join(format!("calm-cli-merge-{}", std::process::id()));
        let opts = ObsOptions {
            trace_out: Some(prefix.clone()),
            ..Default::default()
        };
        let engine =
            parse_engine(Some("threaded"), Some("4"), None, Some("seed=8,drop=0.05")).unwrap();
        let out = cmd_simulate_run(TC, FACTS, 4, "monotone", false, &opts, engine, 1).unwrap();
        assert!(out.contains("% quiescent: true"), "{out}");
        let jsonl_path = trace_path(&prefix, "jsonl");
        let whole = cmd_trace_report(std::slice::from_ref(&jsonl_path), true).unwrap();
        let text = std::fs::read_to_string(&jsonl_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let (a, b) = (
            trace_path(&prefix, "worker0.jsonl"),
            trace_path(&prefix, "worker1.jsonl"),
        );
        let half: Vec<String> = lines.iter().step_by(2).map(|l| format!("{l}\n")).collect();
        let other: Vec<String> = lines
            .iter()
            .skip(1)
            .step_by(2)
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&a, half.concat()).unwrap();
        std::fs::write(&b, other.concat()).unwrap();
        let merged = cmd_trace_report(&[a.clone(), b.clone()], true).unwrap();
        assert_eq!(merged, whole, "merged halves must equal the whole");
        // And the empty path list is a friendly error.
        let e = cmd_trace_report(&[], false).unwrap_err();
        assert!(e.0.contains("at least one trace file"), "{e}");
        for p in [jsonl_path, a, b, trace_path(&prefix, "trace.json")] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn trace_report_rejects_violated_traces() {
        let path = std::env::temp_dir().join(format!("calm-cli-bad-trace-{}", std::process::id()));
        // A delivery with no matching send: the causal graph is torn.
        std::fs::write(
            &path,
            "{\"type\":\"event\",\"cat\":\"trace\",\"name\":\"deliver\",\"track\":1,\"ts_us\":5,\
             \"args\":{\"origin\":3,\"seq\":9,\"dst\":0,\"facts\":1}}\n",
        )
        .unwrap();
        let e = cmd_trace_report(std::slice::from_ref(&path), false).unwrap_err();
        assert!(e.0.contains("trace invariants violated"), "{e}");
        assert!(e.0.contains("no matching send"), "{e}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn flight_recorder_dumps_on_retry_exhaustion_and_stays_silent_when_clean() {
        let dump =
            std::env::temp_dir().join(format!("calm-cli-flight-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&dump);
        let opts = ObsOptions {
            flight_recorder: Some(dump.clone()),
            ..Default::default()
        };
        // A clean threaded run must not write a dump file at all.
        let out = cmd_simulate_run(
            TC,
            FACTS,
            3,
            "monotone",
            false,
            &opts,
            Engine::Threaded {
                workers: 2,
                faults: None,
            },
            1,
        )
        .unwrap();
        assert!(out.contains("% quiescent: true"), "{out}");
        assert!(!dump.exists(), "clean run must not dump");
        // A link that drops every copy exhausts its retry budget: the
        // anomaly must leave a post-mortem JSONL artifact that `calm
        // trace report` ingests.
        let engine = parse_engine(
            Some("threaded"),
            Some("2"),
            None,
            Some("seed=9,link=0>1:drop=1.0,retries=2,backoff=1"),
        )
        .unwrap();
        let _ = cmd_simulate_run(TC, FACTS, 3, "monotone", false, &opts, engine, 1).unwrap();
        let text = std::fs::read_to_string(&dump).expect("anomaly dump written");
        assert!(text.contains("\"type\":\"flight_dump\""), "{text}");
        assert!(text.contains("retry_exhausted"), "{text}");
        let report = cmd_trace_report(std::slice::from_ref(&dump), false).unwrap();
        assert!(report.contains("flight-recorder dumps:"), "{report}");
        let _ = std::fs::remove_file(dump);
    }

    #[test]
    fn errors_are_friendly() {
        assert!(cmd_eval("T(x) :-", FACTS).is_err());
        assert!(cmd_eval(TC, "E(x, ").is_err());
        assert!(cmd_check(TC, "bogus", 1).is_err());
    }
}
