//! End-to-end tests of `--engine process` with genuine OS worker
//! processes: the coordinator re-execs the `calm` binary as `calm
//! net-worker` for each shard, exactly as a user's run does. The
//! hermetic (thread-backed, same TCP transport) equivalence suite
//! lives in `crates/net/tests/process.rs`; this file covers what only
//! a real process tree can — binary re-exec, job hand-off of program
//! and facts by value over the wire, per-worker trace files, and a
//! worker killed mid-run.

use std::path::PathBuf;
use std::process::Command;

const TC: &str = "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\n";
const QTC: &str = "@output O.\nAdom(x) :- E(x,y).\nAdom(y) :- E(x,y).\n\
                   T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\n\
                   O(x,y) :- Adom(x), Adom(y), not T(x,y).\n";
const FACTS: &str = "E(1,2). E(2,3). E(3,4).\n";

fn calm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_calm"))
}

struct Inputs {
    dir: PathBuf,
    program: String,
    facts: String,
}

impl Drop for Inputs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn write_inputs(tag: &str, program: &str) -> Inputs {
    let dir = std::env::temp_dir().join(format!("calm-cli-proc-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("program.dl");
    let f = dir.join("facts.dl");
    std::fs::write(&p, program).unwrap();
    std::fs::write(&f, FACTS).unwrap();
    Inputs {
        dir,
        program: p.display().to_string(),
        facts: f.display().to_string(),
    }
}

/// The rendered facts: every stdout line that is not a `% ` diagnostic.
fn fact_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| !l.starts_with('%'))
        .map(String::from)
        .collect()
}

#[test]
fn process_engine_matches_sequential_for_every_family() {
    for (tag, program, strategy) in [
        ("m", TC, "monotone"),
        ("d", TC, "distinct"),
        ("j", QTC, "disjoint"),
    ] {
        let inputs = write_inputs(tag, program);
        let seq = calm()
            .args([
                "simulate",
                &inputs.program,
                &inputs.facts,
                "--nodes",
                "4",
                "--strategy",
                strategy,
            ])
            .output()
            .unwrap();
        assert!(seq.status.success(), "{strategy}: sequential run failed");
        let seq_out = String::from_utf8(seq.stdout).unwrap();
        assert!(
            seq_out.contains("% matches centralized evaluation: true"),
            "{strategy}: {seq_out}"
        );
        for procs in ["2", "4"] {
            let run = calm()
                .args([
                    "simulate",
                    &inputs.program,
                    &inputs.facts,
                    "--nodes",
                    "4",
                    "--strategy",
                    strategy,
                    "--engine",
                    "process",
                    "--procs",
                    procs,
                ])
                .output()
                .unwrap();
            let stderr = String::from_utf8_lossy(&run.stderr).to_string();
            assert!(run.status.success(), "{strategy} x{procs}: {stderr}");
            let out = String::from_utf8(run.stdout).unwrap();
            assert!(
                out.contains(&format!("% engine: process, procs: {procs}")),
                "{strategy} x{procs}: {out}"
            );
            assert!(
                out.contains("% quiescent: true"),
                "{strategy} x{procs}: {out}"
            );
            assert!(out.contains("token passes:"), "{strategy} x{procs}: {out}");
            assert!(
                out.contains("% matches centralized evaluation: true"),
                "{strategy} x{procs}: {out}"
            );
            assert_eq!(
                fact_lines(&seq_out),
                fact_lines(&out),
                "{strategy} x{procs}: process output differs from sequential"
            );
        }
    }
}

#[test]
fn process_engine_runs_fault_plans_end_to_end() {
    let inputs = write_inputs("faults", TC);
    let seq = calm()
        .args([
            "simulate",
            &inputs.program,
            &inputs.facts,
            "--nodes",
            "4",
            "--strategy",
            "monotone",
        ])
        .output()
        .unwrap();
    assert!(seq.status.success());
    let seq_out = String::from_utf8(seq.stdout).unwrap();
    let run = calm()
        .args([
            "simulate",
            &inputs.program,
            &inputs.facts,
            "--nodes",
            "4",
            "--strategy",
            "monotone",
            "--engine",
            "process",
            "--procs",
            "2",
            "--faults",
            "seed=7,drop=0.1,dup=0.05",
        ])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let out = String::from_utf8(run.stdout).unwrap();
    assert!(out.contains("% fault stats:"), "{out}");
    assert!(out.contains("attempts="), "{out}");
    assert!(out.contains("% quiescent: true"), "{out}");
    assert_eq!(
        fact_lines(&seq_out),
        fact_lines(&out),
        "faulty run diverged"
    );
}

#[test]
fn killed_worker_exits_nonzero_with_flight_dump_instead_of_hanging() {
    // CALM_NET_WORKER_DIE=1 makes worker 1 exit(3) right after the
    // handshake — the socket-level signature of a `kill -9` mid-run.
    // The coordinator must come back (not hang on the headless token
    // ring), name the dead worker, exit nonzero, and leave a
    // flight-recorder dump.
    let inputs = write_inputs("kill", TC);
    let dump = inputs.dir.join("flight.jsonl");
    let prefix = inputs.dir.join("trace");
    let run = calm()
        .args([
            "simulate",
            &inputs.program,
            &inputs.facts,
            "--nodes",
            "4",
            "--strategy",
            "monotone",
            "--engine",
            "process",
            "--procs",
            "3",
            "--flight-recorder",
            &dump.display().to_string(),
            "--trace-out",
            &prefix.display().to_string(),
        ])
        .env("CALM_NET_WORKER_DIE", "1")
        .output()
        .unwrap();
    assert!(!run.status.success(), "a lost worker must exit nonzero");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("worker(s) 1 died mid-run"), "{stderr}");
    assert!(stderr.contains("not quiescent"), "{stderr}");
    let text = std::fs::read_to_string(&dump).expect("flight dump written");
    assert!(text.contains("\"type\":\"flight_dump\""), "{text}");
    assert!(text.contains("worker_down"), "{text}");
    // The dying worker flushes its own trace before exit(3): the file
    // must exist, record the `worker_die` event, and every line must be
    // a complete JSONL record — no torn tail from an unflushed buffer.
    let died = std::fs::read_to_string(inputs.dir.join("trace.worker1.jsonl"))
        .expect("dying worker flushed its trace");
    assert!(died.contains("worker_die"), "{died}");
    assert!(died.ends_with('\n'), "trace file has a torn final line");
    for line in died.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"type\":"),
            "malformed JSONL line in dying worker's trace: {line}"
        );
    }
}

#[test]
fn pkill_plan_respawns_workers_and_matches_sequential() {
    // The acceptance run: two scripted process kills under --procs 4,
    // supervised respawn + restore, byte-identical output, exit 0.
    let inputs = write_inputs("pkill", TC);
    let seq = calm()
        .args([
            "simulate",
            &inputs.program,
            &inputs.facts,
            "--nodes",
            "4",
            "--strategy",
            "monotone",
        ])
        .output()
        .unwrap();
    assert!(seq.status.success());
    let seq_out = String::from_utf8(seq.stdout).unwrap();
    let run = calm()
        .args([
            "simulate",
            &inputs.program,
            &inputs.facts,
            "--nodes",
            "4",
            "--strategy",
            "monotone",
            "--engine",
            "process",
            "--procs",
            "4",
            "--faults",
            "seed=7,pkill(worker=1@step=3),pkill(worker=2@step=6)",
        ])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let out = String::from_utf8(run.stdout).unwrap();
    assert!(out.contains("% quiescent: true"), "{out}");
    assert!(out.contains("% supervision: respawns: 2"), "{out}");
    assert!(
        out.contains("% matches centralized evaluation: true"),
        "{out}"
    );
    assert_eq!(
        fact_lines(&seq_out),
        fact_lines(&out),
        "supervised run with kills diverged from sequential"
    );
}

#[test]
fn respawn_budget_zero_turns_a_pkill_into_a_hard_failure() {
    // Same kill plan, no budget: the supervisor may not respawn, so the
    // worker's death is terminal — nonzero exit and a flight dump.
    let inputs = write_inputs("budget0", TC);
    let dump = inputs.dir.join("flight.jsonl");
    let run = calm()
        .args([
            "simulate",
            &inputs.program,
            &inputs.facts,
            "--nodes",
            "4",
            "--strategy",
            "monotone",
            "--engine",
            "process",
            "--procs",
            "2",
            "--faults",
            "seed=7,pkill(worker=1@step=3)",
            "--respawn-budget",
            "0",
            "--flight-recorder",
            &dump.display().to_string(),
        ])
        .output()
        .unwrap();
    assert!(
        !run.status.success(),
        "budget 0 must make a killed worker fatal"
    );
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("worker(s) 1 died mid-run"), "{stderr}");
    let text = std::fs::read_to_string(&dump).expect("flight dump written");
    assert!(text.contains("\"type\":\"flight_dump\""), "{text}");
}

#[test]
fn per_worker_traces_merge_into_one_causally_complete_report() {
    let inputs = write_inputs("trace", TC);
    let prefix = inputs.dir.join("trace");
    let run = calm()
        .args([
            "simulate",
            &inputs.program,
            &inputs.facts,
            "--nodes",
            "4",
            "--strategy",
            "monotone",
            "--engine",
            "process",
            "--procs",
            "2",
            "--trace-out",
            &prefix.display().to_string(),
        ])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    // The coordinator writes PREFIX.jsonl; each worker writes its own
    // PREFIX.workerK.jsonl (suffixed by the coordinator in the Assign).
    let coord = inputs.dir.join("trace.jsonl");
    let w0 = inputs.dir.join("trace.worker0.jsonl");
    let w1 = inputs.dir.join("trace.worker1.jsonl");
    for p in [&coord, &w0, &w1] {
        let text = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("missing trace file {}: {e}", p.display()));
        assert!(!text.is_empty(), "{} is empty", p.display());
    }
    // One worker's file alone is causally torn: it records deliveries
    // of messages whose sends live in the *other* worker's file.
    let solo = calm()
        .args(["trace", "report", &w0.display().to_string()])
        .output()
        .unwrap();
    assert!(
        !solo.status.success(),
        "a lone worker trace must fail the causal invariants"
    );
    assert!(
        String::from_utf8_lossy(&solo.stderr).contains("no matching send"),
        "{}",
        String::from_utf8_lossy(&solo.stderr)
    );
    // Merged, the happens-before graph is whole again.
    let merged = calm()
        .args([
            "trace",
            "report",
            &coord.display().to_string(),
            &w0.display().to_string(),
            &w1.display().to_string(),
        ])
        .output()
        .unwrap();
    assert!(
        merged.status.success(),
        "{}",
        String::from_utf8_lossy(&merged.stderr)
    );
    let report = String::from_utf8(merged.stdout).unwrap();
    assert!(report.contains("invariants: ok"), "{report}");
    assert!(report.contains("links (origin -> dst):"), "{report}");
}
