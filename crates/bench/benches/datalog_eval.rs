//! E18 — Datalog engine benchmark: naive vs. semi-naive fixpoint on
//! transitive closure over structured and random graphs, plus stratified
//! Q_TC end-to-end.

use calm_bench::harness::{BenchmarkId, Criterion};
use calm_bench::workloads::{scaling_graph, structured};
use calm_bench::{criterion_group, criterion_main};
use calm_common::query::Query;
use calm_datalog::eval::{eval_program_with, Engine};
use calm_datalog::parse_program;

fn tc_program() -> calm_datalog::Program {
    parse_program("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).").unwrap()
}

fn bench_tc_engines(c: &mut Criterion) {
    let p = tc_program();
    let mut group = c.benchmark_group("tc_engines");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for kind in ["chain", "cycle", "grid"] {
        for n in [16usize, 32, 64] {
            let input = structured(kind, n);
            group.bench_with_input(
                BenchmarkId::new(format!("seminaive/{kind}"), n),
                &input,
                |b, input| b.iter(|| eval_program_with(&p, input, Engine::SemiNaive).unwrap()),
            );
            if n > 32 {
                continue; // naive and unindexed baselines explode past 32
            }
            group.bench_with_input(
                BenchmarkId::new(format!("seminaive-baseline/{kind}"), n),
                &input,
                |b, input| {
                    b.iter(|| eval_program_with(&p, input, Engine::SemiNaiveBaseline).unwrap())
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("naive/{kind}"), n),
                &input,
                |b, input| b.iter(|| eval_program_with(&p, input, Engine::Naive).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_random_graphs(c: &mut Criterion) {
    let p = tc_program();
    let mut group = c.benchmark_group("tc_random");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [16usize, 32, 64] {
        let input = scaling_graph(18, n, 2.0);
        group.bench_with_input(BenchmarkId::new("seminaive", n), &input, |b, input| {
            b.iter(|| eval_program_with(&p, input, Engine::SemiNaive).unwrap())
        });
        if n <= 32 {
            group.bench_with_input(BenchmarkId::new("naive", n), &input, |b, input| {
                b.iter(|| eval_program_with(&p, input, Engine::Naive).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_stratified_qtc(c: &mut Criterion) {
    let q = calm_queries::qtc::qtc_datalog();
    let mut group = c.benchmark_group("stratified_qtc");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [8usize, 16, 32] {
        let input = scaling_graph(19, n, 1.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| q.eval(input))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tc_engines,
    bench_random_graphs,
    bench_stratified_qtc
);
criterion_main!(benches);
