//! E1 bench — cost of the separating queries and of monotonicity
//! certification (the falsifier machinery itself).

use calm_bench::harness::{BenchmarkId, Criterion};
use calm_bench::workloads::scaling_graph;
use calm_bench::{criterion_group, criterion_main};
use calm_common::generator::InstanceRng;
use calm_common::query::Query;
use calm_monotone::{ExtensionKind, Falsifier};
use calm_queries::{CliqueQuery, StarQuery};

fn bench_separating_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("separating_queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [16usize, 32] {
        let input = scaling_graph(50, n, 2.0);
        let clique = CliqueQuery::new(4);
        group.bench_with_input(BenchmarkId::new("q4clique", n), &input, |b, input| {
            b.iter(|| clique.eval(input))
        });
        let star = StarQuery::new(4);
        group.bench_with_input(BenchmarkId::new("q4star", n), &input, |b, input| {
            b.iter(|| star.eval(input))
        });
        let qtc = calm_queries::qtc::qtc_native();
        group.bench_with_input(BenchmarkId::new("qtc_native", n), &input, |b, input| {
            b.iter(|| qtc.eval(input))
        });
    }
    group.finish();
}

fn bench_falsifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("falsifier");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let q = calm_queries::tc::edges_without_source_loop();
    for kind in [ExtensionKind::Any, ExtensionKind::DomainDisjoint] {
        group.bench_function(BenchmarkId::new("sp_query", format!("{kind:?}")), |b| {
            b.iter(|| {
                Falsifier::new(kind)
                    .with_trials(50)
                    .falsify(&q, |r| InstanceRng::seeded(r.gen_u64()).gnp(5, 0.35))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_separating_queries, bench_falsifier);
criterion_main!(benches);
