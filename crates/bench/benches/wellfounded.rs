//! E16 bench — well-founded semantics: alternating fixpoint vs the
//! doubled-program evaluation vs native backward induction on growing
//! random games.

use calm_bench::harness::{BenchmarkId, Criterion};
use calm_bench::workloads::scaling_game;
use calm_bench::{criterion_group, criterion_main};
use calm_common::query::Query;
use calm_datalog::parse_program;
use calm_datalog::wellfounded::{doubled_program, well_founded_model};
use calm_queries::winmove::win_move_native;

fn bench_wfs(c: &mut Criterion) {
    let p = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
    let d = doubled_program(&p);
    let native = win_move_native();
    let mut group = c.benchmark_group("winmove");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [16usize, 32, 64] {
        let game = scaling_game(40, n, 3);
        group.bench_with_input(
            BenchmarkId::new("alternating_fixpoint", n),
            &game,
            |b, game| b.iter(|| well_founded_model(&p, game)),
        );
        group.bench_with_input(BenchmarkId::new("doubled_program", n), &game, |b, game| {
            b.iter(|| d.eval(game))
        });
        group.bench_with_input(
            BenchmarkId::new("backward_induction", n),
            &game,
            |b, game| b.iter(|| native.eval(game)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wfs);
criterion_main!(benches);
