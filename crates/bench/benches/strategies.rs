//! E11 — wall-clock cost of the three coordination-free strategies
//! (§4.3) as network size and input size grow.

use calm_bench::harness::{BenchmarkId, Criterion};
use calm_bench::workloads::scaling_graph;
use calm_bench::{criterion_group, criterion_main};
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    run, DisjointStrategy, DistinctStrategy, DomainGuidedPolicy, HashPolicy, MonotoneBroadcast,
    Network, Scheduler, SystemConfig, TransducerNetwork,
};

fn bench_monotone_broadcast(c: &mut Criterion) {
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let mut group = c.benchmark_group("strategy_monotone");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [2usize, 4, 8] {
        let input = scaling_graph(30, 16, 1.5);
        let policy = HashPolicy::new(Network::of_size(n));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| run(&tn, input, &Scheduler::RoundRobin, 2_000_000))
        });
    }
    group.finish();
}

fn bench_distinct_strategy(c: &mut Criterion) {
    let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    let mut group = c.benchmark_group("strategy_distinct");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [2usize, 4] {
        let input = scaling_graph(31, 10, 1.5);
        let policy = HashPolicy::new(Network::of_size(n));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| run(&tn, input, &Scheduler::RoundRobin, 2_000_000))
        });
    }
    group.finish();
}

fn bench_disjoint_strategy(c: &mut Criterion) {
    let t = DisjointStrategy::new(Box::new(qtc_datalog()));
    let mut group = c.benchmark_group("strategy_disjoint");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [2usize, 4] {
        let input = scaling_graph(32, 10, 1.5);
        let policy = DomainGuidedPolicy::new(Network::of_size(n));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| run(&tn, input, &Scheduler::RoundRobin, 2_000_000))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_monotone_broadcast,
    bench_distinct_strategy,
    bench_disjoint_strategy
);
criterion_main!(benches);
