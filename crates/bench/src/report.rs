//! Report types for the `repro` binary: one [`Report`] per experiment,
//! rendered as Markdown (ready to paste into EXPERIMENTS.md).

use std::fmt;

/// Outcome of one claim-check within an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The paper's claim reproduced.
    Pass,
    /// The claim did not reproduce (a real finding — investigate!).
    Fail,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Pass => write!(f, "PASS"),
            Status::Fail => write!(f, "FAIL"),
        }
    }
}

/// The result of one experiment: a Markdown section with a claims table
/// and optional measurement tables.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `"E1"`.
    pub id: String,
    /// Paper anchor + one-line description.
    pub title: String,
    /// `(claim, measured, status)` rows.
    pub claims: Vec<(String, String, Status)>,
    /// Extra free-form Markdown blocks (measurement tables etc.).
    pub tables: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            claims: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Record a claim row.
    pub fn claim(&mut self, claim: impl Into<String>, measured: impl Into<String>, ok: bool) {
        self.claims.push((
            claim.into(),
            measured.into(),
            if ok { Status::Pass } else { Status::Fail },
        ));
    }

    /// Attach a free-form Markdown block.
    pub fn table(&mut self, markdown: impl Into<String>) {
        self.tables.push(markdown.into());
    }

    /// Whether every claim passed.
    pub fn all_pass(&self) -> bool {
        self.claims.iter().all(|(_, _, s)| *s == Status::Pass)
    }

    /// Render the Markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str("| claim (paper) | measured | status |\n|---|---|---|\n");
        for (claim, measured, status) in &self.claims {
            out.push_str(&format!("| {claim} | {measured} | {status} |\n"));
        }
        for t in &self.tables {
            out.push('\n');
            out.push_str(t);
            out.push('\n');
        }
        out
    }
}

/// Render a Markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    out.push_str(&"---|".repeat(header.len()));
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_markdown() {
        let mut r = Report::new("E0", "smoke");
        r.claim("a ⊆ b", "verified on 10 inputs", true);
        r.claim("c ⊄ d", "witness found", true);
        let md = r.to_markdown();
        assert!(md.contains("### E0 — smoke"));
        assert!(md.contains("| a ⊆ b | verified on 10 inputs | PASS |"));
        assert!(r.all_pass());
    }

    #[test]
    fn failures_detected() {
        let mut r = Report::new("E0", "smoke");
        r.claim("x", "y", false);
        assert!(!r.all_pass());
        assert!(r.to_markdown().contains("FAIL"));
    }

    #[test]
    fn table_renderer() {
        let t = markdown_table(
            &["n", "messages"],
            &[vec!["2".into(), "10".into()], vec!["4".into(), "44".into()]],
        );
        assert!(t.contains("| n | messages |"));
        assert!(t.contains("| 4 | 44 |"));
    }
}
