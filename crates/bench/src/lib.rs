//! # calm-bench
//!
//! The experiment harness: regenerates every figure and claim of the
//! paper (the `repro` binary, experiments E1–E17 of DESIGN.md) and hosts
//! the wall-clock benchmarks (`datalog_eval`, `strategies`, `wellfounded`,
//! `hierarchy`) on the in-repo [`harness`].
//!
//! The paper is a theory paper — its "evaluation" is Figure 1 (the
//! monotonicity hierarchy), Figure 2 (the class/fragment/model diagram)
//! and the numbered theorems. `repro` turns each into an executable
//! check and a table of measurements; EXPERIMENTS.md records the output.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;
pub mod workloads;

pub use report::{Report, Status};
