//! E26: supervised recovery under scripted process kills — a kill-rate
//! sweep (0, 1, 2, 4 kills) over the three strategy families and
//! `--procs` ∈ {2, 4}, measuring what robustness costs: wall-clock
//! overhead versus the kill-free supervised run, durable snapshot bytes
//! shipped to the coordinator, messages replayed by restored
//! incarnations, and the supervisor's recovery latency (worker_down →
//! worker_respawn, read from the coordinator's causal events).
//!
//! The claim that matters rides on every single point of the sweep:
//! the run stays quiescent, loses no worker, and its output is
//! byte-identical to the sequential oracle — kills included. A second
//! claim pins the supervision machinery itself: every scheduled kill is
//! answered by exactly one respawn (no adoption in this sweep — the
//! budget is sized above the kill count), and a killed run replays or
//! re-ships durable state (snapshot bytes are always nonzero under
//! supervision, which checkpoints eagerly).
//!
//! Workers are thread-backed as in E25 — the kill path (`pkill` in the
//! fault spec) severs the worker's socket and aborts its executor loop
//! exactly as the OS-process kill does; the CLI test suite covers the
//! genuine `kill -9` signature with real processes.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::report::{markdown_table, Report};
use crate::workloads::scaling_graph;
use calm_common::Instance;
use calm_net::{
    run_net_worker, run_process, Assign, JobSpec, ProcessConfig, ProcessRunResult, SpawnHandle,
    WorkerSetup,
};
use calm_obs::{ArgValue, Obs, Sink};
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    run_with, DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy,
    HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};

const NODES: usize = 8;
const PROCS: [usize; 2] = [2, 4];
const KILLS: [usize; 4] = [0, 1, 2, 4];

/// Records the coordinator's `net` events with their timestamps — just
/// enough causal trace to pair each `worker_down` with the
/// `worker_respawn` that answers it.
#[derive(Default)]
struct EventCapture {
    events: Mutex<Vec<(String, u64)>>,
}

impl Sink for EventCapture {
    fn span(&self, _: &str, _: &str, _: u32, _: u64, _: u64) {}
    fn event(&self, cat: &str, name: &str, _track: u32, ts_us: u64, _args: &[(&str, ArgValue)]) {
        if cat == "net" {
            self.events.lock().unwrap().push((name.to_string(), ts_us));
        }
    }
    fn counter(&self, _: &str, _: &str, _: u64, _: u64) {}
    fn gauge(&self, _: &str, _: &str, _: u32, _: u64, _: u64) {}
    fn histogram(&self, _: &str, _: &str, _: u64) {}
}

impl EventCapture {
    /// Mean worker_down → worker_respawn latency in milliseconds, by
    /// pairing each down with the next respawn in event order (the
    /// supervisor handles one death at a time).
    fn mean_recovery_ms(&self) -> Option<f64> {
        let events = self.events.lock().unwrap();
        let mut pending: Option<u64> = None;
        let mut latencies = Vec::new();
        for (name, ts) in events.iter() {
            match name.as_str() {
                "worker_down" => pending = Some(*ts),
                "worker_respawn" => {
                    if let Some(down) = pending.take() {
                        latencies.push(ts.saturating_sub(down) as f64 / 1e3);
                    }
                }
                _ => {}
            }
        }
        if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
        }
    }
}

fn family(
    strategy: &str,
    nodes: usize,
) -> (
    Box<dyn Transducer>,
    Box<dyn DistributionPolicy>,
    SystemConfig,
) {
    match strategy {
        "monotone" => (
            Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))),
            Box::new(HashPolicy::new(Network::of_size(nodes))),
            SystemConfig::ORIGINAL,
        ),
        "distinct" => (
            Box::new(DistinctStrategy::new(Box::new(edges_without_source_loop()))),
            Box::new(HashPolicy::new(Network::of_size(nodes))),
            SystemConfig::POLICY_AWARE,
        ),
        "disjoint" => (
            Box::new(DisjointStrategy::new(Box::new(qtc_datalog()))),
            Box::new(DomainGuidedPolicy::new(Network::of_size(nodes))),
            SystemConfig::POLICY_AWARE,
        ),
        other => panic!("unknown strategy family {other}"),
    }
}

/// The scripted kill plan: `kills` process kills spread over the
/// workers (never worker 0 first — the coordinator's first victim
/// being mid-ring exercises the epoch fencing harder), at staggered
/// step counts so respawned incarnations get killed again in the
/// 4-kill points.
fn kill_plan(kills: usize, procs: usize) -> String {
    let victims: Vec<usize> = match procs {
        2 => vec![1, 0, 1, 0],
        _ => vec![1, 2, 3, 1],
    };
    let mut spec = String::from("seed=7");
    for (i, &w) in victims.iter().take(kills).enumerate() {
        spec.push_str(&format!(",pkill(worker={}@step={})", w, 3 * (i + 1)));
    }
    spec
}

/// One supervised process-engine run over real sockets with
/// thread-backed workers and a scripted kill plan.
fn run_supervised_tcp(
    strategy: &'static str,
    input: &Instance,
    procs: usize,
    faults: String,
) -> (ProcessRunResult, Option<f64>) {
    let mut cfg = ProcessConfig::new(
        procs,
        JobSpec {
            program: String::new(),
            facts: String::new(),
            strategy: strategy.to_string(),
            nodes: NODES,
            eval_threads: 1,
            step_budget: 5_000_000,
            faults: Some(faults),
            trace_prefix: None,
            flight_path: None,
        },
    )
    .with_respawn_budget(8);
    // The sweep measures engine overhead, not sleep time.
    cfg.respawn_backoff = Duration::from_millis(5);
    let input = input.clone();
    let spawner = move |k: usize, addr: &str| -> Result<SpawnHandle, String> {
        let addr = addr.to_string();
        let input = input.clone();
        Ok(SpawnHandle::Thread(std::thread::spawn(move || {
            let builder = move |assign: &Assign| -> Result<WorkerSetup, String> {
                let (transducer, policy, config) = family(&assign.spec.strategy, assign.spec.nodes);
                Ok(WorkerSetup {
                    transducer,
                    policy,
                    config,
                    input: input.clone(),
                    obs: Obs::noop(),
                })
            };
            if let Err(e) = run_net_worker(&addr, k, &builder) {
                // A scripted kill *is* the worker erroring out; real
                // failures surface through the coordinator's result.
                if !e.to_string().contains("killed by fault plan") {
                    eprintln!("e26 worker {k} failed: {e}");
                }
            }
        })))
    };
    let capture = std::sync::Arc::new(EventCapture::default());
    let obs = Obs::new(capture.clone());
    let r = run_process(&cfg, &spawner, &obs).expect("process run starts");
    let recovery = capture.mean_recovery_ms();
    (r, recovery)
}

fn project_output(t: &dyn Transducer, r: &ProcessRunResult) -> Instance {
    let out_schema = &t.schema().output;
    let mut output = Instance::new();
    for state in r.states.values() {
        output.extend(state.restrict(out_schema).facts());
    }
    output
}

/// E26: supervised recovery — kill-rate sweep.
pub fn e26_recovery() -> Report {
    e26_recovery_obs(&Obs::noop())
}

/// As [`e26_recovery`]; the sequential oracle runs thread the given
/// [`Obs`], the supervised runs use a private capture sink (their
/// coordinator events are the measurement).
pub fn e26_recovery_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E26",
        "supervised recovery — kill-rate sweep: overhead, snapshot bytes, replays, latency",
    );
    let input = scaling_graph(11, 32, 1.5);
    let mut rows = Vec::new();

    for (label, strategy) in [
        ("M/broadcast (TC)", "monotone"),
        ("Mdistinct/non-facts (SP)", "distinct"),
        ("Mdisjoint/request-OK (Q_TC)", "disjoint"),
    ] {
        let (oracle, policy, config) = family(strategy, NODES);
        let tn = TransducerNetwork {
            transducer: oracle.as_ref(),
            policy: policy.as_ref(),
            config,
        };
        let seq = run_with(&tn, &input, &Scheduler::RoundRobin, 5_000_000, obs);

        let mut all_identical = seq.quiescent;
        let mut all_recovered = true;
        let mut always_durable = true;
        for procs in PROCS {
            let mut baseline_wall: Option<f64> = None;
            for kills in KILLS {
                let start = Instant::now();
                let (run, recovery_ms) =
                    run_supervised_tcp(strategy, &input, procs, kill_plan(kills, procs));
                let wall = start.elapsed().as_secs_f64() * 1e3;
                let overhead = match baseline_wall {
                    None => {
                        baseline_wall = Some(wall);
                        None
                    }
                    Some(base) => Some(wall / base.max(1e-9)),
                };
                let identical = run.quiescent
                    && run.failed_workers.is_empty()
                    && run.adopted_workers.is_empty()
                    && project_output(oracle.as_ref(), &run) == seq.output;
                all_identical &= identical;
                all_recovered &= run.respawns == kills as u64;
                always_durable &= run.faults.snapshot_bytes > 0;
                rows.push(vec![
                    label.to_string(),
                    procs.to_string(),
                    kills.to_string(),
                    format!("{wall:.1}"),
                    overhead.map_or("-".into(), |o| format!("{o:.2}x")),
                    run.faults.snapshot_bytes.to_string(),
                    run.faults.replayed.to_string(),
                    recovery_ms.map_or("-".into(), |l| format!("{l:.1}")),
                    identical.to_string(),
                ]);
            }
        }
        r.claim(
            format!("{label}: byte-identical to the sequential oracle at every kill count"),
            "quiescent, no lost workers, output equals oracle at kills {0,1,2,4} x procs {2,4}",
            all_identical,
        );
        r.claim(
            format!("{label}: every scripted kill answered by exactly one respawn"),
            "respawns == kills at every sweep point (budget 8 — no adoption)",
            all_recovered,
        );
        r.claim(
            format!("{label}: supervision always ships durable state"),
            "snapshot bytes > 0 at every sweep point (eager checkpoint shipping)",
            always_durable,
        );
    }

    r.table(markdown_table(
        &[
            "strategy (query)",
            "procs",
            "kills",
            "wall ms",
            "overhead vs 0-kill",
            "snapshot bytes",
            "replayed msgs",
            "recovery ms",
            "identical",
        ],
        &rows,
    ));
    r
}
