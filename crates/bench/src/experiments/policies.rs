//! Experiment E7: Examples 4.1 and 4.2 — distribution policies, domain
//! guidance, and the system-fact view of a node.

use crate::report::{markdown_table, Report};
use calm_common::value::v;
use calm_common::{fact, Instance, Schema};
use calm_transducer::system_facts::system_facts;
use calm_transducer::{
    distribute, DistributionPolicy, Network, ParityDomainGuidedPolicy, ParityFirstAttributePolicy,
    SystemConfig,
};

/// E7: reproduce the distributions and system facts of Examples 4.1/4.2.
pub fn e7_policies() -> Report {
    let mut r = Report::new(
        "E7",
        "Examples 4.1 & 4.2 — policies, domain guidance, system facts",
    );
    let net = Network::from_nodes([v(1), v(2)]);
    let input = Instance::from_facts([fact("E", [1, 3]), fact("E", [3, 4]), fact("E", [4, 6])]);

    // P1 partitions on first-attribute parity.
    let p1 = ParityFirstAttributePolicy::new(net.clone());
    let d1 = distribute(&p1, &input);
    let p1_ok = d1[&v(1)] == Instance::from_facts([fact("E", [1, 3]), fact("E", [3, 4])])
        && d1[&v(2)] == Instance::from_facts([fact("E", [4, 6])]);
    r.claim(
        "dist_P1(I) = {1 ↦ {E(1,3),E(3,4)}, 2 ↦ {E(4,6)}}",
        "exact match",
        p1_ok,
    );
    let no_owner_of_4 = !d1
        .values()
        .any(|i| i.contains(&fact("E", [3, 4])) && i.contains(&fact("E", [4, 6])));
    r.claim(
        "P1 not domain-guided (no node holds all facts containing 4)",
        "verified on the paper's witness input",
        no_owner_of_4,
    );

    // P2 is domain-guided and replicates E(3,4).
    let p2 = ParityDomainGuidedPolicy::new(net.clone());
    let d2 = distribute(&p2, &input);
    let p2_ok = d2[&v(1)] == Instance::from_facts([fact("E", [1, 3]), fact("E", [3, 4])])
        && d2[&v(2)] == Instance::from_facts([fact("E", [3, 4]), fact("E", [4, 6])]);
    r.claim(
        "dist_P2(I) = {1 ↦ {E(1,3),E(3,4)}, 2 ↦ {E(3,4),E(4,6)}}",
        "exact match (E(3,4) replicated)",
        p2_ok && p2.is_domain_guided(),
    );

    // Example 4.2: node 1's system facts under P1.
    let schema = Schema::from_pairs([("E", 2)]);
    let s = system_facts(
        &v(1),
        &net,
        &schema,
        &p1,
        SystemConfig::POLICY_AWARE,
        &d1[&v(1)],
    );
    let myadom_ok = s.relation_len("MyAdom") == 4
        && [1i64, 2, 3, 4]
            .iter()
            .all(|&a| s.contains_tuple("MyAdom", &[v(a)]));
    let policy_ok = s.relation_len("policy_E") == 8
        && [1i64, 3].iter().all(|&a| {
            [1i64, 2, 3, 4]
                .iter()
                .all(|&b| s.contains_tuple("policy_E", &[v(a), v(b)]))
        });
    r.claim(
        "node 1 sees Id(1), All(1), All(2), MyAdom{1,2,3,4}, policy_E(a,b) a∈{1,3}",
        "8 policy facts, 4 MyAdom facts",
        myadom_ok && policy_ok && s.contains_tuple("Id", &[v(1)]) && s.relation_len("All") == 2,
    );
    r.claim(
        "node 1 deduces E(3,2) globally absent",
        "policy_E(3,2) visible, E(3,2) not local",
        s.contains_tuple("policy_E", &[v(3), v(2)]) && !d1[&v(1)].contains(&fact("E", [3, 2])),
    );

    // After learning value 6, MyAdom and the policy slice grow.
    let mut j6 = d1[&v(1)].clone();
    j6.insert(fact("E", [4, 6]));
    let s2 = system_facts(&v(1), &net, &schema, &p1, SystemConfig::POLICY_AWARE, &j6);
    r.claim(
        "after receiving 6: MyAdom(6) and policy_E(3,6) appear",
        "Example 4.2's closing remark",
        s2.contains_tuple("MyAdom", &[v(6)]) && s2.contains_tuple("policy_E", &[v(3), v(6)]),
    );

    let mut rows = Vec::new();
    for (node, inst) in &d1 {
        rows.push(vec![format!("P1: node {node}"), format!("{inst:?}")]);
    }
    for (node, inst) in &d2 {
        rows.push(vec![format!("P2: node {node}"), format!("{inst:?}")]);
    }
    r.table(markdown_table(&["placement", "local fragment"], &rows));
    r
}
