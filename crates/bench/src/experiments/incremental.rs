//! Experiment E27: incremental maintenance — update-batch latency
//! against full re-evaluation, across batch sizes.
//!
//! For each workload and batch size we build one signed batch (half
//! deletions drawn from the live EDB, half fresh insertions), then
//! measure folding it into a maintained [`IncrementalEvaluation`]
//! (best-of-3, each trial from a fresh session) against re-running the
//! whole fixpoint on the updated EDB. Two deterministic claims gate the
//! numbers: every cell's maintained output is identical to from-scratch,
//! and the *work* of the smallest update (derivations attempted during
//! maintenance) stays below the full fixpoint's — latency ratios are
//! reported but machine speed is not a pass criterion.
//!
//! [`IncrementalEvaluation`]: calm_datalog::IncrementalEvaluation

use std::time::Instant;

use crate::report::{markdown_table, Report};
use crate::workloads::scaling_graph;
use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::rng::Rng;
use calm_common::update::UpdateBatch;
use calm_datalog::{parse_program, DatalogQuery};
use calm_obs::Obs;

const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];
const TRIALS: usize = 3;

/// E27: update-batch latency vs full re-evaluation.
pub fn e27_incremental() -> Report {
    e27_incremental_obs(&Obs::noop())
}

fn tc_query() -> DatalogQuery {
    let p = parse_program(
        "@output T.\n\
         T(x,y) :- E(x,y).\n\
         T(x,z) :- T(x,y), E(y,z).",
    )
    .unwrap();
    DatalogQuery::new("tc", p).unwrap()
}

fn qtc_query() -> DatalogQuery {
    let p = parse_program(
        "@output O.\n\
         Adom(x) :- E(x,y).\n\
         Adom(y) :- E(x,y).\n\
         T(x,y) :- E(x,y).\n\
         T(x,z) :- T(x,y), E(y,z).\n\
         O(x,y) :- Adom(x), Adom(y), not T(x,y).",
    )
    .unwrap();
    DatalogQuery::new("qtc", p).unwrap()
}

/// A signed batch of `size` facts: half deletions sampled from the
/// current EDB, the rest fresh random edges over the same domain.
fn make_batch(rng: &mut Rng, edb: &Instance, domain: i64, size: usize) -> UpdateBatch {
    let mut b = UpdateBatch::new();
    let present: Vec<_> = edb.facts().collect();
    for _ in 0..size / 2 {
        if !present.is_empty() {
            b.delete
                .push(present[rng.gen_range(0..present.len())].clone());
        }
    }
    while b.len() < size {
        b.insert.push(fact(
            "E",
            [rng.gen_range(0..domain), rng.gen_range(0..domain)],
        ));
    }
    b
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// As [`e27_incremental`], wrapping each cell in a span so `repro
/// --trace-out` captures the `eval.retractions` / `eval.rederivations`
/// counters as artifacts.
pub fn e27_incremental_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E27",
        "incremental maintenance — update-batch latency vs full re-evaluation",
    );
    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut small_batch_cheaper = true;
    for (name, q, edb, domain) in [
        ("TC", tc_query(), scaling_graph(271, 160, 2.0), 160i64),
        ("QTC", qtc_query(), scaling_graph(272, 48, 1.5), 48i64),
    ] {
        // Full-fixpoint baseline work, measured once on the initial EDB
        // (the update keeps the instance the same size to within the
        // batch, so this is the re-evaluation each cell avoids).
        for size in BATCH_SIZES {
            let _span = obs.span("bench", || format!("e27:{name} batch={size}"));
            let mut rng = Rng::seed_from_u64(2700 + size as u64);
            let batch = make_batch(&mut rng, &edb, domain, size);
            let mut updated = edb.clone();
            batch.apply_to_instance(&mut updated);

            // From-scratch: evaluate the updated EDB, best-of-TRIALS.
            let mut full_ms = Vec::new();
            let mut expect = Instance::new();
            for _ in 0..TRIALS {
                let t0 = Instant::now();
                expect = q.eval(&updated);
                full_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            }

            // Incremental: fresh session on the *initial* EDB per trial
            // (setup untimed), then time only the fold.
            let mut incr_ms = Vec::new();
            let mut stats = None;
            let mut got = Instance::new();
            for _ in 0..TRIALS {
                let mut session = q.open(&edb);
                let t0 = Instant::now();
                let s = session.apply_obs(&batch, obs);
                incr_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                stats = Some(s);
                got = session.output();
            }
            let stats = stats.unwrap();
            let identical = got == expect;
            all_identical &= identical;
            if size == 1 && stats.derivations >= full_fixpoint_derivations(&q, &updated) {
                small_batch_cheaper = false;
            }
            let f = median(full_ms);
            let i = median(incr_ms);
            rows.push(vec![
                format!("{name} (|E|={})", edb.relation_len("E")),
                size.to_string(),
                format!("{i:.2}"),
                format!("{f:.2}"),
                format!("{:.1}x", f / i.max(1e-9)),
                stats.retractions.to_string(),
                stats.rederivations.to_string(),
                stats.derivations.to_string(),
                identical.to_string(),
            ]);
        }
    }
    r.claim(
        "maintained database identical to from-scratch at every batch size",
        "output comparison per cell",
        all_identical,
    );
    r.claim(
        "size-1 update does less derivation work than the full fixpoint",
        "UpdateStats.derivations vs FixpointStats.derivations",
        small_batch_cheaper,
    );
    r.table(markdown_table(
        &[
            "workload",
            "batch",
            "incr ms (med)",
            "full ms (med)",
            "speedup",
            "retractions",
            "rederivations",
            "update derivations",
            "identical",
        ],
        &rows,
    ));
    r
}

/// Derivation count of a full fixpoint over `edb` — the deterministic
/// work baseline the size-1 claim compares against.
fn full_fixpoint_derivations(q: &DatalogQuery, edb: &Instance) -> usize {
    let (_, stats) = calm_datalog::eval::eval_stratification_shared_obs(
        q.stratification(),
        edb,
        calm_datalog::eval::Engine::SemiNaive,
        calm_common::storage::SharedSymbols::new(),
        &Obs::noop(),
    );
    stats.iter().map(|s| s.derivations).sum()
}
